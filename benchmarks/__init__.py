"""Benchmark harness: one module per paper table/figure, plus ablations.

Run everything and regenerate EXPERIMENTS.md:

    python benchmarks/run_all.py            # full paper scale
    python benchmarks/run_all.py --quick    # scaled down

Or time the harness itself:

    pytest benchmarks/ --benchmark-only
"""
