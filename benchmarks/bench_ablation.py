"""Ablations over the design choices DESIGN.md calls out.

Not a paper figure — these quantify which modeled mechanisms carry the
paper's findings:

- scheduler: dynamic vs BCW vs CW (CW is the degenerate baseline the
  paper folds into BCW);
- process partition size: message overhead vs idle tails;
- per-node contention: switch it off and the Fig 15 crossover vanishes;
- link speed: Infiniband vs gigabit ethernet;
- fault recovery overhead vs a fault-free run.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.common import BENCH_SEQ_LEN, PAPER_PARTITION, swgg_instance
from repro import RunConfig
from repro.analysis.tables import ascii_table
from repro.backends.simulated import run_simulated
from repro.cluster.faults import FaultPlan, FaultRule
from repro.cluster.network import GIGABIT_ETHERNET


def _makespan(problem, cfg) -> float:
    return run_simulated(problem, cfg)[1].makespan


def ablate_scheduler(problem):
    rows = []
    for sched in ("dynamic", "bcw", "cw"):
        cfg = RunConfig.experiment(
            4, 22, scheduler=sched, thread_scheduler=sched, **PAPER_PARTITION
        )
        _, rep = run_simulated(problem, cfg)
        rows.append([sched, rep.makespan, rep.idle_while_ready, f"{rep.utilization:.1%}"])
    return rows


def ablate_partition_size(problem):
    rows = []
    for proc in (50, 100, 200, 500, 1000):
        cfg = RunConfig.experiment(
            4, 22, process_partition=proc, thread_partition=max(5, proc // 20)
        )
        rows.append([proc, _makespan(problem, cfg)])
    return rows


def ablate_contention(problem):
    rows = []
    for gamma in (0.0, 0.02, 0.08):
        for nodes, cores in ((4, 40), (5, 40)):
            base = RunConfig.experiment(nodes, cores, **PAPER_PARTITION)
            spec = base.cluster_spec()
            spec = replace(
                spec, compute_nodes=tuple(replace(n, contention=gamma) for n in spec.compute_nodes)
            )
            cfg = replace(base, cluster=spec)
            rows.append([gamma, nodes, cores, _makespan(problem, cfg)])
    return rows


def ablate_link(problem):
    rows = []
    base = RunConfig.experiment(4, 22, **PAPER_PARTITION)
    rows.append(["infiniband-qdr", _makespan(problem, base)])
    slow = replace(base, cluster=base.cluster_spec().with_link(GIGABIT_ETHERNET))
    rows.append(["gigabit-ethernet", _makespan(problem, slow)])
    return rows


def ablate_heterogeneity(problem):
    """Mixed node speeds: the dynamic pool adapts, the static deal pays."""
    from repro.cluster.machine import NodeSpec
    from repro.cluster.topology import ClusterSpec

    rows = []
    for slow_factor in (1.0, 2.0, 4.0):
        fast = NodeSpec(threads=4)
        slow = NodeSpec(threads=4, flops_per_second=fast.flops_per_second / slow_factor)
        cluster = ClusterSpec(compute_nodes=(fast, fast, slow))
        times = {}
        for sched in ("dynamic", "bcw"):
            cfg = RunConfig(nodes=4, threads_per_node=4, backend="simulated",
                            cluster=cluster, scheduler=sched, **PAPER_PARTITION)
            _, rep = run_simulated(problem, cfg)
            times[sched] = rep.makespan
        rows.append([slow_factor, times["dynamic"], times["bcw"],
                     round(times["bcw"] / times["dynamic"], 3)])
    return rows


def ablate_faults(problem):
    rows = []
    clean = RunConfig.experiment(4, 22, task_timeout=5.0, **PAPER_PARTITION)
    rows.append(["no faults", _makespan(problem, clean)])
    for p in (0.02, 0.10):
        cfg = RunConfig.experiment(
            4, 22, task_timeout=5.0, fault_plan=FaultPlan.random(p, seed=1),
            **PAPER_PARTITION,
        )
        _, rep = run_simulated(problem, cfg)
        rows.append([f"crash p={p}", rep.makespan])
    return rows


# -- pytest-benchmark entry points -------------------------------------------------


def test_ablation_scheduler(benchmark):
    problem = swgg_instance()
    rows = benchmark.pedantic(lambda: ablate_scheduler(problem), rounds=1, iterations=1)
    by_name = {r[0]: r[1] for r in rows}
    assert by_name["dynamic"] <= by_name["bcw"] * 1.001
    assert by_name["bcw"] < by_name["cw"], "CW must be the worst static layout"


def test_ablation_partition_extremes_lose(benchmark):
    problem = swgg_instance()
    rows = benchmark.pedantic(lambda: ablate_partition_size(problem), rounds=1, iterations=1)
    times = {r[0]: r[1] for r in rows}
    assert times[200] < times[1000], "huge blocks serialize the wavefront"


def test_ablation_contention_creates_crossover(benchmark):
    problem = swgg_instance()
    rows = benchmark.pedantic(lambda: ablate_contention(problem), rounds=1, iterations=1)
    t = {(g, n): m for g, n, _, m in rows}
    # Without contention, packing onto 4 nodes is at least as good at 40
    # cores; with strong contention 5 nodes win — the crossover's cause.
    assert t[(0.0, 4)] <= t[(0.0, 5)] * 1.02
    assert t[(0.08, 5)] < t[(0.08, 4)]


def test_ablation_link_speed(benchmark):
    problem = swgg_instance()
    rows = benchmark.pedantic(lambda: ablate_link(problem), rounds=1, iterations=1)
    assert rows[0][1] < rows[1][1], "slower fabric must cost time"


def test_ablation_heterogeneity_punishes_static(benchmark):
    problem = swgg_instance()
    rows = benchmark.pedantic(lambda: ablate_heterogeneity(problem), rounds=1, iterations=1)
    ratios = [r[3] for r in rows]
    assert ratios[-1] > ratios[0], "BCW penalty must grow with node skew"


def test_ablation_fault_overhead(benchmark):
    problem = swgg_instance()
    rows = benchmark.pedantic(lambda: ablate_faults(problem), rounds=1, iterations=1)
    clean, p2, p10 = (r[1] for r in rows)
    assert clean < p2 < p10, "more faults, more recovery time"


def main(seq_len: int = BENCH_SEQ_LEN) -> str:
    problem = swgg_instance(seq_len)
    blocks = [
        "## Ablations (SWGG, Experiment_4_22 unless noted)\n",
        ascii_table(["scheduler", "makespan (s)", "idle-while-ready (s)", "util"],
                    ablate_scheduler(problem)),
        "",
        ascii_table(["process partition", "makespan (s)"], ablate_partition_size(problem)),
        "",
        ascii_table(["contention gamma", "nodes", "cores", "makespan (s)"],
                    ablate_contention(problem)),
        "",
        ascii_table(["link", "makespan (s)"], ablate_link(problem)),
        "",
        ascii_table(["slow-node factor", "dynamic (s)", "bcw (s)", "bcw/dyn"],
                    ablate_heterogeneity(problem)),
        "",
        ascii_table(["fault injection", "makespan (s)"], ablate_faults(problem)),
    ]
    out = "\n".join(blocks)
    print(out)
    return out


if __name__ == "__main__":
    main()
