"""Performance-trajectory baseline: wall time and bytes on the wire.

One standard workload — the wavefront edit-distance instance defined in
:mod:`repro.analysis.trajectory` — measured on all four backends, with
the results committed to ``BENCH_BASELINE.json`` at the repo root. Each
entry in that file is one recorded revision, so the file accumulates the
project's performance trajectory over time instead of a single mutable
number.

Three verbs::

    python benchmarks/bench_baseline.py              # measure and print
    python benchmarks/bench_baseline.py --write --label <rev>   # append
    python benchmarks/bench_baseline.py --check      # compare vs latest

What is comparable: the *byte/message* counters of the serial and
simulated backends are fully deterministic (the simulator is a DES, the
serial backend sends nothing), so ``--check`` requires them equal to the
latest recorded entry. The threads/processes backends' message counts
depend on poll timing and their wall times on machine load, so those are
reported but only sanity-bounded, never compared exactly.

For a tolerance-based gate (ratio-normalized makespans, configurable
headroom, exit code 3 on regression) use ``repro perf --against
BENCH_BASELINE.json --check`` instead — both front-ends share
:mod:`repro.analysis.trajectory`.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.trajectory import (  # noqa: E402
    BACKENDS,
    DETERMINISTIC,
    SCHEMA,
    STANDARD,
    append_entry,
    format_measurement,
    git_describe_label,
    load_trajectory,
    measure,
    measure_backend,
)

__all__ = [
    "BACKENDS",
    "BASELINE_PATH",
    "DETERMINISTIC",
    "SCHEMA",
    "STANDARD",
    "load_baseline",
    "measure",
    "measure_backend",
]

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_BASELINE.json")


def load_baseline() -> dict:
    return load_trajectory(BASELINE_PATH)


def cmd_write(label: str) -> int:
    entry = append_entry(BASELINE_PATH, label=label)
    print(f"recorded entry {entry['label']!r} -> {os.path.normpath(BASELINE_PATH)}")
    print(format_measurement(entry["backends"]))
    return 0


def cmd_check() -> int:
    doc = load_baseline()
    entries = doc.get("entries", [])
    if not entries:
        print("no baseline entries recorded; run with --write first", file=sys.stderr)
        return 1
    latest = entries[-1]["backends"]
    current = measure()
    print(format_measurement(current))
    failures = []
    for backend in DETERMINISTIC:
        for key in ("messages", "bytes_to_slaves", "bytes_to_master"):
            want, got = latest[backend][key], current[backend][key]
            if want != got:
                failures.append(f"{backend}.{key}: baseline {want} != current {got}")
    if failures:
        print("baseline drift (deterministic wire counters changed):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"wire counters match baseline entry {entries[-1]['label']!r}")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    verb = ap.add_mutually_exclusive_group()
    verb.add_argument("--write", action="store_true", help="append an entry to BENCH_BASELINE.json")
    verb.add_argument("--check", action="store_true", help="compare against the latest entry")
    ap.add_argument(
        "--label",
        default=None,
        help="entry label for --write (defaults to `git describe` output)",
    )
    args = ap.parse_args()
    if args.write:
        return cmd_write(args.label if args.label is not None else git_describe_label())
    if args.check:
        return cmd_check()
    print(format_measurement(measure()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
