"""Performance-trajectory baseline: wall time and bytes on the wire.

One standard workload — the wavefront edit-distance instance below —
measured on all four backends, with the results committed to
``BENCH_BASELINE.json`` at the repo root. Each entry in that file is one
recorded revision, so the file accumulates the project's performance
trajectory over time instead of a single mutable number.

Three verbs::

    python benchmarks/bench_baseline.py              # measure and print
    python benchmarks/bench_baseline.py --write --label <rev>   # append
    python benchmarks/bench_baseline.py --check      # compare vs latest

What is comparable: the *byte/message* counters of the serial and
simulated backends are fully deterministic (the simulator is a DES, the
serial backend sends nothing), so ``--check`` requires them equal to the
latest recorded entry. The threads/processes backends' message counts
depend on poll timing and their wall times on machine load, so those are
reported but only sanity-bounded, never compared exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import EasyHPS, RunConfig  # noqa: E402
from repro.algorithms import EditDistance  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_BASELINE.json")
SCHEMA = "repro-bench-baseline-1"

#: The standard workload: small enough for CI, large enough that the
#: dispatch/commit path dominates interpreter startup.
STANDARD = dict(
    algorithm="edit-distance",
    size=240,
    seed=0,
    nodes=3,
    threads_per_node=2,
    process_partition=40,
    thread_partition=10,
)

BACKENDS = ("serial", "threads", "processes", "simulated")

#: Deterministic backends: wire counters must reproduce bit-for-bit.
DETERMINISTIC = ("serial", "simulated")


def measure_backend(backend: str) -> Dict[str, object]:
    problem = EditDistance.random(STANDARD["size"], seed=STANDARD["seed"])
    config = RunConfig(
        nodes=STANDARD["nodes"],
        threads_per_node=STANDARD["threads_per_node"],
        backend=backend,
        process_partition=STANDARD["process_partition"],
        thread_partition=STANDARD["thread_partition"],
    )
    t0 = time.perf_counter()
    run = EasyHPS(config).run(problem)
    wall = time.perf_counter() - t0
    rep = run.report
    return {
        "wall_time_s": round(wall, 6),
        "makespan_s": round(rep.makespan, 6),
        "messages": rep.messages,
        "bytes_to_slaves": rep.bytes_to_slaves,
        "bytes_to_master": rep.bytes_to_master,
    }


def measure() -> Dict[str, Dict[str, object]]:
    return {backend: measure_backend(backend) for backend in BACKENDS}


def load_baseline() -> Dict[str, object]:
    if not os.path.exists(BASELINE_PATH):
        return {"schema": SCHEMA, "workload": dict(STANDARD), "entries": []}
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def cmd_write(label: str) -> int:
    doc = load_baseline()
    doc["schema"] = SCHEMA
    doc["workload"] = dict(STANDARD)
    entry = {"label": label, "backends": measure()}
    doc.setdefault("entries", []).append(entry)
    with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"recorded entry {label!r} -> {os.path.normpath(BASELINE_PATH)}")
    _print(entry["backends"])
    return 0


def cmd_check() -> int:
    doc = load_baseline()
    entries = doc.get("entries", [])
    if not entries:
        print("no baseline entries recorded; run with --write first", file=sys.stderr)
        return 1
    latest = entries[-1]["backends"]
    current = measure()
    _print(current)
    failures = []
    for backend in DETERMINISTIC:
        for key in ("messages", "bytes_to_slaves", "bytes_to_master"):
            want, got = latest[backend][key], current[backend][key]
            if want != got:
                failures.append(f"{backend}.{key}: baseline {want} != current {got}")
    if failures:
        print("baseline drift (deterministic wire counters changed):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"wire counters match baseline entry {entries[-1]['label']!r}")
    return 0


def _print(measured: Dict[str, Dict[str, object]]) -> None:
    for backend, m in measured.items():
        print(
            f"  {backend:10s} wall={m['wall_time_s']:8.3f}s "
            f"makespan={m['makespan_s']:8.3f}s msgs={m['messages']:6d} "
            f"out={m['bytes_to_slaves']:9d}B back={m['bytes_to_master']:9d}B"
        )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    verb = ap.add_mutually_exclusive_group()
    verb.add_argument("--write", action="store_true", help="append an entry to BENCH_BASELINE.json")
    verb.add_argument("--check", action="store_true", help="compare against the latest entry")
    ap.add_argument("--label", default="dev", help="entry label for --write (e.g. a PR or tag)")
    args = ap.parse_args()
    if args.write:
        return cmd_write(args.label)
    if args.check:
        return cmd_check()
    _print(measure())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
