"""Data-plane benchmark: what zero-copy shm + batched dispatch buy.

The claim this benchmark gates (PR 8): on the standard workload the
processes backend's **serialize + wire lane time on the master** drops
by at least 30% when the zero-copy shared-memory block transport and
batched wavefront dispatch are both on, versus both off.

The lane metric comes from :func:`repro.obs.prof.build_profile` over an
observed run's event stream — the same attribution ``repro perf``
prints. It is symmetric by construction: the inline path counts pickle
(send), pipe write, pipe read, and unpickle (recv); the zero-copy path
counts segment park (send) and ``shm-attach`` rehydration (recv). Both
directions of both paths are attributed, so the comparison measures the
transport, not the instrumentation.

Three verbs::

    python benchmarks/bench_dataplane.py             # measure and print
    python benchmarks/bench_dataplane.py --write --label <rev>  # append
    python benchmarks/bench_dataplane.py --check     # gate: >=30% or fail

``--write`` appends one entry to ``BENCH_BASELINE.json`` with the usual
four-backend measurement (so the deterministic wire counters stay
gated) plus a ``dataplane`` section carrying the lane numbers; the
perf-gate CLI ignores keys it does not know, so older tooling keeps
working against the new entries.

The workload is the standard trajectory instance (edit-distance 240,
process partition 40) with two data-plane-specific pins. The thread
partition equals the process partition, so worker-side subtask fan-out
does not add scheduler noise to the tens-of-milliseconds master lane
being measured. And ``repro.comm.shm.SHM_MIN_BYTES`` is pinned to
8 KiB: the workload's block results are 40x40 float64 (12.8 KB), so
they ride segments, while the sub-kilobyte halo strips stay inline —
parking those costs more in segment syscalls than the copy they avoid.
Workers inherit the override through the fork start method.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.trajectory import (  # noqa: E402
    STANDARD,
    append_entry,
    format_measurement,
    git_describe_label,
    measure,
)

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_BASELINE.json")

#: The gate: lane time with shm+batching on must be at least this much
#: below the off configuration.
MIN_REDUCTION = 0.30

#: Segment threshold for the measured runs (see module docstring).
SHM_MIN_BYTES = 8192

#: Lane times are summed over this many runs per configuration to
#: smooth scheduler noise; the standard workload keeps each run short.
REPEATS = 3


def _lane_once(shm: bool, batch: bool):
    """One observed processes run; returns (serialize+wire seconds, msgs)."""
    from repro import EasyHPS, RunConfig
    from repro.algorithms import EditDistance
    from repro.obs.prof import build_profile

    problem = EditDistance.random(STANDARD["size"], seed=STANDARD["seed"])
    config = RunConfig(
        backend="processes",
        nodes=STANDARD["nodes"],
        threads_per_node=STANDARD["threads_per_node"],
        process_partition=STANDARD["process_partition"],
        thread_partition=STANDARD["process_partition"],  # see docstring
        observe=True,
        shm=shm,
        batch_wave=batch,
        max_batch=8,
    )
    run = EasyHPS(config).run(problem)
    master = build_profile(run.report.events).attribution[-1]
    return master["serialize"] + master["wire"], run.report.messages


def measure_dataplane(repeats: int = REPEATS):
    """The off-vs-on lane comparison; returns a JSON-ready dict."""
    import repro.comm.shm as shm_mod

    prev = shm_mod.SHM_MIN_BYTES
    shm_mod.SHM_MIN_BYTES = SHM_MIN_BYTES
    try:
        off_s = on_s = 0.0
        msgs_off = msgs_on = 0
        for _ in range(repeats):
            t, m = _lane_once(shm=False, batch=False)
            off_s += t
            msgs_off = m
            t, m = _lane_once(shm=True, batch=True)
            on_s += t
            msgs_on = m
    finally:
        shm_mod.SHM_MIN_BYTES = prev
    return {
        "backend": "processes",
        "lane": "serialize+wire (master)",
        "repeats": repeats,
        "shm_min_bytes": SHM_MIN_BYTES,
        "lane_off_s": round(off_s, 6),
        "lane_on_s": round(on_s, 6),
        "reduction": round(1.0 - on_s / off_s, 4),
        "messages_off": msgs_off,
        "messages_on": msgs_on,
    }


def format_dataplane(d) -> str:
    return (
        f"  dataplane  lane(serialize+wire, {d['repeats']} runs): "
        f"off={d['lane_off_s'] * 1000:7.1f}ms/{d['messages_off']}msgs "
        f"on={d['lane_on_s'] * 1000:7.1f}ms/{d['messages_on']}msgs "
        f"reduction={d['reduction']:+.1%}"
    )


def cmd_write(label: str) -> int:
    dataplane = measure_dataplane()
    entry = append_entry(BASELINE_PATH, label=label, measured=measure())
    entry["dataplane"] = dataplane
    # append_entry already wrote the file; re-write with the extra section.
    import json

    with open(BASELINE_PATH, encoding="utf-8") as fh:
        doc = json.load(fh)
    doc["entries"][-1] = entry
    with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"recorded entry {entry['label']!r} -> {os.path.normpath(BASELINE_PATH)}")
    print(format_measurement(entry["backends"]))
    print(format_dataplane(dataplane))
    return 0


def cmd_check() -> int:
    dataplane = measure_dataplane()
    print(format_dataplane(dataplane))
    if dataplane["reduction"] < MIN_REDUCTION:
        print(
            f"dataplane gate FAILED: reduction {dataplane['reduction']:+.1%} "
            f"< required {MIN_REDUCTION:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"dataplane gate PASSED (>= {MIN_REDUCTION:.0%} lane reduction)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    verb = ap.add_mutually_exclusive_group()
    verb.add_argument("--write", action="store_true", help="append an entry to BENCH_BASELINE.json")
    verb.add_argument("--check", action="store_true", help="gate: fail unless reduction >= 30%")
    ap.add_argument(
        "--label",
        default=None,
        help="entry label for --write (defaults to `git describe` output)",
    )
    args = ap.parse_args()
    if args.write:
        return cmd_write(args.label if args.label is not None else git_describe_label())
    if args.check:
        return cmd_check()
    print(format_dataplane(measure_dataplane()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
