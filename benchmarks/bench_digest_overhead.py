"""Digest overhead: the integrity layer's tax on a clean run.

Not a paper figure — this guards the PR-5 budget: stamping and
verifying canonical content digests on every protocol hop must cost at
most ``REPRO_DIGEST_BUDGET`` (default 10%) of end-to-end runtime
relative to ``integrity="off"``.

Two entry points:

- ``pytest benchmarks/bench_digest_overhead.py --benchmark-only`` —
  pytest-benchmark microbenches of ``content_digest`` on
  representative block payloads;
- ``python benchmarks/bench_digest_overhead.py`` — the end-to-end
  comparison (median of repeated serial-backend runs, off vs digest),
  printing both times and exiting nonzero over budget. This is what CI
  runs.
"""

from __future__ import annotations

import os
import statistics
import sys
import time

import numpy as np

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance
from repro.comm.serialization import content_digest

#: Maximum tolerated slowdown of integrity="digest" over "off".
DIGEST_BUDGET = float(os.environ.get("REPRO_DIGEST_BUDGET", "0.10"))

BENCH_SIZE = int(os.environ.get("REPRO_DIGEST_BENCH_SIZE", "900"))
REPEATS = int(os.environ.get("REPRO_DIGEST_BENCH_REPEATS", "5"))


def block_payload(block: int = 128) -> dict:
    """A boundary payload shaped like one wavefront sub-task result."""
    rng = np.random.default_rng(0)
    return {"south": rng.random(block), "east": rng.random(block)}


def test_content_digest_boundary_payload(benchmark):
    payload = block_payload()
    digest = benchmark(lambda: content_digest(payload))
    assert len(digest) == 32


def test_content_digest_full_block(benchmark):
    rng = np.random.default_rng(1)
    payload = {"block": rng.random((200, 200))}
    benchmark(lambda: content_digest(payload))


def _run_once(problem, integrity: str) -> float:
    config = RunConfig(
        backend="serial",
        nodes=1,
        process_partition=100,
        integrity=integrity,
    )
    t0 = time.perf_counter()
    EasyHPS(config).run(problem)
    return time.perf_counter() - t0


def main() -> int:
    problem = EditDistance.random(BENCH_SIZE, BENCH_SIZE, seed=1)
    # Interleave the arms so drift (thermal, cache) cancels; warm up once.
    _run_once(problem, "off")
    off, on = [], []
    for _ in range(REPEATS):
        off.append(_run_once(problem, "off"))
        on.append(_run_once(problem, "digest"))
    t_off = statistics.median(off)
    t_on = statistics.median(on)
    overhead = t_on / t_off - 1.0
    print(
        f"digest overhead: size={BENCH_SIZE} repeats={REPEATS} "
        f"off={t_off:.3f}s digest={t_on:.3f}s overhead={overhead:+.1%} "
        f"(budget {DIGEST_BUDGET:.0%})"
    )
    if overhead > DIGEST_BUDGET:
        print("FAIL: digest integrity exceeds its overhead budget", file=sys.stderr)
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
