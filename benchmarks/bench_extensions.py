"""Benchmarks of the extension features (beyond the paper's evaluation).

- boundary-retention memory mode: peak master memory vs the dense matrix
  (the paper's stated future-work item, quantified);
- largest-cost-first dynamic scheduling: no gain at paper configurations
  (precedence already orders work by cost) — recorded as a negative
  ablation result;
- the chain pattern (Viterbi) as a parallelization negative control:
  adding nodes must NOT help a pure chain.
"""

from __future__ import annotations

import pytest

from benchmarks.common import BENCH_SEQ_LEN, PAPER_PARTITION, nussinov_instance
from repro import RunConfig
from repro.algorithms import EditDistance, ViterbiDecoding
from repro.analysis.tables import ascii_table
from repro.backends.simulated import run_simulated
from repro.dag.partition import partition_pattern


def boundary_memory_rows(n: int = 2000):
    ed = EditDistance.random(n, n, seed=1)
    compact = EditDistance(ed.a, ed.b, retain="boundary")
    part = partition_pattern(compact.pattern(), 200)
    state = compact.make_state()
    for bid in part.abstract.topological_order():
        inputs = compact.extract_inputs(state, part, bid)
        outputs = compact.evaluator(part, bid, inputs).run_serial(
            part.sub_partition(bid, 50)
        )
        compact.apply_result(state, part, bid, outputs)
    res = compact.finalize(state)
    return [
        ["dense matrix bytes", res.dense_bytes],
        ["boundary peak bytes", res.peak_bytes],
        ["reduction factor", round(res.reduction, 1)],
    ]


def lcf_rows(seq_len: int):
    problem = nussinov_instance(seq_len)
    rows = []
    for name in ("dynamic", "dynamic-lcf"):
        cfg = RunConfig.experiment(5, 33, scheduler=name, **PAPER_PARTITION)
        _, rep = run_simulated(problem, cfg)
        rows.append([name, rep.makespan])
    return rows


def reuse_rows(seq_len: int):
    from benchmarks.common import swgg_instance

    problem = swgg_instance(seq_len)
    rows = []
    for label, kw in (
        ("no reuse (paper model)", {}),
        ("data_reuse", dict(data_reuse=True)),
        ("data_reuse + affinity", dict(data_reuse=True, scheduler="dynamic-affinity")),
    ):
        cfg = RunConfig.experiment(5, 33, **PAPER_PARTITION, **kw)
        _, rep = run_simulated(problem, cfg)
        rows.append([label, rep.makespan, round(rep.bytes_to_slaves / 1e9, 2)])
    return rows


def prefetch_rows(seq_len: int):
    from benchmarks.common import swgg_instance
    from repro.cluster.network import GIGABIT_ETHERNET

    problem = swgg_instance(seq_len)
    rows = []
    for link_label, link in (("infiniband", None), ("gigabit", GIGABIT_ETHERNET)):
        for pf in (False, True):
            cfg = RunConfig.experiment(5, 33, prefetch=pf, **PAPER_PARTITION)
            if link is not None:
                cfg = RunConfig.experiment(
                    5, 33, prefetch=pf, cluster=cfg.cluster_spec().with_link(link),
                    **PAPER_PARTITION,
                )
            _, rep = run_simulated(problem, cfg)
            rows.append([link_label, "prefetch" if pf else "serial slave loop", rep.makespan])
    return rows


def chain_rows(T: int = 5000):
    vi = ViterbiDecoding.random(T, n_states=8, seed=1)
    rows = []
    for nodes, cores in ((2, 6), (3, 11), (5, 21)):
        cfg = RunConfig.experiment(nodes, cores, process_partition=250, thread_partition=50)
        _, rep = run_simulated(vi, cfg)
        rows.append([nodes, cores, rep.makespan])
    return rows


# -- pytest-benchmark entry points --------------------------------------------------


def test_boundary_memory_reduction(benchmark):
    rows = benchmark.pedantic(lambda: boundary_memory_rows(800), rounds=1, iterations=1)
    stats = {r[0]: r[1] for r in rows}
    assert stats["boundary peak bytes"] * 5 < stats["dense matrix bytes"]


def test_lcf_matches_dynamic_at_paper_configs(benchmark):
    rows = benchmark.pedantic(lambda: lcf_rows(BENCH_SEQ_LEN), rounds=1, iterations=1)
    t = {r[0]: r[1] for r in rows}
    assert t["dynamic-lcf"] <= t["dynamic"] * 1.02


def test_data_reuse_halves_swgg_traffic(benchmark):
    rows = benchmark.pedantic(lambda: reuse_rows(BENCH_SEQ_LEN), rounds=1, iterations=1)
    t = {r[0]: r[2] for r in rows}
    assert t["data_reuse"] < t["no reuse (paper model)"] * 0.75


def test_prefetch_never_slower(benchmark):
    rows = benchmark.pedantic(lambda: prefetch_rows(BENCH_SEQ_LEN), rounds=1, iterations=1)
    by = {(r[0], r[1]): r[2] for r in rows}
    assert by[("infiniband", "prefetch")] <= by[("infiniband", "serial slave loop")] + 1e-9


def test_chain_gains_nothing_from_nodes(benchmark):
    rows = benchmark.pedantic(lambda: chain_rows(2000), rounds=1, iterations=1)
    times = [r[2] for r in rows]
    # A pure chain cannot speed up; more nodes only add communication.
    assert max(times) <= min(times) * 1.25
    assert times[-1] >= times[0] * 0.95


def main(seq_len: int = BENCH_SEQ_LEN) -> str:
    blocks = [
        "## Extensions (beyond the paper)\n",
        "Boundary-retention memory mode (edit distance, n=2000, blocks 200/50):",
        ascii_table(["metric", "value"], boundary_memory_rows()),
        "",
        "Largest-cost-first dynamic pool (Nussinov, Experiment_5_33):",
        ascii_table(["scheduler", "makespan (s)"], lcf_rows(seq_len)),
        "",
        "Slave-side input caching (SWGG, Experiment_5_33):",
        ascii_table(["mode", "makespan (s)", "bytes to slaves (GB)"], reuse_rows(seq_len)),
        "",
        "Transfer/compute overlap (SWGG, Experiment_5_33):",
        ascii_table(["link", "slave loop", "makespan (s)"], prefetch_rows(seq_len)),
        "",
        "Chain-pattern negative control (Viterbi, T=5000, 8 states):",
        ascii_table(["nodes", "cores", "makespan (s)"], chain_rows()),
        "",
        "Readings: compaction reduces master memory by the block-grid",
        "factor; lcf cannot beat dynamic when precedence already orders",
        "work by cost; a chain DP gains nothing from more nodes.",
    ]
    out = "\n".join(blocks)
    print(out)
    return out


if __name__ == "__main__":
    main()
