"""Fig 13 — SWGG elapsed time vs total cores on 2/3/4/5 nodes.

Paper setup: seq_len=10000, process_partition_size=200,
thread_partition_size=10, Experiment_X_Y for X in 2..5 over the Y ranges
of Section VI. Expected shape: elapsed time falls steadily as cores grow
on every node count.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    BENCH_SEQ_LEN,
    PAPER_NODE_COUNTS,
    elapsed_series,
    series_table,
    swgg_instance,
)


def compute_fig13(seq_len: int = BENCH_SEQ_LEN):
    problem = swgg_instance(seq_len)
    return [elapsed_series(problem, nodes) for nodes in PAPER_NODE_COUNTS]


@pytest.mark.parametrize("nodes", PAPER_NODE_COUNTS)
def test_fig13_panel(benchmark, nodes):
    problem = swgg_instance()
    series = benchmark.pedantic(
        lambda: elapsed_series(problem, nodes), rounds=1, iterations=1
    )
    times = series.ys
    assert times[-1] < times[0], "more cores must reduce SWGG elapsed time"


def main(seq_len: int = BENCH_SEQ_LEN) -> str:
    series = compute_fig13(seq_len)
    out = series_table(
        f"Fig 13 — SWGG elapsed time (s) vs cores, seq_len={seq_len}", series
    )
    print(out)
    return out


if __name__ == "__main__":
    from benchmarks.common import PAPER_SEQ_LEN

    main(PAPER_SEQ_LEN)
