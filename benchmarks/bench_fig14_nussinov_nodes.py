"""Fig 14 — Nussinov elapsed time vs total cores on 2/3/4/5 nodes.

Same settings as Fig 13 with the Nussinov workload (triangular 2D/1D
pattern). Expected shape: the same steady time reduction with more cores.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    BENCH_SEQ_LEN,
    PAPER_NODE_COUNTS,
    elapsed_series,
    nussinov_instance,
    series_table,
)


def compute_fig14(seq_len: int = BENCH_SEQ_LEN):
    problem = nussinov_instance(seq_len)
    return [elapsed_series(problem, nodes) for nodes in PAPER_NODE_COUNTS]


@pytest.mark.parametrize("nodes", PAPER_NODE_COUNTS)
def test_fig14_panel(benchmark, nodes):
    problem = nussinov_instance()
    series = benchmark.pedantic(
        lambda: elapsed_series(problem, nodes), rounds=1, iterations=1
    )
    assert series.ys[-1] < series.ys[0], "more cores must reduce Nussinov elapsed time"


def main(seq_len: int = BENCH_SEQ_LEN) -> str:
    series = compute_fig14(seq_len)
    out = series_table(
        f"Fig 14 — Nussinov elapsed time (s) vs cores, seq_len={seq_len}", series
    )
    print(out)
    return out


if __name__ == "__main__":
    from benchmarks.common import PAPER_SEQ_LEN

    main(PAPER_SEQ_LEN)
