"""Fig 15 — node-count comparison at equal core budgets.

Paper finding: with 20 total cores, 4 nodes beat 5; with 40 cores, 5
nodes beat 4 — i.e. a crossover between "pack threads onto few nodes"
(less scheduling-core overhead) and "spread over more nodes" (less
per-node memory contention, more NICs). Both workloads show it.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    BENCH_SEQ_LEN,
    elapsed_series,
    nussinov_instance,
    series_table,
    swgg_instance,
)
from repro.analysis.figures import crossover_points

CORES = tuple(range(14, 42, 2))
NODE_PAIR = (4, 5)


def compute_fig15(seq_len: int = BENCH_SEQ_LEN):
    out = {}
    for problem in (swgg_instance(seq_len), nussinov_instance(seq_len)):
        out[problem.name] = [
            elapsed_series(problem, nodes, cores=CORES) for nodes in NODE_PAIR
        ]
    return out


@pytest.mark.parametrize("make_problem", [swgg_instance, nussinov_instance],
                         ids=["swgg", "nussinov"])
def test_fig15_crossover(benchmark, make_problem):
    problem = make_problem()
    s4, s5 = benchmark.pedantic(
        lambda: [elapsed_series(problem, n, cores=(20, 40)) for n in NODE_PAIR],
        rounds=1,
        iterations=1,
    )
    t4, t5 = dict(zip(s4.xs, s4.ys)), dict(zip(s5.xs, s5.ys))
    assert t4[20] < t5[20], "4 nodes should win at 20 cores"
    assert t5[40] < t4[40], "5 nodes should win at 40 cores"


def main(seq_len: int = BENCH_SEQ_LEN) -> str:
    blocks = []
    for name, (s4, s5) in compute_fig15(seq_len).items():
        blocks.append(series_table(
            f"Fig 15 — {name} elapsed time (s), 4 vs 5 nodes, seq_len={seq_len}",
            [s4, s5],
        ))
        xs = crossover_points(s4, s5)
        blocks.append(f"crossover core counts ({name}): {xs or 'none detected'}")
    out = "\n\n".join(blocks)
    print(out)
    return out


if __name__ == "__main__":
    from benchmarks.common import PAPER_SEQ_LEN

    main(PAPER_SEQ_LEN)
