"""Fig 16 — elapsed time and speedup under the optimal node grouping.

For each total core count, pick the node count that minimizes makespan
(the paper's "optimal core group strategy"), then report elapsed time and
speedup against the sequential baseline. Paper: ~30x for SWGG and ~20x
for Nussinov at 50 cores; EasyHPS needs at least 4 cores to run at all.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    BENCH_SEQ_LEN,
    PAPER_PARTITION,
    best_node_count,
    nussinov_instance,
    series_table,
    swgg_instance,
)
from repro import RunConfig
from repro.analysis.figures import Series
from repro.backends.simulated import simulated_serial_makespan

CORES = (4, 8, 14, 20, 26, 32, 38, 44, 50)


def compute_fig16(seq_len: int = BENCH_SEQ_LEN):
    out = {}
    for problem in (swgg_instance(seq_len), nussinov_instance(seq_len)):
        base = simulated_serial_makespan(
            problem, RunConfig.experiment(2, 5, **PAPER_PARTITION)
        )
        elapsed, speedup, grouping = [], [], []
        for y in CORES:
            try:
                nodes, t = best_node_count(problem, y)
            except ValueError:
                continue
            elapsed.append((y, t))
            speedup.append((y, base / t))
            grouping.append((y, nodes))
        out[problem.name] = (
            Series.from_points(f"{problem.name} elapsed", elapsed),
            Series.from_points(f"{problem.name} speedup", speedup),
            Series.from_points(f"{problem.name} best X", grouping),
        )
    return out


def test_fig16_speedup_shape(benchmark):
    result = benchmark.pedantic(compute_fig16, rounds=1, iterations=1)
    sw_speed = dict(zip(*[result["swgg"][1].xs, result["swgg"][1].ys]))
    nu_speed = dict(zip(*[result["nussinov"][1].xs, result["nussinov"][1].ys]))
    assert sw_speed[50] > 15, "SWGG should exceed 15x at 50 cores"
    assert nu_speed[50] > 10, "Nussinov should exceed 10x at 50 cores"
    assert sw_speed[50] > nu_speed[50], "SWGG scales better than Nussinov"
    # Speedup grows with cores (sub-linear, as in the paper's Fig 16b/d).
    assert sw_speed[50] > sw_speed[20] > sw_speed[8]
    assert sw_speed[50] < 50, "must stay below ideal linear speedup"


def main(seq_len: int = BENCH_SEQ_LEN) -> str:
    blocks = []
    for name, (elapsed, speedup, grouping) in compute_fig16(seq_len).items():
        blocks.append(series_table(
            f"Fig 16 — {name} with optimal node grouping, seq_len={seq_len}",
            [elapsed, speedup, grouping],
        ))
    out = "\n\n".join(blocks)
    print(out)
    return out


if __name__ == "__main__":
    from benchmarks.common import PAPER_SEQ_LEN

    main(PAPER_SEQ_LEN)
