"""Fig 17 — BCW/EasyHPS runtime ratio across node counts and core budgets.

The baseline is block-cyclic wavefront (static worker pools at both
levels) implemented on the same DAG Data Driven Model. Expected shape:
ratio curves sit on or above the 1.00 line everywhere — the dynamic pool
never leaves a computable sub-task next to an idle worker, the static one
does — with the gap oscillating as core budgets hit uneven thread splits.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    BENCH_SEQ_LEN,
    PAPER_NODE_COUNTS,
    bcw_ratio_series,
    nussinov_instance,
    series_table,
    swgg_instance,
)


def compute_fig17(seq_len: int = BENCH_SEQ_LEN):
    out = {}
    for problem in (swgg_instance(seq_len), nussinov_instance(seq_len)):
        out[problem.name] = [
            bcw_ratio_series(problem, nodes) for nodes in PAPER_NODE_COUNTS
        ]
    return out


@pytest.mark.parametrize("nodes", PAPER_NODE_COUNTS[1:])  # X=2 has 1 worker
def test_fig17_ratio_above_baseline(benchmark, nodes):
    problem = nussinov_instance()
    series = benchmark.pedantic(
        lambda: bcw_ratio_series(problem, nodes), rounds=1, iterations=1
    )
    assert all(r >= 0.999 for r in series.ys), series.ys
    assert max(series.ys) > 1.01, "BCW should lose somewhere on the sweep"


def test_fig17_swgg_uneven_splits_punish_bcw(benchmark):
    problem = swgg_instance()
    series = benchmark.pedantic(
        lambda: bcw_ratio_series(problem, 3, cores=range(8, 19)), rounds=1, iterations=1
    )
    assert max(series.ys) > 1.05


def main(seq_len: int = BENCH_SEQ_LEN) -> str:
    blocks = []
    for name, series in compute_fig17(seq_len).items():
        blocks.append(series_table(
            f"Fig 17 — {name} BCW/EasyHPS runtime ratio (1.00 = parity), "
            f"seq_len={seq_len}",
            series,
        ))
    out = "\n\n".join(blocks)
    print(out)
    return out


if __name__ == "__main__":
    from benchmarks.common import PAPER_SEQ_LEN

    main(PAPER_SEQ_LEN)
