"""Micro-benchmarks of the runtime's hot paths.

Not a paper figure — these keep the substrate honest: DAG parsing
throughput, kernel cell rates, the thread-level list scheduler, and
transport round-trips. pytest-benchmark reports ops/sec.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import EditDistance, Nussinov
from repro.algorithms.kernels import edit_distance_region, nussinov_region
from repro.comm.messages import TaskAssign
from repro.comm.transport import channel_pair
from repro.dag.library import TriangularPattern, WavefrontPattern
from repro.dag.parser import DAGParser
from repro.dag.partition import partition_pattern
from repro.backends.simulated import simulate_level
from repro.schedulers.policy import make_policy


def test_parser_drain_2500_blocks(benchmark):
    """Parsing the paper-scale abstract DAG (50x50 blocks)."""
    pattern = WavefrontPattern(50, 50)

    def drain():
        return len(DAGParser(pattern).run_all())

    assert benchmark(drain) == 2500


def test_partition_triangular_paper_scale(benchmark):
    pattern = TriangularPattern(10000)
    part = benchmark(lambda: partition_pattern(pattern, 200))
    assert part.n_blocks == 50 * 51 // 2


def test_edit_distance_kernel_cells_per_second(benchmark):
    block = 256
    D = np.zeros((block + 1, block + 1))
    D[0, :] = np.arange(block + 1)
    D[:, 0] = np.arange(block + 1)
    sub = np.random.default_rng(0).random((block, block)).round()

    benchmark(lambda: edit_distance_region(D, sub, range(block), range(block)))


def test_nussinov_kernel_block(benchmark):
    n = 96
    can = np.triu(np.random.default_rng(0).random((n, n)) < 0.4, 1)

    def run():
        W = np.zeros((n, n))
        nussinov_region(W, can, 0, range(n), range(n))
        return W[0, n - 1]

    benchmark(run)


def test_simulate_level_400_tasks(benchmark):
    """The memoized thread-level scheduler (one inner DAG of paper shape)."""
    pattern = WavefrontPattern(20, 20)
    costs = {v: 0.001 for v in pattern.vertices()}
    policy = make_policy("dynamic", 11, 20)

    benchmark(lambda: simulate_level(pattern, costs, 11, policy))


def test_queue_channel_round_trip(benchmark):
    a, b = channel_pair()
    payload = {"x": np.zeros(1000)}

    def round_trip():
        a.send(TaskAssign((0, 0), 0, payload))
        return b.recv(timeout=1.0)

    benchmark(round_trip)


def test_extract_inputs_swgg_like(benchmark):
    """Master-side input slicing for a mid-matrix block."""
    from repro.algorithms import SmithWatermanGG

    sw = SmithWatermanGG.random(2000, seed=0)
    part = partition_pattern(sw.pattern(), 200)
    state = sw.make_state()

    benchmark(lambda: sw.extract_inputs(state, part, (5, 5)))


def test_block_evaluation_edit_distance(benchmark):
    ed = EditDistance.random(512, 512, seed=0)
    part = partition_pattern(ed.pattern(), 128)
    state = ed.make_state()
    inputs = ed.extract_inputs(state, part, (0, 0))
    inner = part.sub_partition((0, 0), 32)

    def evaluate():
        return ed.evaluator(part, (0, 0), inputs).run_serial(inner)

    benchmark(evaluate)


def test_block_evaluation_nussinov(benchmark):
    nu = Nussinov.random(256, seed=0)
    part = partition_pattern(nu.pattern(), 64)
    state = nu.make_state()
    inputs = nu.extract_inputs(state, part, (0, 0))
    inner = part.sub_partition((0, 0), 16)

    benchmark(lambda: nu.evaluator(part, (0, 0), inputs).run_serial(inner))
