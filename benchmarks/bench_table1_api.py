"""Table I — user APIs of the DAG Data Driven Model.

The paper's single table is an API specification, not a measurement; its
reproduction is the regenerated field list (printed here from live
introspection, pinned by ``tests/test_api_table1.py``) plus a micro-
benchmark of what those APIs cost: initializing the DAG Data Driven Model
at the paper's problem scale.

Run directly (``python benchmarks/bench_table1_api.py``) to print the
table; run under pytest-benchmark to time model initialization.
"""

from __future__ import annotations

from repro.analysis.tables import ascii_table
from repro.runtime.api import DagPatternSpec, table1_rows


def render_table1() -> str:
    rows = [
        (name, ctype, desc, "yes" if ok else "NO")
        for name, ctype, desc, ok in table1_rows()
    ]
    return ascii_table(["field", "C type (paper)", "description", "implemented"], rows)


def build_model():
    """The Section IV-D initialization path at paper scale (10000^2 cells,
    200/10 partition): pattern selection, partition, derived fields."""
    spec = DagPatternSpec(
        pattern_type="rowcol-prefix",
        dag_size=(10000, 10000),
        process_partition_size=200,
        thread_partition_size=10,
    )
    model = spec.build()
    # Touch the derived Table I fields and one thread-level partition.
    assert model.rect_size == (50, 50)
    assert model.dag_pos == (0, 0)
    sub = model.thread_level((25, 25))
    assert sub.n_blocks == 400
    return model


def test_table1_model_initialization(benchmark):
    model = benchmark(build_model)
    assert model.dag_size == (10000, 10000)


def test_table1_all_fields_implemented(benchmark):
    rows = benchmark(table1_rows)
    assert all(ok for _, _, _, ok in rows)


def main() -> str:
    out = "## Table I — DAG Data Driven Model user API\n\n" + render_table1()
    print(out)
    return out


if __name__ == "__main__":
    main()
