"""Shared helpers for the figure-reproduction benchmarks.

Scale: the paper uses seq_len = 10000 with process/thread partition sizes
200/10. Full scale is the default for ``run_all.py`` (EXPERIMENTS.md);
``pytest benchmarks/ --benchmark-only`` trims to ``BENCH_SEQ_LEN`` (env
``REPRO_BENCH_SEQLEN``, default 4000) so a benchmark pass stays quick.
Partition sizes are always the paper's.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

from repro import RunConfig
from repro.algorithms import Nussinov, SmithWatermanGG
from repro.analysis.figures import Series
from repro.analysis.tables import ascii_table
from repro.backends.simulated import (
    experiment_series,
    paper_core_range,
    run_simulated,
    simulated_serial_makespan,
)

PAPER_SEQ_LEN = 10000
BENCH_SEQ_LEN = int(os.environ.get("REPRO_BENCH_SEQLEN", "4000"))
PAPER_PARTITION = dict(process_partition=200, thread_partition=10)

#: The node counts and total-core ranges of Section VI.
PAPER_NODE_COUNTS = (2, 3, 4, 5)


def swgg_instance(seq_len: int = BENCH_SEQ_LEN) -> SmithWatermanGG:
    return SmithWatermanGG.random(seq_len, seed=1)


def nussinov_instance(seq_len: int = BENCH_SEQ_LEN) -> Nussinov:
    return Nussinov.random(seq_len, seed=2)


def elapsed_series(problem, nodes: int, cores: Sequence[int] | None = None,
                   **overrides) -> Series:
    """Makespan-vs-cores series for one node count (a Fig 13/14 panel)."""
    cores = cores if cores is not None else paper_core_range(nodes)
    merged = {**PAPER_PARTITION, **overrides}
    pts = [(y, rep.makespan) for y, rep in experiment_series(problem, nodes, cores, **merged)]
    return Series.from_points(f"{problem.name} X={nodes}", pts)


def bcw_ratio_series(problem, nodes: int, cores: Sequence[int] | None = None) -> Series:
    """BCW/EasyHPS runtime ratio series for one node count (Fig 17)."""
    cores = cores if cores is not None else paper_core_range(nodes)
    pts: List[Tuple[float, float]] = []
    for y in cores:
        try:
            dyn = RunConfig.experiment(nodes, y, **PAPER_PARTITION)
            bcw = RunConfig.experiment(
                nodes, y, scheduler="bcw", thread_scheduler="bcw", **PAPER_PARTITION
            )
        except Exception:
            continue
        _, rd = run_simulated(problem, dyn)
        _, rb = run_simulated(problem, bcw)
        pts.append((y, rb.makespan / rd.makespan))
    return Series.from_points(f"{problem.name} X={nodes} BCW/EasyHPS", pts)


def speedup_at(problem, nodes: int, cores: int) -> float:
    cfg = RunConfig.experiment(nodes, cores, **PAPER_PARTITION)
    base = simulated_serial_makespan(problem, cfg)
    _, rep = run_simulated(problem, cfg)
    return base / rep.makespan


def best_node_count(problem, cores: int,
                    node_counts: Sequence[int] = PAPER_NODE_COUNTS) -> Tuple[int, float]:
    """The paper's 'optimal core group strategy': best X for a given Y."""
    best: Tuple[int, float] | None = None
    for nodes in node_counts:
        try:
            cfg = RunConfig.experiment(nodes, cores, **PAPER_PARTITION)
        except Exception:
            continue
        _, rep = run_simulated(problem, cfg)
        if best is None or rep.makespan < best[1]:
            best = (nodes, rep.makespan)
    if best is None:
        raise ValueError(f"no feasible node count for {cores} cores")
    return best


def series_table(title: str, series: Sequence[Series]) -> str:
    """Render several series with a shared x axis as one table."""
    xs = sorted({x for s in series for x in s.xs})
    headers = ["cores"] + [s.label for s in series]
    lookup: List[Dict[float, float]] = [dict(zip(s.xs, s.ys)) for s in series]
    rows = []
    for x in xs:
        rows.append([int(x)] + [m.get(x, float("nan")) for m in lookup])
    return f"## {title}\n\n" + ascii_table(headers, rows)
