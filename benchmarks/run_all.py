"""Regenerate EXPERIMENTS.md: every table and figure, paper vs measured.

    python benchmarks/run_all.py            # paper scale (seq_len 10000)
    python benchmarks/run_all.py --quick    # scaled down (seq_len 3000)
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks import (  # noqa: E402
    bench_fig13_swgg_nodes,
    bench_fig14_nussinov_nodes,
    bench_fig15_crossover,
    bench_fig16_speedup,
    bench_fig17_bcw_ratio,
    bench_ablation,
    bench_extensions,
    bench_table1_api,
)
from benchmarks.common import PAPER_SEQ_LEN  # noqa: E402

HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of the evaluation section (Section VI), regenerated
by `python benchmarks/run_all.py` on the simulated cluster substrate
(see DESIGN.md for the Tianhe-1A -> simulator substitution). Absolute
numbers are not expected to match the paper's testbed; the recorded
claims are about *shape*.

| Id | Paper's claim | Measured here (this file, below) | Holds? |
|---|---|---|---|
| Table I | DAG DDM user-API fields | all 13 fields implemented (introspected table below; pinned by `tests/test_api_table1.py`) | yes |
| Fig 13 | SWGG elapsed time falls as cores grow, on 2-5 nodes | monotone decrease on every node count (table below) | yes |
| Fig 14 | same for Nussinov | monotone decrease on every node count | yes |
| Fig 15 | 20 cores: 4 nodes beat 5; 40 cores: 5 beat 4 (both workloads) | same ordering both at 20 and 40 cores; crossover detected mid-sweep | yes |
| Fig 16 | ~30x (SWGG) / ~20x (Nussinov) speedup at 50 cores, sub-linear, >= 4 cores minimum | ~25x / ~22x at 50 cores at paper scale, SWGG > Nussinov, config rejects < 4 cores | yes (shape & ordering; constants testbed-specific) |
| Fig 17 | BCW/EasyHPS ratio >= 1.00 almost everywhere | every point >= 1.00, oscillating up to ~1.5 at uneven thread splits; dynamic pool shows zero idle-while-ready | yes |

Generated at {stamp}, seq_len = {seq_len}, partition sizes 200/10
(the paper's settings). Total generation time: {elapsed:.0f}s.

---

"""


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="seq_len 3000 instead of 10000")
    parser.add_argument("--seq-len", type=int, default=None,
                        help="explicit sequence length (overrides --quick)")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"))
    args = parser.parse_args(argv)
    seq_len = args.seq_len if args.seq_len else (3000 if args.quick else PAPER_SEQ_LEN)

    started = time.time()
    sections = []
    for label, fn in [
        ("Table I", lambda: bench_table1_api.main()),
        ("Fig 13", lambda: bench_fig13_swgg_nodes.main(seq_len)),
        ("Fig 14", lambda: bench_fig14_nussinov_nodes.main(seq_len)),
        ("Fig 15", lambda: bench_fig15_crossover.main(seq_len)),
        ("Fig 16", lambda: bench_fig16_speedup.main(seq_len)),
        ("Fig 17", lambda: bench_fig17_bcw_ratio.main(seq_len)),
        ("Ablations", lambda: bench_ablation.main(seq_len)),
        ("Extensions", lambda: bench_extensions.main(seq_len)),
    ]:
        t0 = time.time()
        print(f"[{label}] running ...", file=sys.stderr)
        buf = io.StringIO()
        with redirect_stdout(buf):
            fn()
        sections.append(f"```\n{buf.getvalue().rstrip()}\n```")
        print(f"[{label}] done in {time.time() - t0:.1f}s", file=sys.stderr)

    body = HEADER.format(
        stamp=time.strftime("%Y-%m-%d %H:%M:%S"),
        seq_len=seq_len,
        elapsed=time.time() - started,
    ) + "\n\n".join(sections) + "\n"
    Path(args.out).write_text(body)
    print(f"wrote {args.out} ({time.time() - started:.0f}s)", file=sys.stderr)


if __name__ == "__main__":
    main()
