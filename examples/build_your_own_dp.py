"""Building a new DP application from scratch — the user-API walkthrough.

Implements *longest palindromic subsequence* (LPS) as a brand-new
DPProblem, start to finish, the way docs/extending.md describes:

    L[i, j] = L[i+1, j-1] + 2                 if s[i] == s[j]
            = max(L[i+1, j], L[i, j-1])       otherwise

An upper-triangular span recurrence — so it rides the library's
triangular machinery and immediately works on every backend, scheduler,
and the simulated cluster, with zero runtime code written here.

Run:  python examples/build_your_own_dp.py
"""

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro import EasyHPS, RunConfig
from repro.algorithms.triangular_base import TriangularProblem


def lps_region(W: np.ndarray, codes: np.ndarray, offset: int, rows, cols) -> None:
    """The region kernel: fill LPS cells of a window in place."""
    for i in reversed(rows):
        li = i - offset
        for j in cols:
            if j < i:
                continue
            lj = j - offset
            if j == i:
                W[li, lj] = 1.0
            elif codes[i] == codes[j]:
                inner = W[li + 1, lj - 1] if j - i >= 2 else 0.0
                W[li, lj] = inner + 2.0
            else:
                W[li, lj] = max(W[li + 1, lj], W[li, lj - 1])


@dataclass(frozen=True)
class LPSResult:
    length: int
    palindrome: str


class LongestPalindromicSubsequence(TriangularProblem):
    """LPS as a user-defined DPProblem (about 60 lines, all domain code)."""

    name = "lps"

    def __init__(self, text: str) -> None:
        super().__init__(len(text))
        self.text = text
        self._codes = np.frombuffer(text.encode(), dtype=np.uint8)

    # The two kernel hooks the triangular base needs:
    def cell_data_window(self, lo: int, hi: int) -> np.ndarray:
        return self._codes

    def kernel(self):
        return lps_region

    # Result extraction with a witness:
    def finalize(self, state: Dict[str, np.ndarray]) -> LPSResult:
        L = state["F"]
        left, right = [], []
        i, j = 0, self.n - 1
        while i < j:
            if self.text[i] == self.text[j]:
                left.append(self.text[i])
                right.append(self.text[j])
                i, j = i + 1, j - 1
            elif L[i + 1, j] >= L[i, j - 1]:
                i += 1
            else:
                j -= 1
        middle = [self.text[i]] if i == j else []
        return LPSResult(
            length=int(L[0, self.n - 1]),
            palindrome="".join(left + middle + list(reversed(right))),
        )

    # Independent ground truth (LPS(s) == LCS(s, reversed(s))):
    def reference(self) -> int:
        from repro.algorithms import LongestCommonSubsequence

        return LongestCommonSubsequence(self.text, self.text[::-1]).reference()


def main() -> None:
    text = "characteristically_parallelizable"
    problem = LongestPalindromicSubsequence(text)

    run = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                            process_partition=8, thread_partition=4)).run(problem)
    res = run.value
    print(f"text        : {text}")
    print(f"LPS length  : {res.length} (reference: {problem.reference()})")
    print(f"palindrome  : {res.palindrome}")
    assert res.length == problem.reference()
    assert res.palindrome == res.palindrome[::-1]
    assert len(res.palindrome) == res.length

    # And for free: the simulated cluster predicts how the new app scales.
    big = LongestPalindromicSubsequence("ab" * 1500 + "x" + "ba" * 1500)
    for cores in (7, 17, 27):
        cfg = RunConfig.experiment(3, cores, process_partition=300, thread_partition=30)
        rep = EasyHPS(cfg).run(big).report
        print(f"simulated Experiment_3_{cores}: makespan {rep.makespan:.3f}s")


if __name__ == "__main__":
    main()
