"""Exploring deployment trade-offs on the simulated cluster.

Reproduces the reasoning behind the paper's Fig 15/16 at small scale:
given a fixed core budget, how should cores be grouped into nodes? The
answer flips with the budget — few fat nodes win while contention is
mild, many thinner nodes win once packed nodes saturate — and the
dynamic scheduler beats the static ones throughout.

Run:  python examples/cluster_simulation.py
"""

from repro import EasyHPS, RunConfig
from repro.algorithms import SmithWatermanGG
from repro.analysis.tables import ascii_table
from repro.backends.simulated import simulated_serial_makespan

PART = dict(process_partition=200, thread_partition=10)


def main() -> None:
    problem = SmithWatermanGG.random(4000, seed=1)
    runner = EasyHPS()
    base = simulated_serial_makespan(problem, RunConfig.experiment(2, 5, **PART))
    print(f"sequential baseline: {base:.1f} simulated seconds\n")

    print("Core budget vs node grouping (makespan in simulated seconds):")
    rows = []
    for cores in (14, 20, 28, 40):
        row = [cores]
        for nodes in (2, 3, 4, 5):
            try:
                cfg = RunConfig.experiment(nodes, cores, **PART)
            except Exception:
                row.append("-")
                continue
            rep = runner.run(problem, cfg).report
            row.append(round(rep.makespan, 1))
        rows.append(row)
    print(ascii_table(["cores", "2 nodes", "3 nodes", "4 nodes", "5 nodes"], rows))

    print("\nScheduler comparison at Experiment_4_28:")
    rows = []
    for sched in ("dynamic", "bcw", "cw"):
        cfg = RunConfig.experiment(4, 28, scheduler=sched, thread_scheduler=sched, **PART)
        rep = runner.run(problem, cfg).report
        rows.append([sched, round(rep.makespan, 1), round(rep.idle_while_ready, 1),
                     f"{rep.utilization:.0%}", f"{base / rep.makespan:.1f}x"])
    print(ascii_table(["scheduler", "makespan", "idle-while-ready", "util", "speedup"], rows))

    print("\nReading: idle-while-ready is the paper's 'fatal situation' —")
    print("computable sub-tasks next to idle workers. The dynamic pool")
    print("keeps it at exactly zero by construction.")


if __name__ == "__main__":
    main()
