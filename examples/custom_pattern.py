"""Defining a user DAG Pattern Model — the Table I user-defined path.

Some DP problems don't fit the built-in pattern library. This example
builds a custom diamond-shaped task DAG with CustomPattern, registers a
new pattern family in the library, and drives the runtime pieces (parser,
worker-pool policies, thread-level list scheduler) directly against it —
the same machinery EasyHPS uses internally.

Run:  python examples/custom_pattern.py
"""

from repro.backends.simulated import simulate_level
from repro.dag.library import PATTERN_LIBRARY, ChainPattern, CustomPattern, register_pattern
from repro.dag.parser import DAGParser, critical_path
from repro.dag.visualize import describe
from repro.runtime.api import DagPatternSpec
from repro.schedulers.policy import make_policy


def diamond_pattern(width: int) -> CustomPattern:
    """fan-out -> parallel middle -> fan-in: a reduction-style DP stage."""
    adjacency = {("src",): []}
    for k in range(width):
        adjacency[("mid", k)] = [("src",)]
    adjacency[("sink",)] = [("mid", k) for k in range(width)]
    return CustomPattern(adjacency)


class DoubleChain(ChainPattern):
    """A user-defined pattern family: two interleaved chains."""

    def predecessors(self, vid):
        (i,) = vid
        return ((i - 2,),) if i >= 2 else ()

    def successors(self, vid):
        (i,) = vid
        return ((i + 2,),) if i + 2 < self.n else ()


def main() -> None:
    # 1. A one-off custom DAG.
    diamond = diamond_pattern(6)
    print(describe(diamond))
    parser = DAGParser(diamond)
    order = parser.run_all()
    print(f"parse order: {order[:3]} ... {order[-1]}")

    # 2. Schedule it: the middle layer parallelizes, the ends don't.
    costs = {v: 1.0 for v in diamond.vertices()}
    for workers in (1, 2, 6):
        makespan, busy, _ = simulate_level(
            diamond, costs, workers, make_policy("dynamic", workers, 1)
        )
        print(f"  {workers} workers -> makespan {makespan:.0f} (busy {busy:.0f})")
    cp, _ = critical_path(diamond, lambda v: 1.0)
    print(f"  critical path: {cp:.0f} (the floor no worker count beats)")

    # 3. Register a reusable user pattern family in the library.
    if "double-chain" not in PATTERN_LIBRARY:
        register_pattern("double-chain", DoubleChain)
    spec = DagPatternSpec(pattern=DoubleChain(12), process_partition_size=1,
                          thread_partition_size=1)
    model = spec.build()
    print(f"\nregistered pattern family: {describe(model.pattern)}")
    dc_costs = {v: 1.0 for v in model.pattern.vertices()}
    makespan, _, _ = simulate_level(
        model.pattern, dc_costs, 2, make_policy("dynamic", 2, 1)
    )
    print(f"two interleaved chains on 2 workers: makespan {makespan:.0f} "
          "(each chain runs on its own worker)")


if __name__ == "__main__":
    main()
