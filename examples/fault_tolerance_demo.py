"""Hierarchical fault tolerance in action (paper Figs 10 and 12).

Injects deterministic faults at both levels of a real threads-backend run
— a slave "process" that crashes, one that hangs past the timeout, and a
computing thread that dies mid-sub-sub-task — and shows the run still
producing the exact serial answer, with every recovery visible in the
report.

Run:  python examples/fault_tolerance_demo.py
"""

from repro import EasyHPS, RunConfig
from repro.algorithms import LongestCommonSubsequence
from repro.cluster.faults import FaultPlan, FaultRule


def main() -> None:
    problem = LongestCommonSubsequence.random(120, 120, seed=3)
    expected = problem.reference()
    print(f"reference LCS length: {expected}\n")

    # Process level: sub-task (0,0) crashes on its first dispatch; (1,1)
    # hangs past the deadline and answers late (the stale-epoch path).
    plan = FaultPlan([
        FaultRule("crash", task_id=(0, 0), attempt=0),
        FaultRule("hang", task_id=(1, 1), attempt=0),
    ])
    # Thread level: the computing thread running inner sub-sub-task (0,0)
    # dies. Note the rule matches by *inner* id, so it fires once inside
    # every sub-task's thread-level DAG — each one restarts a thread
    # (Fig 12), which is why the restart counter below exceeds one.
    thread_plan = FaultPlan([FaultRule("crash", task_id=(0, 0), attempt=0)])

    config = RunConfig(
        nodes=3,
        threads_per_node=2,
        backend="threads",
        process_partition=30,
        thread_partition=10,
        task_timeout=0.5,       # seconds before redistribution
        subtask_timeout=0.3,    # seconds before a thread restart
        hang_duration=1.2,      # how long the hung slave stalls
        fault_plan=plan,
        thread_fault_plan=thread_plan,
    )
    run = EasyHPS(config).run(problem)

    print(run.report.summary())
    print()
    assert run.value.length == expected, "recovered run must match the reference"
    print(f"recovered result: LCS length {run.value.length} == reference ✓")
    print(f"process-level redistributions: {run.report.faults_recovered}")
    print(f"thread restarts:               {run.report.thread_restarts}")
    print(f"stale results dropped:         {run.report.stale_results}")


if __name__ == "__main__":
    main()
