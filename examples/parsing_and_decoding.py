"""Grammar recognition (CYK) and HMM decoding (Viterbi) under EasyHPS.

Two applications beyond the paper's two benchmarks, exercising the
pattern families its library defines but its evaluation doesn't touch:
CYK on the triangular pattern (context-free grammar recognition — named
in the paper's introduction) and Viterbi on the pure chain pattern (the
degenerate DP where no two blocks can ever run in parallel).

Run:  python examples/parsing_and_decoding.py
"""

import numpy as np

from repro import EasyHPS, RunConfig
from repro.algorithms import CYKParsing, Grammar, ViterbiDecoding
from repro.runtime.easypdp import run_easypdp


def parse_demo(runner: EasyHPS) -> None:
    g = Grammar.arithmetic()
    print("Arithmetic grammar (CNF):", len(g.nonterminals), "nonterminals,",
          len(g.binary_rules), "binary rules")
    for text in ("a+a*a", "(a+a)*(a+a)", "a+*a"):
        cy = CYKParsing(g, text)
        run = runner.run(cy)
        verdict = "accepted" if run.value.accepted else "REJECTED"
        print(f"  {text!r:18} -> {verdict} ({run.value.derivable_spans} derivable spans)")
        if run.value.tree:
            print(f"    parse tree: {run.value.tree}")


def decode_demo() -> None:
    # A 3-state weather HMM observed through 2 symbols; decode the most
    # probable hidden path on a single shared-memory node (EasyPDP mode).
    rng = np.random.default_rng(4)
    vi = ViterbiDecoding.random(T=500, n_states=3, n_symbols=2, seed=4)
    result, report = run_easypdp(vi, n_threads=2, partition_size=50)
    counts = {s: result.path.count(s) for s in range(3)}
    print(f"\nViterbi over T=500: log-prob {result.log_prob:.1f}, "
          f"state occupancy {counts}")
    print(f"  chain DP = no parallel blocks: {report.n_subtasks} sub-sub-tasks "
          "ran strictly in sequence (an honest negative control)")
    del rng


def main() -> None:
    runner = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                               process_partition=6, thread_partition=3))
    parse_demo(runner)
    decode_demo()


if __name__ == "__main__":
    main()
