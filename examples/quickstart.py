"""Quickstart: parallelize a dynamic-programming problem with EasyHPS.

Computes the edit distance between two DNA sequences three ways — serial
reference, the real multi-threaded master/slave runtime, and the real
multi-process runtime (the MPI stand-in) — and shows they agree, plus a
simulated-cluster run that predicts performance at cluster scale.

Run:  python examples/quickstart.py
"""

from repro import EasyHPS, RunConfig
from repro.algorithms import EditDistance


def main() -> None:
    # A DP problem instance. Every bundled algorithm has a .random()
    # convenience constructor; real sequences go through the constructor.
    problem = EditDistance.random(300, 300, seed=42)

    # 1. Serial reference run — the correctness baseline.
    serial = EasyHPS(RunConfig(nodes=1, backend="serial")).run(problem)
    print(f"serial:    distance = {serial.value.distance}")

    # 2. Real threads: one master, two slave parts, two computing threads
    #    each — the whole Fig 9/Fig 11 protocol in-process.
    threads = EasyHPS(
        RunConfig(nodes=3, threads_per_node=2, backend="threads",
                  process_partition=64, thread_partition=16)
    ).run(problem)
    print(f"threads:   distance = {threads.value.distance}")
    print(threads.report.summary())

    # 3. Real processes: slave parts as OS processes, messages over pipes.
    processes = EasyHPS(
        RunConfig(nodes=3, threads_per_node=2, backend="processes",
                  process_partition=64, thread_partition=16)
    ).run(problem)
    print(f"processes: distance = {processes.value.distance}")

    assert serial.value.distance == threads.value.distance == processes.value.distance

    # 4. Simulated cluster: predict the schedule on the paper's
    #    Experiment_4_22 layout (4 nodes, 22 cores total).
    sim = EasyHPS(RunConfig.experiment(4, 22, process_partition=64,
                                       thread_partition=16)).run(problem)
    print(f"simulated Experiment_4_22 makespan: {sim.report.makespan * 1e3:.2f} ms "
          f"(utilization {sim.report.utilization:.0%})")


if __name__ == "__main__":
    main()
