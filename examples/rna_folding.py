"""RNA secondary-structure prediction with the Nussinov algorithm.

The paper's second workload: maximum base-pairing over the upper
triangle (the Triangular 2D/1D pattern of its Fig 5). This example folds
a tRNA-like synthetic sequence, prints the dot-bracket structure, and
demonstrates the min_sep (hairpin loop) knob.

Run:  python examples/rna_folding.py
"""

from repro import EasyHPS, RunConfig
from repro.algorithms import Nussinov
from repro.algorithms.sequences import random_rna


def fold(seq: str, min_sep: int) -> None:
    runner = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                               process_partition=24, thread_partition=8))
    run = runner.run(Nussinov(seq, min_sep=min_sep))
    res = run.value
    print(f"  min_sep={min_sep}: {res.score} pairs")
    print(f"  seq: {seq}")
    print(f"  str: {res.dot_bracket}")


def main() -> None:
    # A sequence with strong self-complementarity: a stem-loop candidate.
    stem = "GGGGCCCAACGGUU"
    loop = "AAAACUUU"
    seq = stem + loop + stem[::-1].translate(str.maketrans("ACGU", "UGCA"))
    print("Designed stem-loop:")
    fold(seq, min_sep=3)

    print("\nRandom RNA, effect of the minimum hairpin separation:")
    rand = random_rna(72, seed=7)
    for min_sep in (1, 3, 6):
        fold(rand, min_sep)

    print("\nNote: with larger min_sep fewer pairings are legal, so the")
    print("score can only go down — a quick structural sanity check.")


if __name__ == "__main__":
    main()
