"""Visualizing simulated schedules: Gantt charts of dynamic vs static pools.

Records a per-sub-task trace of an SWGG run on the simulated cluster and
renders one ASCII Gantt per scheduler. Under the dynamic pool the node
rows are solid; under CW the ownership bands leave visible idle holes —
the paper's 'fatal situation' drawn directly.

Run:  python examples/schedule_visualization.py
"""

from repro import EasyHPS, RunConfig
from repro.algorithms import SmithWatermanGG
from repro.analysis.gantt import busy_fraction, critical_tail, render_gantt


def main() -> None:
    problem = SmithWatermanGG.random(3000, seed=1)
    runner = EasyHPS()

    for scheduler in ("dynamic", "bcw", "cw"):
        cfg = RunConfig.experiment(
            4, 19, scheduler=scheduler, thread_scheduler=scheduler if scheduler != "cw" else "dynamic",
            process_partition=300, thread_partition=30, trace=True,
        )
        report = runner.run(problem, cfg).report
        print(f"\n=== {scheduler}: makespan {report.makespan:.2f}s, "
              f"idle-while-ready {report.idle_while_ready:.2f}s")
        print(render_gantt(report.trace, width=72, makespan=report.makespan))
        fractions = busy_fraction(report.trace, report.makespan)
        print("busy fractions:", {k: f"{v:.0%}" for k, v in fractions.items()})

    cfg = RunConfig.experiment(4, 19, process_partition=300, thread_partition=30, trace=True)
    report = runner.run(problem, cfg).report
    print("\nLast finishers under the dynamic pool (end-game tail):")
    for e in critical_tail(report.trace, k=4):
        print(f"  block {e.task_id} on node {e.node}: "
              f"compute {e.compute_start:.2f}..{e.compute_end:.2f}s")


if __name__ == "__main__":
    main()
