"""Local sequence alignment with Smith-Waterman General Gap (SWGG).

The paper's first workload: SW with an *arbitrary* gap-penalty function,
whose row/column prefix scans give every cell an O(n) dependency (the
RowColPrefix 2D/1D pattern). This example aligns two DNA reads that share
a planted motif, runs the alignment on the threads backend, prints the
alignment, and then shows the effect of swapping in a concave
(log-shaped) gap function — something affine-gap implementations cannot
express.

Run:  python examples/sequence_alignment.py
"""

import numpy as np

from repro import EasyHPS, RunConfig
from repro.algorithms import SmithWatermanGG
from repro.algorithms.sequences import random_dna


def plant_motif(host: str, motif: str, at: int) -> str:
    return host[:at] + motif + host[at + len(motif):]


def show(result) -> None:
    print(f"  score {result.score:.1f}, alignment ends at {result.end}")
    print(f"  a: {result.aligned_a}")
    print(f"  b: {result.aligned_b}")


def main() -> None:
    motif = "ACGTGTTGACCA" * 3
    a = plant_motif(random_dna(220, seed=1), motif, 40)
    b = plant_motif(random_dna(260, seed=2), motif, 150)

    runner = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                               process_partition=48, thread_partition=12))

    print("Affine gap penalty (2 + 0.5 * length), evaluated generally:")
    affine = runner.run(SmithWatermanGG(a, b, gap_open=2.0, gap_extend=0.5))
    show(affine.value)

    print("\nConcave gap penalty (3 + 2 * log1p(length)) — long gaps cheap:")
    concave = runner.run(
        SmithWatermanGG(a, b, gap_fn=lambda d: 3.0 + 2.0 * np.log1p(d))
    )
    show(concave.value)

    print("\nThe planted motif should dominate both alignments:")
    print(f"  motif present in a's alignment: {motif[:12] in affine.value.aligned_a.replace('-', '')}")
    print("\nRun report (affine case):")
    print(affine.report.summary())


if __name__ == "__main__":
    main()
