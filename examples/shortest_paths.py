"""All-pairs shortest paths with blocked Floyd-Warshall.

Floyd-Warshall's staged dependency structure (round t relaxes all paths
through pivot block t) is not a blocked matrix DP — it shows the DAG Data
Driven Model extended past the paper's pattern library, the closing
suggestion of its conclusion. The phase-3 blocks of each round are
embarrassingly parallel, so this workload parallelizes well at both
levels.

Run:  python examples/shortest_paths.py
"""

import numpy as np

from repro import EasyHPS, RunConfig
from repro.algorithms import FloydWarshall
from repro.algorithms.floyd_warshall import reconstruct_path


def ring_with_shortcuts(n: int, shortcuts: int, seed: int) -> np.ndarray:
    """A directed ring plus random shortcut edges — small-world-ish."""
    rng = np.random.default_rng(seed)
    W = np.full((n, n), np.inf)
    np.fill_diagonal(W, 0.0)
    for i in range(n):
        W[i, (i + 1) % n] = 1.0
    for _ in range(shortcuts):
        u, v = rng.integers(0, n, 2)
        if u != v:
            W[u, v] = float(rng.uniform(0.5, 3.0))
    return W


def main() -> None:
    n = 60
    fw = FloydWarshall(ring_with_shortcuts(n, shortcuts=25, seed=7))

    run = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads",
                            process_partition=15, thread_partition=5)).run(fw)
    dist = run.value.dist
    print(f"graph: {n} vertices, {int(np.isfinite(fw.weights).sum()) - n} edges")
    print(f"reachable pairs: {run.value.n_reachable_pairs} / {n * n}")
    print(f"diameter (finite): {dist[np.isfinite(dist)].max():.1f}")
    print(f"scheduled {run.report.n_tasks} staged blocks "
          f"({fw.build_partition(15).abstract.b} rounds)")

    u, v = 0, n // 2
    path = reconstruct_path(fw.weights, dist, u, v)
    print(f"\nshortest path {u} -> {v} (cost {dist[u, v]:.1f}):")
    print("  " + " -> ".join(map(str, path)))

    # Against the ring-only distance (n/2 hops), shortcuts should help:
    print(f"  ring-only cost would be {v - u}; shortcuts saved "
          f"{v - u - dist[u, v]:.1f}")

    cfg = RunConfig.experiment(4, 22, process_partition=64, thread_partition=16)
    big = FloydWarshall.random(512, density=0.05, seed=1)
    rep = EasyHPS(cfg).run(big).report
    print(f"\nsimulated 512-vertex instance on Experiment_4_22: "
          f"{rep.makespan:.3f}s, utilization {rep.utilization:.0%}")


if __name__ == "__main__":
    main()
