"""Legacy shim so `pip install -e .`/`setup.py develop` works offline (no wheel pkg)."""
from setuptools import setup

setup()
