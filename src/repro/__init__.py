"""EasyHPS reproduction — a multilevel hybrid parallel runtime for dynamic programming.

This package reproduces the system described in *EasyHPS: A Multilevel
Hybrid Parallel System for Dynamic Programming* (Du, Yu, Sun, Sun, Tang,
Yin — IPPS 2013): a master–slave runtime that parallelizes dynamic
programming across a cluster of multi-core nodes using a DAG Data Driven
Model, dynamic worker pools at both the processor level and the thread
level, and timeout-based hierarchical fault tolerance.

Top-level convenience re-exports cover the public API most users need:

>>> from repro import EasyHPS, RunConfig
>>> from repro.algorithms import SmithWatermanGG
>>> system = EasyHPS(RunConfig(nodes=4, threads_per_node=4))
>>> result = system.run(SmithWatermanGG.random(200, seed=1))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

__all__ = ["EasyHPS", "RunConfig", "RunResult", "RunReport", "__version__"]

if TYPE_CHECKING:  # pragma: no cover - typing-time imports only
    from repro.analysis.report import RunReport
    from repro.runtime.config import RunConfig
    from repro.runtime.system import EasyHPS, RunResult

_LAZY = {
    "RunConfig": ("repro.runtime.config", "RunConfig"),
    "EasyHPS": ("repro.runtime.system", "EasyHPS"),
    "RunResult": ("repro.runtime.system", "RunResult"),
    "RunReport": ("repro.analysis.report", "RunReport"),
}


def __getattr__(name: str):
    """Lazily resolve the public re-exports to keep ``import repro`` cheap."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
