"""DP applications implemented on top of the DAG Data Driven Model.

Each algorithm is a :class:`~repro.algorithms.problem.DPProblem`: it names
its DAG pattern, knows how to split itself into blocks, what data each
block needs (the data-communication level), how to compute a block (the
``process`` function of Table I), and what a block costs — the latter
feeds the simulated cluster backend.
"""

from repro.algorithms.problem import BlockEvaluator, DPProblem
from repro.algorithms.edit_distance import EditDistance
from repro.algorithms.lcs import LongestCommonSubsequence
from repro.algorithms.needleman_wunsch import NeedlemanWunsch
from repro.algorithms.smith_waterman import SmithWatermanGG
from repro.algorithms.nussinov import Nussinov
from repro.algorithms.matrix_chain import MatrixChainOrder
from repro.algorithms.cyk import CYKParsing, Grammar
from repro.algorithms.viterbi import ViterbiDecoding
from repro.algorithms.floyd_warshall import FloydWarshall
from repro.algorithms.obst import OptimalBST
from repro.algorithms.knapsack import Knapsack
from repro.algorithms import sequences

__all__ = [
    "DPProblem",
    "BlockEvaluator",
    "EditDistance",
    "LongestCommonSubsequence",
    "NeedlemanWunsch",
    "SmithWatermanGG",
    "Nussinov",
    "MatrixChainOrder",
    "CYKParsing",
    "Grammar",
    "ViterbiDecoding",
    "FloydWarshall",
    "OptimalBST",
    "Knapsack",
    "sequences",
]
