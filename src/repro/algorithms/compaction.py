"""Boundary-retention (compact-memory) mode for wavefront problems.

The paper closes by naming space consumption as EasyHPS's main open
problem: the master holds the entire DP matrix. For the 2D/0D wavefront
family the fix is structural — a finished block is only ever read through
its last row, last column, and corner cell, so the master can retain
O(h + w) per block instead of O(h * w), and drop even that once every
consumer block has *completed* (not merely been dispatched — completion
is the safe point under fault-tolerant re-dispatch).

This module provides the boundary store plus the memory accounting; the
grid problems opt in with ``retain="boundary"``. The price is that only
the final score survives — tracebacks need the dense matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.algorithms.problem import ELEMENT_BYTES
from repro.dag.partition import Partition
from repro.dag.pattern import VertexId


@dataclass(frozen=True)
class CompactScoreResult:
    """Score-only result of a boundary-mode run, with memory accounting."""

    score: float
    #: High-water mark of boundary bytes held by the master.
    peak_bytes: int
    #: What the dense matrix would have cost.
    dense_bytes: int

    @property
    def reduction(self) -> float:
        """Dense-to-peak memory ratio (> 1 means compaction helped)."""
        if self.peak_bytes == 0:
            return float("inf")
        return self.dense_bytes / self.peak_bytes


class BoundaryStore:
    """Master-side store of finished-block boundaries with GC.

    Keys are block ids; values are the block's last row, last column, and
    corner (bottom-right) cell. ``mark_complete`` records that a consumer
    finished and frees every source block whose consumer set is done.
    """

    def __init__(self) -> None:
        self.rows: Dict[VertexId, np.ndarray] = {}
        self.cols: Dict[VertexId, np.ndarray] = {}
        self.corners: Dict[VertexId, float] = {}
        self.final: Optional[float] = None
        self.current_bytes = 0
        self.peak_bytes = 0
        self._completed: Set[VertexId] = set()

    # -- storage ---------------------------------------------------------------

    def put(self, bid: VertexId, block: np.ndarray) -> None:
        """Retain one finished block's boundary data."""
        self.rows[bid] = block[-1, :].copy()
        self.cols[bid] = block[:, -1].copy()
        self.corners[bid] = float(block[-1, -1])
        self.current_bytes += ELEMENT_BYTES * (block.shape[0] + block.shape[1] + 1)
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def _free(self, bid: VertexId) -> None:
        row = self.rows.pop(bid, None)
        col = self.cols.pop(bid, None)
        if row is not None:
            self.current_bytes -= ELEMENT_BYTES * (len(row) + len(col) + 1)
        self.corners.pop(bid, None)

    # -- garbage collection ----------------------------------------------------------

    @staticmethod
    def sources_of(partition: Partition, bid: VertexId) -> Iterable[VertexId]:
        """Finished blocks whose boundaries block ``bid`` reads: NW family."""
        i, j = bid
        for src in ((i - 1, j), (i, j - 1), (i - 1, j - 1)):
            if partition.abstract.contains(src):
                yield src

    @staticmethod
    def consumers_of(partition: Partition, bid: VertexId) -> Tuple[VertexId, ...]:
        """Blocks that will read ``bid``'s boundary."""
        i, j = bid
        return tuple(
            c
            for c in ((i + 1, j), (i, j + 1), (i + 1, j + 1))
            if partition.abstract.contains(c)
        )

    def mark_complete(self, partition: Partition, bid: VertexId) -> None:
        """Record completion of ``bid`` and free fully-consumed sources.

        Completion (not dispatch) is the free point: a timed-out block can
        be re-dispatched and must still find its inputs alive.
        """
        self._completed.add(bid)
        for src in self.sources_of(partition, bid):
            if src in self.rows and all(
                c in self._completed for c in self.consumers_of(partition, src)
            ):
                self._free(src)

    def __repr__(self) -> str:
        return (
            f"BoundaryStore(live={len(self.rows)} blocks, "
            f"current={self.current_bytes}B, peak={self.peak_bytes}B)"
        )
