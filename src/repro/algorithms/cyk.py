"""CYK recognition of context-free grammars — a triangular 2D/1D DP.

The paper's introduction names context-free grammar recognition as a
motivating DP application; this module provides it on the same
:class:`TriangularPattern` machinery as Nussinov. Cells are ``uint64``
bitmasks over nonterminals: bit ``A`` of ``F[i, j]`` says nonterminal
``A`` derives the token span ``i..j`` (inclusive). Binary rules combine
row/column strips exactly like Nussinov's bifurcation scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.algorithms.kernels import cyk_region
from repro.algorithms.triangular_base import TriangularBlockEvaluator, TriangularProblem
from repro.dag.partition import Partition
from repro.dag.pattern import VertexId


@dataclass(frozen=True)
class Grammar:
    """A context-free grammar in Chomsky normal form (<= 64 nonterminals).

    ``binary_rules`` are ``(A, B, C)`` meaning ``A -> B C``;
    ``terminal_rules`` are ``(A, ch)`` meaning ``A -> ch``.
    """

    nonterminals: Tuple[str, ...]
    start: str
    binary_rules: Tuple[Tuple[str, str, str], ...]
    terminal_rules: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if len(self.nonterminals) > 64:
            raise ValueError("bitmask cells support at most 64 nonterminals")
        if len(set(self.nonterminals)) != len(self.nonterminals):
            raise ValueError("duplicate nonterminal names")
        known = set(self.nonterminals)
        if self.start not in known:
            raise ValueError(f"start symbol {self.start!r} not a nonterminal")
        for a, b, c in self.binary_rules:
            if not {a, b, c} <= known:
                raise ValueError(f"rule {a} -> {b} {c} uses unknown nonterminals")
        for a, ch in self.terminal_rules:
            if a not in known:
                raise ValueError(f"terminal rule {a} -> {ch!r} uses unknown nonterminal")
            if len(ch) != 1:
                raise ValueError(f"terminal must be one character, got {ch!r}")

    # -- derived tables ---------------------------------------------------------

    def index(self, name: str) -> int:
        return self.nonterminals.index(name)

    def rule_indices(self) -> np.ndarray:
        """Binary rules as an (R, 3) integer array for the kernel."""
        return np.array(
            [[self.index(a), self.index(b), self.index(c)] for a, b, c in self.binary_rules],
            dtype=np.int64,
        ).reshape(-1, 3)

    def terminal_mask(self, ch: str) -> np.uint64:
        """Bitmask of nonterminals that derive the single token ``ch``."""
        mask = np.uint64(0)
        for a, t in self.terminal_rules:
            if t == ch:
                mask |= np.uint64(1) << np.uint64(self.index(a))
        return mask

    @property
    def terminals(self) -> Tuple[str, ...]:
        return tuple(sorted({ch for _, ch in self.terminal_rules}))

    # -- sampling ------------------------------------------------------------------

    def generate(self, rng: np.random.Generator, max_len: int = 40) -> str:
        """Sample one string of the language (rejection on length)."""
        by_head: Dict[str, list] = {}
        for a, b, c in self.binary_rules:
            by_head.setdefault(a, []).append(("bin", b, c))
        for a, ch in self.terminal_rules:
            by_head.setdefault(a, []).append(("term", ch, None))

        for _ in range(200):
            out = []
            stack = [self.start]
            budget = max_len
            ok = True
            while stack:
                head = stack.pop()
                options = by_head.get(head, [])
                if not options:
                    ok = False
                    break
                # Bias towards terminals as the budget shrinks.
                terms = [o for o in options if o[0] == "term"]
                if budget <= len(stack) + 1 and terms:
                    options = terms
                kind, x, y = options[rng.integers(0, len(options))]
                if kind == "term":
                    out.append(x)
                    budget -= 1
                else:
                    stack.append(y)
                    stack.append(x)
                if budget < 0:
                    ok = False
                    break
            if ok and out:
                return "".join(out)
        raise RuntimeError("could not sample a string within the length budget")

    # -- built-ins -------------------------------------------------------------------

    @classmethod
    def arithmetic(cls) -> "Grammar":
        """CNF of ``E -> E+T | T;  T -> T*F | F;  F -> (E) | a``."""
        return cls(
            nonterminals=("E", "T", "F", "R1", "R2", "R3", "Plus", "Times", "Open", "Close"),
            start="E",
            binary_rules=(
                ("E", "E", "R1"), ("R1", "Plus", "T"),
                ("T", "T", "R2"), ("R2", "Times", "F"),
                ("F", "Open", "R3"), ("R3", "E", "Close"),
                ("E", "T", "R2"), ("E", "Open", "R3"),
                ("T", "Open", "R3"),
            ),
            terminal_rules=(
                ("Plus", "+"), ("Times", "*"), ("Open", "("), ("Close", ")"),
                ("E", "a"), ("T", "a"), ("F", "a"),
            ),
        )

    @classmethod
    def palindromes(cls) -> "Grammar":
        """Palindromes over {a, b} of length >= 1."""
        return cls(
            nonterminals=("P", "A", "B", "C1", "C2"),
            start="P",
            binary_rules=(
                ("P", "A", "C1"), ("C1", "P", "A"),
                ("P", "B", "C2"), ("C2", "P", "B"),
                ("P", "A", "A"), ("P", "B", "B"),
            ),
            terminal_rules=(("P", "a"), ("P", "b"), ("A", "a"), ("B", "b")),
        )


@dataclass(frozen=True)
class CYKResult:
    """Final answer: acceptance, per-span derivability counts, parse tree."""

    accepted: bool
    #: Number of (i, j) spans derivable by at least one nonterminal.
    derivable_spans: int
    #: Nested ``(head, left, right)`` / ``(head, token)`` tuples, or None.
    tree: Optional[tuple] = field(default=None, compare=False)


class CYKParsing(TriangularProblem):
    """CYK recognition under EasyHPS."""

    name = "cyk"
    matrix_dtype = np.uint64

    def __init__(self, grammar: Grammar, text: str) -> None:
        if not text:
            raise ValueError("text must be non-empty")
        unknown = set(text) - set(grammar.terminals)
        if unknown:
            raise ValueError(f"text uses characters outside the grammar: {sorted(unknown)}")
        super().__init__(len(text))
        self.grammar = grammar
        self.text = text
        self._rules = grammar.rule_indices()
        # Charge the split scan per rule per split.
        self.span_cost_scale = max(1, len(grammar.binary_rules))

    @classmethod
    def random(cls, n: int, seed: int | None = None,
               grammar: Grammar | None = None) -> "CYKParsing":
        """A sampled in-language sentence of length ~n (arithmetic grammar)."""
        grammar = grammar or Grammar.arithmetic()
        rng = np.random.default_rng(seed)
        text = grammar.generate(rng, max_len=max(4, n))
        return cls(grammar, text)

    # -- kernel hooks -----------------------------------------------------------

    def cell_data_window(self, lo: int, hi: int) -> np.ndarray:
        return self._rules

    def kernel(self):
        return cyk_region

    def evaluator(
        self, partition: Partition, bid: VertexId, inputs: Dict[str, np.ndarray]
    ) -> TriangularBlockEvaluator:
        ev = super().evaluator(partition, bid, inputs)
        if partition.is_diagonal_block(bid):
            rows, _ = partition.block_ranges(bid)
            for i in rows:
                ev.seed_cell(i, i, self.grammar.terminal_mask(self.text[i]))
        return ev

    # -- result ------------------------------------------------------------------------

    def derives(self, state: Dict[str, np.ndarray], nt: str, i: int, j: int) -> bool:
        bit = np.uint64(1) << np.uint64(self.grammar.index(nt))
        return bool(state["F"][i, j] & bit)

    def finalize(self, state: Dict[str, np.ndarray]) -> CYKResult:
        F = state["F"]
        accepted = self.derives(state, self.grammar.start, 0, self.n - 1)
        derivable = int(np.count_nonzero(np.triu(F)))
        tree = self._tree(F, self.grammar.start, 0, self.n - 1) if accepted else None
        return CYKResult(accepted=accepted, derivable_spans=derivable, tree=tree)

    def _tree(self, F: np.ndarray, head: str, i: int, j: int) -> tuple:
        if i == j:
            return (head, self.text[i])
        one = np.uint64(1)
        for a, b, c in self.grammar.binary_rules:
            if a != head:
                continue
            bb = one << np.uint64(self.grammar.index(b))
            cc = one << np.uint64(self.grammar.index(c))
            for k in range(i, j):
                if (F[i, k] & bb) and (F[k + 1, j] & cc):
                    return (head, self._tree(F, b, i, k), self._tree(F, c, k + 1, j))
        raise AssertionError(f"no derivation found for {head} over ({i}, {j})")

    # -- reference --------------------------------------------------------------------

    def reference(self) -> bool:
        """Independent pure-Python set-based CYK recognition."""
        n = self.n
        table = [[set() for _ in range(n)] for _ in range(n)]
        for i, ch in enumerate(self.text):
            for a, t in self.grammar.terminal_rules:
                if t == ch:
                    table[i][i].add(a)
        for span in range(2, n + 1):
            for i in range(n - span + 1):
                j = i + span - 1
                for k in range(i, j):
                    for a, b, c in self.grammar.binary_rules:
                        if b in table[i][k] and c in table[k + 1][j]:
                            table[i][j].add(a)
        return self.grammar.start in table[0][n - 1]

    def __repr__(self) -> str:
        return f"CYKParsing(n={self.n}, grammar={len(self.grammar.nonterminals)} NTs)"
