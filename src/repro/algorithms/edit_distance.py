"""Levenshtein edit distance — the canonical 2D/0D wavefront DP.

``D[i, j] = min(D[i-1, j] + 1, D[i, j-1] + 1, D[i-1, j-1] + [a_i != b_j])``
with ``D[i, 0] = i`` and ``D[0, j] = j`` — Algorithm 4.1 of the paper with
``x_i = y_j = 1`` and ``z_{ij}`` the mismatch indicator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.grid_base import PairwiseGridProblem
from repro.algorithms.kernels import edit_distance_region


@dataclass(frozen=True)
class EditDistanceResult:
    """Final answer: the distance plus an optimal edit script."""

    distance: int
    #: Edit operations as ("match"|"substitute"|"insert"|"delete", i, j) with
    #: 0-based positions into the two sequences.
    script: Tuple[Tuple[str, int, int], ...]

    def n_edits(self) -> int:
        return sum(1 for op, _, _ in self.script if op != "match")


class EditDistance(PairwiseGridProblem):
    """Edit distance between two strings under EasyHPS."""

    name = "edit-distance"

    @classmethod
    def random(cls, m: int, n: int | None = None, seed: int | None = None) -> "EditDistance":
        """Instance over random DNA sequences of lengths ``m`` and ``n``."""
        from repro.algorithms.sequences import random_dna

        n = m if n is None else n
        return cls(random_dna(m, seed=seed), random_dna(n, seed=None if seed is None else seed + 1))

    def boundary_row(self) -> np.ndarray:
        return np.arange(self.n + 1, dtype=np.float64)

    def boundary_col(self) -> np.ndarray:
        return np.arange(self.m + 1, dtype=np.float64)

    def cell_data(self, rows: range, cols: range) -> np.ndarray:
        a = np.frombuffer(self.a.encode(), dtype=np.uint8)[rows.start : rows.stop]
        b = np.frombuffer(self.b.encode(), dtype=np.uint8)[cols.start : cols.stop]
        return (a[:, None] != b[None, :]).astype(np.float64)

    def kernel(self):
        return edit_distance_region

    def finalize(self, state: Dict[str, np.ndarray]):
        if self.retain == "boundary":
            return self.boundary_result(state)
        D = state["D"]
        return EditDistanceResult(
            distance=int(D[self.m, self.n]),
            script=tuple(self._traceback(D)),
        )

    def _traceback(self, D: np.ndarray) -> List[Tuple[str, int, int]]:
        """Recover one optimal edit script by walking the matrix backwards."""
        ops: List[Tuple[str, int, int]] = []
        i, j = self.m, self.n
        while i > 0 or j > 0:
            here = D[i, j]
            if i > 0 and j > 0 and here == D[i - 1, j - 1] + (self.a[i - 1] != self.b[j - 1]):
                op = "match" if self.a[i - 1] == self.b[j - 1] else "substitute"
                ops.append((op, i - 1, j - 1))
                i, j = i - 1, j - 1
            elif i > 0 and here == D[i - 1, j] + 1:
                ops.append(("delete", i - 1, j))
                i -= 1
            else:
                ops.append(("insert", i, j - 1))
                j -= 1
        ops.reverse()
        return ops

    def reference(self) -> int:
        """Independent pure-Python implementation (row-rolling)."""
        prev = list(range(self.n + 1))
        for i in range(1, self.m + 1):
            cur = [i] + [0] * self.n
            ai = self.a[i - 1]
            for j in range(1, self.n + 1):
                cur[j] = min(
                    prev[j] + 1,
                    cur[j - 1] + 1,
                    prev[j - 1] + (ai != self.b[j - 1]),
                )
            prev = cur
        return prev[self.n]
