"""Blocked Floyd-Warshall all-pairs shortest paths — a staged DP family.

The paper closes with "DAG Data Driven Model can be also improved to
adopt more kinds of algorithms"; this module does that. Floyd-Warshall's
dependency structure is *staged*: round ``t`` relaxes every path through
pivot block ``t``, so the schedulable DAG lives over 3-index vertices
``(t, I, J)`` — not a blocked version of any 2D cell grid. It therefore
exercises the :meth:`DPProblem.build_partition` extension point with its
own :class:`FWPartition` instead of the built-in family rules.

Blocked algorithm (Venkataraman et al.): per round ``t``

1. *pivot*   block ``(t, t)``: in-block FW over the pivot index range;
2. *row/col* blocks ``(t, J)`` / ``(I, t)``: relax against the pivot;
3. *phase-3* blocks ``(I, J)``: relax against the round's row and column
   blocks — every cell independent, hence thread-parallel
   (:class:`IndependentGridPattern` inner DAGs). Pivot/row/col blocks
   carry a loop dependence over the pivot index and run as single
   sub-sub-tasks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.algorithms.problem import ELEMENT_BYTES, BlockEvaluator, DPProblem
from repro.dag.library import IndependentGridPattern
from repro.dag.partition import BlockGrid, Partition, _as_pair, partition_pattern
from repro.dag.pattern import DAGPattern, VertexId
from repro.utils.errors import PatternError


class FloydWarshallPattern(DAGPattern):
    """The staged blocked-FW DAG: vertices ``(t, i, j)`` over a B x B grid.

    Dependencies:

    - every vertex needs its previous-round self ``(t-1, i, j)``;
    - phase-3 vertices (``i != t and j != t``) need the round's row block
      ``(t, t, j)`` and column block ``(t, i, t)``;
    - row/column vertices need the round's pivot ``(t, t, t)``;
    - **anti-dependence (WAR) edges**: a vertex that overwrites a strip
      region other round-``t-1`` vertices read in place — the round's
      pivot block ``(t, t-1, t-1)``, row blocks ``(t, t-1, j)``, column
      blocks ``(t, i, t-1)`` — waits for every round-``t-1`` reader of
      that region. Without these edges an in-place state store lets a
      round-``t`` write land while a round-``t-1`` reader is still
      queued, which keeps min-plus *correct* (relaxation is monotone)
      but makes the committed bits schedule-dependent; with them, every
      backend commits bit-identical regions in any execution order.
    """

    def __init__(self, b: int) -> None:
        if b <= 0:
            raise PatternError(f"block-grid size must be positive, got {b}")
        self.b = int(b)

    def vertices(self) -> Iterator[VertexId]:
        for t in range(self.b):
            for i in range(self.b):
                for j in range(self.b):
                    yield (t, i, j)

    def n_vertices(self) -> int:
        return self.b ** 3

    def contains(self, vid: VertexId) -> bool:
        if len(vid) != 3:
            return False
        return all(0 <= x < self.b for x in vid)

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        t, i, j = vid
        preds: List[VertexId] = []
        if t > 0:
            preds.append((t - 1, i, j))
            p = t - 1
            if i == p and j == p:
                # Overwrites round p's pivot region: wait for its readers,
                # the round-p row and column blocks.
                preds.extend((p, p, jj) for jj in range(self.b) if jj != p)
                preds.extend((p, ii, p) for ii in range(self.b) if ii != p)
            elif i == p:
                # Overwrites row strip R(p, j): read by phase-3 column j.
                preds.extend((p, ii, j) for ii in range(self.b) if ii != p)
            elif j == p:
                # Overwrites column strip R(i, p): read by phase-3 row i.
                preds.extend((p, i, jj) for jj in range(self.b) if jj != p)
        if i != t and j != t:
            preds.append((t, t, j))
            preds.append((t, i, t))
        elif (i == t) != (j == t):
            preds.append((t, t, t))
        return tuple(preds)

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        t, i, j = vid
        succs: List[VertexId] = []
        if t + 1 < self.b:
            succs.append((t + 1, i, j))
        if i == t and j == t:
            succs.extend((t, t, jj) for jj in range(self.b) if jj != t)
            succs.extend((t, ii, t) for ii in range(self.b) if ii != t)
        elif i == t:  # row block (t, t, j): feeds phase 3 of column j
            succs.extend((t, ii, j) for ii in range(self.b) if ii != t)
        elif j == t:  # column block (t, i, t): feeds phase 3 of row i
            succs.extend((t, i, jj) for jj in range(self.b) if jj != t)
        if t + 1 < self.b:
            # Mirror of the WAR edges: this vertex's in-place strip reads
            # gate the round-(t+1) writers of those strips.
            if i != t and j != t:
                succs.append((t + 1, t, j))
                succs.append((t + 1, i, t))
            elif (i == t) != (j == t):
                succs.append((t + 1, t, t))
        return tuple(succs)

    def _key(self) -> tuple:
        return (type(self).__name__, self.b)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloydWarshallPattern) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"FloydWarshallPattern(b={self.b})"


def fw_block_type(bid: VertexId) -> str:
    """Classify a blocked-FW vertex: pivot, row, col, or phase3."""
    t, i, j = bid
    if i == t and j == t:
        return "pivot"
    if i == t:
        return "row"
    if j == t:
        return "col"
    return "phase3"


class FWPartition(Partition):
    """Partition of a blocked FW instance: the abstract DAG is staged."""

    def __init__(self, n: int, block: int) -> None:
        b = math.ceil(n / block)
        grid = BlockGrid(shape=(n, n), block_shape=(block, block))
        super().__init__(
            base=FloydWarshallPattern(n),
            abstract=FloydWarshallPattern(b),
            grid=grid,
            kind="floyd-warshall",
        )

    def block_ranges(self, bid: VertexId) -> Tuple[range, range]:
        _, i, j = bid
        return (self.grid.row_range(i), self.grid.col_range(j))

    def is_diagonal_block(self, bid: VertexId) -> bool:
        return False

    def cell_count(self, bid: VertexId) -> int:
        rows, cols = self.block_ranges(bid)
        return len(rows) * len(cols)

    def block_pattern(self, bid: VertexId) -> DAGPattern:
        rows, cols = self.block_ranges(bid)
        return IndependentGridPattern(len(rows), len(cols))

    def sub_partition(self, bid: VertexId, thread_block_shape) -> Partition:
        rows, cols = self.block_ranges(bid)
        h, w = len(rows), len(cols)
        if fw_block_type(bid) == "phase3":
            return partition_pattern(IndependentGridPattern(h, w), thread_block_shape)
        # Pivot/row/col blocks carry a loop dependence over the pivot
        # index: one monolithic sub-sub-task.
        return partition_pattern(IndependentGridPattern(h, w), (h, w))


@dataclass(frozen=True)
class FWResult:
    """All-pairs distances plus basic reachability statistics."""

    dist: np.ndarray
    n_reachable_pairs: int

    def distance(self, u: int, v: int) -> float:
        return float(self.dist[u, v])


def reconstruct_path(weights: np.ndarray, dist: np.ndarray, u: int, v: int) -> List[int]:
    """One shortest path ``u -> v`` from the distance matrix alone.

    Greedy next-hop search: ``w`` is the next hop iff
    ``weights[u, w] + dist[w, v] == dist[u, v]``.
    """
    if not np.isfinite(dist[u, v]):
        raise ValueError(f"{v} unreachable from {u}")
    path = [u]
    cur = u
    guard = 0
    while cur != v:
        nxt = None
        for w in range(weights.shape[0]):
            if w != cur and np.isfinite(weights[cur, w]):
                if np.isclose(weights[cur, w] + dist[w, v], dist[cur, v]):
                    nxt = w
                    break
        if nxt is None:
            raise AssertionError(f"path reconstruction stuck at {cur}")
        path.append(nxt)
        cur = nxt
        guard += 1
        if guard > weights.shape[0]:
            raise AssertionError("path reconstruction loop — inconsistent matrices")
    return path


class _FWEvaluator(BlockEvaluator):
    """Relaxes one block for one round, by block type."""

    def __init__(self, kind: str, inputs: Dict[str, np.ndarray]) -> None:
        self._kind = kind
        self._W = inputs["self"].copy()
        self._row = inputs.get("row")
        self._col = inputs.get("col")
        self._pivot = inputs.get("pivot")

    def run_subblock(self, local_rows: range, local_cols: range) -> None:
        W = self._W
        if self._kind == "pivot":
            for k in range(W.shape[0]):
                np.minimum(W, W[:, k : k + 1] + W[k : k + 1, :], out=W)
        elif self._kind == "row":
            # W[r, c] = min(W[r, c], pivot[r, k] + W[k, c]), in-place over k.
            for k in range(self._pivot.shape[1]):
                np.minimum(W, self._pivot[:, k : k + 1] + W[k : k + 1, :], out=W)
        elif self._kind == "col":
            for k in range(self._pivot.shape[0]):
                np.minimum(W, W[:, k : k + 1] + self._pivot[k : k + 1, :], out=W)
        else:  # phase3: cells independent; relax only the sub-rectangle
            sub = W[local_rows.start : local_rows.stop, local_cols.start : local_cols.stop]
            row = self._col[local_rows.start : local_rows.stop, :]  # W[i, k] strip
            col = self._row[:, local_cols.start : local_cols.stop]  # W[k, j] strip
            for k in range(row.shape[1]):
                np.minimum(sub, row[:, k : k + 1] + col[k : k + 1, :], out=sub)

    def outputs(self) -> Dict[str, np.ndarray]:
        return {"block": self._W}


class FloydWarshall(DPProblem):
    """All-pairs shortest paths under EasyHPS (staged blocked algorithm)."""

    name = "floyd-warshall"

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
            raise ValueError(f"weights must be square, got {weights.shape}")
        if np.any(np.diag(weights) != 0):
            raise ValueError("diagonal must be zero (distance to self)")
        if np.any(weights < 0):
            raise ValueError("negative edge weights are not supported")
        self.weights = weights
        self.n = weights.shape[0]

    @classmethod
    def random(cls, n: int, density: float = 0.25, seed: int | None = None) -> "FloydWarshall":
        """A random directed graph: ``density`` fraction of edges present,
        uniform weights in [1, 10), ``inf`` elsewhere, zero diagonal."""
        rng = np.random.default_rng(seed)
        W = np.where(rng.random((n, n)) < density, rng.uniform(1, 10, (n, n)), np.inf)
        np.fill_diagonal(W, 0.0)
        return cls(W)

    # -- structure --------------------------------------------------------------

    def pattern(self) -> FloydWarshallPattern:
        """The cell-granularity staged DAG (block size 1) — conceptual
        only; the runtime always schedules :meth:`build_partition`."""
        return FloydWarshallPattern(self.n)

    def build_partition(self, process_partition) -> FWPartition:
        block, _ = _as_pair(process_partition)
        return FWPartition(self.n, block)

    def default_partition_sizes(self) -> Tuple[int, int]:
        proc = max(1, self.n // 4)
        return (proc, max(1, proc // 2))

    # -- data flow -----------------------------------------------------------------

    def make_state(self) -> Dict[str, np.ndarray]:
        return {"W": self.weights.copy()}

    def extract_inputs(
        self, state: Dict[str, np.ndarray], partition: Partition, bid: VertexId
    ) -> Dict[str, np.ndarray]:
        t, i, j = bid
        W = state["W"]
        rows, cols = partition.block_ranges(bid)
        pivot_rows = partition.grid.row_range(t)
        inputs = {"self": W[rows.start : rows.stop, cols.start : cols.stop].copy()}
        kind = fw_block_type(bid)
        if kind in ("row", "col"):
            inputs["pivot"] = W[
                pivot_rows.start : pivot_rows.stop, pivot_rows.start : pivot_rows.stop
            ].copy()
        elif kind == "phase3":
            # W[i, k] strip: this block's rows against the pivot columns.
            inputs["col"] = W[rows.start : rows.stop, pivot_rows.start : pivot_rows.stop].copy()
            # W[k, j] strip: the pivot rows against this block's columns.
            inputs["row"] = W[pivot_rows.start : pivot_rows.stop, cols.start : cols.stop].copy()
        return inputs

    def evaluator(
        self, partition: Partition, bid: VertexId, inputs: Dict[str, np.ndarray]
    ) -> _FWEvaluator:
        return _FWEvaluator(fw_block_type(bid), inputs)

    def apply_result(
        self,
        state: Dict[str, np.ndarray],
        partition: Partition,
        bid: VertexId,
        outputs: Dict[str, np.ndarray],
    ) -> None:
        rows, cols = partition.block_ranges(bid)
        state["W"][rows.start : rows.stop, cols.start : cols.stop] = outputs["block"]

    def finalize(self, state: Dict[str, np.ndarray]) -> FWResult:
        dist = state["W"]
        return FWResult(dist=dist.copy(), n_reachable_pairs=int(np.isfinite(dist).sum()))

    # -- reference --------------------------------------------------------------------

    def reference(self) -> np.ndarray:
        """Independent unblocked Floyd-Warshall (vectorized per pivot)."""
        D = self.weights.copy()
        for k in range(self.n):
            np.minimum(D, D[:, k : k + 1] + D[k : k + 1, :], out=D)
        return D

    # -- cost model ---------------------------------------------------------------------

    def _pivot_width(self, partition: Partition, t: int) -> int:
        return len(partition.grid.row_range(t))

    def block_flops(self, partition: Partition, bid: VertexId) -> float:
        rows, cols = partition.block_ranges(bid)
        return float(len(rows) * len(cols) * self._pivot_width(partition, bid[0]))

    def subblock_flops(
        self, partition: Partition, bid: VertexId, local_rows: range, local_cols: range
    ) -> float:
        return float(len(local_rows) * len(local_cols) * self._pivot_width(partition, bid[0]))

    def block_cost_class(self, partition: Partition, bid: VertexId) -> object:
        rows, cols = partition.block_ranges(bid)
        return (len(rows), len(cols), self._pivot_width(partition, bid[0]), fw_block_type(bid))

    def input_bytes(self, partition: Partition, bid: VertexId) -> int:
        rows, cols = partition.block_ranges(bid)
        h, w = len(rows), len(cols)
        b = self._pivot_width(partition, bid[0])
        kind = fw_block_type(bid)
        extra = {"pivot": b * b, "row": b * b, "col": b * b, "phase3": h * b + b * w}[kind]
        if kind == "pivot":
            extra = 0
        return ELEMENT_BYTES * (h * w + extra)

    def __repr__(self) -> str:
        return f"FloydWarshall(n={self.n})"
