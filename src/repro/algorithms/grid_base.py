"""Shared plumbing for pairwise-sequence grid DP problems.

Edit distance and LCS are both 2D/0D wavefront problems over an
``(m+1) x (n+1)`` matrix with unit boundary data dependencies: a block
needs only the matrix row above it (including the NW corner) and the
matrix column to its left. This module factors that common block I/O; the
subclasses supply the recurrence kernel and boundary conditions.

Coordinate convention: DP *cell* ``(i, j)`` (0-based over the sequence
characters) lives at matrix entry ``D[i+1, j+1]``; matrix row/column 0
hold the boundary conditions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.algorithms.compaction import BoundaryStore, CompactScoreResult
from repro.algorithms.problem import ELEMENT_BYTES, BlockEvaluator, DPProblem
from repro.dag.library import WavefrontPattern
from repro.dag.partition import Partition
from repro.dag.pattern import VertexId


class GridBlockEvaluator(BlockEvaluator):
    """Evaluator over a local ``(h+1, w+1)`` matrix with shipped boundaries."""

    def __init__(
        self,
        top: np.ndarray,
        left: np.ndarray,
        cell_data: np.ndarray,
        kernel: Callable[[np.ndarray, np.ndarray, range, range], None],
    ) -> None:
        h, w = cell_data.shape
        if top.shape != (w + 1,):
            raise ValueError(f"top boundary must have shape {(w + 1,)}, got {top.shape}")
        if left.shape != (h,):
            raise ValueError(f"left boundary must have shape {(h,)}, got {left.shape}")
        self._local = np.empty((h + 1, w + 1), dtype=np.float64)
        self._local[0, :] = top
        self._local[1:, 0] = left
        self._cell_data = cell_data
        self._kernel = kernel

    def run_subblock(self, local_rows: range, local_cols: range) -> None:
        self._kernel(self._local, self._cell_data, local_rows, local_cols)

    def outputs(self) -> Dict[str, np.ndarray]:
        return {"block": self._local[1:, 1:]}


class PairwiseGridProblem(DPProblem):
    """Base class for 2D/0D problems over two sequences ``a`` (rows) and ``b`` (cols)."""

    #: Cell-update operation count charged per cell by the cost model.
    FLOPS_PER_CELL = 3.0

    def __init__(self, a: str, b: str, *, retain: str = "full") -> None:
        if not a or not b:
            raise ValueError("both sequences must be non-empty")
        if retain not in ("full", "boundary"):
            raise ValueError(f"retain must be 'full' or 'boundary', got {retain!r}")
        self.a = a
        self.b = b
        self.m = len(a)
        self.n = len(b)
        #: "full" keeps the dense DP matrix (tracebacks available);
        #: "boundary" keeps only live block boundaries (score-only results,
        #: O(wavefront) master memory — see repro.algorithms.compaction).
        self.retain = retain

    # -- structure --------------------------------------------------------

    def pattern(self) -> WavefrontPattern:
        return WavefrontPattern(self.m, self.n)

    # -- hooks for subclasses ------------------------------------------------

    def boundary_row(self) -> np.ndarray:
        """Matrix row 0 (length ``n + 1``)."""
        raise NotImplementedError

    def boundary_col(self) -> np.ndarray:
        """Matrix column 0 (length ``m + 1``)."""
        raise NotImplementedError

    def cell_data(self, rows: range, cols: range) -> np.ndarray:
        """Per-cell data (match/mismatch) for a block of cells."""
        raise NotImplementedError

    def kernel(self) -> Callable[[np.ndarray, np.ndarray, range, range], None]:
        """The region kernel filling the local matrix."""
        raise NotImplementedError

    # -- DPProblem interface -----------------------------------------------------

    def make_state(self) -> Dict[str, np.ndarray]:
        if self.retain == "boundary":
            return {"boundary": BoundaryStore()}
        D = np.zeros((self.m + 1, self.n + 1), dtype=np.float64)
        D[0, :] = self.boundary_row()
        D[:, 0] = self.boundary_col()
        return {"D": D}

    def extract_inputs(
        self, state: Dict[str, np.ndarray], partition: Partition, bid: VertexId
    ) -> Dict[str, np.ndarray]:
        if self.retain == "boundary":
            return self._extract_from_boundary(state["boundary"], partition, bid)
        rows, cols = partition.block_ranges(bid)
        D = state["D"]
        return {
            "top": D[rows.start, cols.start : cols.stop + 1].copy(),
            "left": D[rows.start + 1 : rows.stop + 1, cols.start].copy(),
        }

    def _extract_from_boundary(
        self, store: BoundaryStore, partition: Partition, bid: VertexId
    ) -> Dict[str, np.ndarray]:
        """Assemble the top/left inputs from retained block boundaries."""
        I, J = bid
        rows, cols = partition.block_ranges(bid)
        h, w = len(rows), len(cols)
        top = np.empty(w + 1, dtype=np.float64)
        if I == 0:
            top[:] = self.boundary_row()[cols.start : cols.stop + 1]
        else:
            top[1:] = store.rows[(I - 1, J)]
            if J == 0:
                top[0] = self.boundary_col()[rows.start]
            else:
                top[0] = store.corners[(I - 1, J - 1)]
        if J == 0:
            left = self.boundary_col()[rows.start + 1 : rows.stop + 1].copy()
        else:
            left = store.cols[(I, J - 1)].copy()
        assert left.shape == (h,)
        return {"top": top, "left": left}

    def evaluator(
        self, partition: Partition, bid: VertexId, inputs: Dict[str, np.ndarray]
    ) -> GridBlockEvaluator:
        rows, cols = partition.block_ranges(bid)
        return GridBlockEvaluator(
            top=inputs["top"],
            left=inputs["left"],
            cell_data=self.cell_data(rows, cols),
            kernel=self.kernel(),
        )

    def apply_result(
        self,
        state: Dict[str, np.ndarray],
        partition: Partition,
        bid: VertexId,
        outputs: Dict[str, np.ndarray],
    ) -> None:
        if self.retain == "boundary":
            store: BoundaryStore = state["boundary"]
            store.put(bid, outputs["block"])
            last = (partition.grid.n_block_rows - 1, partition.grid.n_block_cols - 1)
            if bid == last:
                store.final = float(outputs["block"][-1, -1])
            store.mark_complete(partition, bid)
            return
        rows, cols = partition.block_ranges(bid)
        state["D"][rows.start + 1 : rows.stop + 1, cols.start + 1 : cols.stop + 1] = outputs[
            "block"
        ]

    def dense_bytes(self) -> int:
        """What the full DP matrix costs — the compaction baseline."""
        return ELEMENT_BYTES * (self.m + 1) * (self.n + 1)

    def boundary_result(self, state: Dict[str, np.ndarray]) -> CompactScoreResult:
        """Score-only result of a boundary-mode run (subclass finalize hook)."""
        store: BoundaryStore = state["boundary"]
        if store.final is None:
            raise RuntimeError("boundary run incomplete: final block missing")
        return CompactScoreResult(
            score=store.final,
            peak_bytes=store.peak_bytes,
            dense_bytes=self.dense_bytes(),
        )

    def finalize(self, state: Dict[str, np.ndarray]) -> Any:
        raise NotImplementedError

    def reference(self) -> Any:
        raise NotImplementedError

    # -- cost model --------------------------------------------------------------

    def region_flops(self, rows: range, cols: range, diagonal: bool = False) -> float:
        return self.FLOPS_PER_CELL * len(rows) * len(cols)

    def input_bytes(self, partition: Partition, bid: VertexId) -> int:
        rows, cols = partition.block_ranges(bid)
        return ELEMENT_BYTES * (len(rows) + len(cols) + 1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self.m}, n={self.n})"
