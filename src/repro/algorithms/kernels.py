"""Vectorized DP cell-update kernels.

These are the innermost ``process`` functions bound to DAG vertices. All
kernels operate on *regions* (sub-rectangles of a block's local working
matrix) so the same code serves serial whole-block evaluation and
thread-level sub-block evaluation; callers guarantee the DAG ordering that
makes the reads safe.

Vectorization strategy follows the HPC guides: anti-diagonal sweeps turn
the 2D/0D recurrences into O(h+w) numpy calls instead of O(h·w)
interpreted steps, and the O(n) per-cell scans of the 2D/1D recurrences
(general-gap Smith-Waterman, Nussinov bifurcation) are single ``np.max``
reductions over contiguous slices.
"""

from __future__ import annotations

import numpy as np

NEG_INF = float(-1e30)


def antidiagonal_indices(h: int, w: int, d: int) -> tuple[np.ndarray, np.ndarray]:
    """Row/col index arrays of anti-diagonal ``d`` of an ``h x w`` region."""
    a0 = max(0, d - w + 1)
    a1 = min(h - 1, d)
    rows = np.arange(a0, a1 + 1)
    return rows, d - rows


def edit_distance_region(D: np.ndarray, sub: np.ndarray, rows: range, cols: range) -> None:
    """Fill an edit-distance region of a local matrix in place.

    ``D`` is the block-local matrix with one boundary row/column
    (``D[0, :]`` and ``D[:, 0]`` already hold predecessor data); ``sub`` is
    the 0/1 mismatch matrix for the whole block. ``rows``/``cols`` are
    0-based cell ranges within the block; cell ``(a, b)`` lives at
    ``D[a+1, b+1]``.
    """
    h, w = len(rows), len(cols)
    r0, c0 = rows.start, cols.start
    V = D[r0 : r0 + h + 1, c0 : c0 + w + 1]
    S = sub[r0 : r0 + h, c0 : c0 + w]
    for d in range(h + w - 1):
        a, b = antidiagonal_indices(h, w, d)
        V[a + 1, b + 1] = np.minimum(
            np.minimum(V[a, b + 1] + 1, V[a + 1, b] + 1),
            V[a, b] + S[a, b],
        )


def lcs_region(D: np.ndarray, match: np.ndarray, rows: range, cols: range) -> None:
    """Fill a longest-common-subsequence region in place (same layout as
    :func:`edit_distance_region`, ``match`` boolean)."""
    h, w = len(rows), len(cols)
    r0, c0 = rows.start, cols.start
    V = D[r0 : r0 + h + 1, c0 : c0 + w + 1]
    M = match[r0 : r0 + h, c0 : c0 + w]
    for d in range(h + w - 1):
        a, b = antidiagonal_indices(h, w, d)
        V[a + 1, b + 1] = np.where(
            M[a, b],
            V[a, b] + 1,
            np.maximum(V[a, b + 1], V[a + 1, b]),
        )


def needleman_wunsch_region(
    D: np.ndarray, scores: np.ndarray, gap: float, rows: range, cols: range
) -> None:
    """Global-alignment (Needleman-Wunsch, linear gap) region in place.

    Same layout as :func:`edit_distance_region`; ``scores`` holds the
    per-cell substitution scores and ``gap`` the (positive) per-symbol
    gap penalty. Max-form recurrence.
    """
    h, w = len(rows), len(cols)
    r0, c0 = rows.start, cols.start
    V = D[r0 : r0 + h + 1, c0 : c0 + w + 1]
    S = scores[r0 : r0 + h, c0 : c0 + w]
    for d in range(h + w - 1):
        a, b = antidiagonal_indices(h, w, d)
        V[a + 1, b + 1] = np.maximum(
            np.maximum(V[a, b + 1] - gap, V[a + 1, b] - gap),
            V[a, b] + S[a, b],
        )


def cyk_region(
    W: np.ndarray,
    rule_masks: np.ndarray,
    offset: int,
    rows: range,
    cols: range,
) -> None:
    """Weighted-boolean CYK over bitmask cells, one region in place.

    ``W`` is a triangular window of ``uint64`` bitmasks: bit ``A`` of
    ``W[i - offset, j - offset]`` says nonterminal ``A`` derives the span
    ``i..j`` (inclusive). Diagonal cells must be pre-seeded with the
    terminal-rule masks. ``rule_masks`` is an ``(R, 3)`` int array of
    ``(A, B, C)`` binary rules. Per cell: for every split ``k`` and rule
    ``A -> B C``, if ``B`` derives ``i..k`` and ``C`` derives ``k+1..j``
    then set bit ``A`` — the split scan is vectorized over ``k``.
    """
    one = np.uint64(1)
    for i in reversed(rows):
        li = i - offset
        for j in cols:
            if j <= i:
                continue
            lj = j - offset
            left = W[li, li:lj]          # spans (i, k), k = i..j-1
            down = W[li + 1 : lj + 1, lj]  # spans (k+1, j)
            bits = W[li, lj]
            for a, b, c in rule_masks:
                if bits & (one << np.uint64(a)):
                    continue  # already derivable; skip the scan
                hit = np.any(
                    ((left >> np.uint64(b)) & one).astype(bool)
                    & ((down >> np.uint64(c)) & one).astype(bool)
                )
                if hit:
                    bits |= one << np.uint64(a)
            W[li, lj] = bits


def swgg_region(
    Hloc: np.ndarray,
    Hrow: np.ndarray,
    Hcol: np.ndarray,
    sub: np.ndarray,
    gap: np.ndarray,
    c0: int,
    r0: int,
    rows: range,
    cols: range,
) -> None:
    """Smith-Waterman with a *general* gap function, one region in place.

    Layout (all row/col indices refer to the 1-based global DP matrix H of
    shape ``(m+1, n+1)``; the block spans global rows ``r0..r0+h`` and
    cols ``c0..c0+w``):

    - ``Hloc``  — ``(h+1, w+1)`` local matrix; ``Hloc[0, :]`` = global row
      ``r0-1`` over cols ``c0-1..``, ``Hloc[:, 0]`` = global col ``c0-1``;
      cell ``(a, b)`` of the block is ``Hloc[a+1, b+1]``.
    - ``Hrow``  — ``(h, c0)``: full row prefixes ``H[r0.., 0:c0]``.
    - ``Hcol``  — ``(r0, w)``: full column prefixes ``H[0:r0, c0..]``.
    - ``sub``   — ``(h, w)`` substitution scores for the block's cells.
    - ``gap``   — ``gap[d]`` = penalty of a gap of length ``d`` (``gap[0]``
      unused); length must cover ``max(m, n)``.

    Recurrence (paper Section VI's SWGG): ``H[i,j] = max(0, H[i-1,j-1] +
    s(a_i, b_j), max_k H[i,k] - gap(j-k), max_k H[k,j] - gap(i-k))`` — the
    two scans are why the pattern is :class:`RowColPrefixPattern`.
    """
    for a in rows:
        i = r0 + a
        row_local = Hloc[a + 1]
        for b in cols:
            j = c0 + b
            # E: gaps ending in the row, H[i, k] - gap(j - k).
            # Global prefix k = 0..c0-1 maps to gap indices j..b+1, i.e.
            # the reversed slice gap[j:b:-1] (length c0 since j = c0 + b);
            # the local part k = c0..j-1 maps to gap[b:0:-1].
            e = NEG_INF
            if c0 > 0:
                e = float(np.max(Hrow[a, :] - gap[j:b:-1]))
            if b > 0:
                e = max(e, float(np.max(row_local[1 : b + 1] - gap[b:0:-1])))
            # F: gaps ending in the column, H[k, j] - gap(i - k); same
            # split with rows (global stop index a, since i = r0 + a).
            f = NEG_INF
            if r0 > 0:
                f = float(np.max(Hcol[:, b] - gap[i:a:-1]))
            if a > 0:
                f = max(f, float(np.max(Hloc[1 : a + 1, b + 1] - gap[a:0:-1])))
            diag = Hloc[a, b] + sub[a, b]
            row_local[b + 1] = max(0.0, diag, e, f)


def nussinov_region(
    W: np.ndarray,
    can_pair: np.ndarray,
    offset: int,
    rows: range,
    cols: range,
    min_sep: int = 1,
) -> None:
    """Nussinov maximum base-pairing, one region of a window in place.

    ``W`` is the block's working window: ``W[i - offset, j - offset]``
    holds ``F[i, j]``; entries below the diagonal are fixed at 0 (empty
    spans), which makes the recurrence uniform. ``can_pair[i - offset,
    j - offset]`` says whether global bases i, j pair. ``rows``/``cols``
    are *global* index ranges of the region; only cells with ``i <= j``
    are computed. ``min_sep`` is the minimum hairpin separation: bases
    pair only when ``j - i > min_sep``.

    Per cell: ``F[i,j] = max(F[i+1,j], F[i,j-1], F[i+1,j-1] + pair(i,j),
    max_{i<=k<j} F[i,k] + F[k+1,j])`` — the bifurcation max is a single
    vector reduction, which is also the O(n) data dependency that makes
    Nussinov 2D/1D.
    """
    for i in reversed(rows):
        li = i - offset
        for j in cols:
            if j < i:
                continue
            lj = j - offset
            if j == i:
                W[li, lj] = 0.0
                continue
            best = max(W[li + 1, lj], W[li, lj - 1])
            if j - i > min_sep and can_pair[li, lj]:
                best = max(best, W[li + 1, lj - 1] + 1.0)
            # Bifurcation: k from i to j-1 (k == i duplicates the
            # "unpaired i" case harmlessly since W[li, li] == 0).
            if lj > li + 1:
                ks = W[li, li : lj] + W[li + 1 : lj + 1, lj]
                best = max(best, float(np.max(ks)))
            W[li, lj] = best


def matrix_chain_region(
    W: np.ndarray,
    dims: np.ndarray,
    offset: int,
    rows: range,
    cols: range,
) -> None:
    """Matrix-chain-order cost, one region of a window in place.

    Same window layout as :func:`nussinov_region` with min instead of max:
    ``m[i,j] = min_{i<=k<j} m[i,k] + m[k+1,j] + dims[i]*dims[k+1]*dims[j+1]``
    and ``m[i,i] = 0``. ``dims`` is the full dimension vector (length
    ``n + 1`` for ``n`` matrices).
    """
    for i in reversed(rows):
        li = i - offset
        for j in cols:
            if j < i:
                continue
            lj = j - offset
            if j == i:
                W[li, lj] = 0.0
                continue
            ks = np.arange(i, j)
            costs = (
                W[li, li : lj]
                + W[li + 1 : lj + 1, lj]
                + dims[i] * dims[ks + 1] * dims[j + 1]
            )
            W[li, lj] = float(np.min(costs))
