"""0/1 knapsack — a chain-of-rows DP.

``D[t, c] = max(D[t-1, c], D[t-1, c - w_t] + v_t)`` over items ``t`` and
capacities ``c``: each row depends on the *whole* previous row (the
back-reference ``c - w_t`` can jump arbitrarily far left), so the
schedulable DAG is a chain of item blocks, like Viterbi — another honest
"parallelize across rows is impossible, but rows vectorize" workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.problem import ELEMENT_BYTES, BlockEvaluator, DPProblem
from repro.dag.library import ChainPattern
from repro.dag.partition import Partition
from repro.dag.pattern import VertexId


@dataclass(frozen=True)
class KnapsackResult:
    """Final answer: best value and one optimal item subset."""

    value: float
    chosen: Tuple[int, ...]

    def total_weight(self, weights) -> int:
        return int(sum(weights[i] for i in self.chosen))


class _KnapsackEvaluator(BlockEvaluator):
    """Computes DP rows for a block of items given the previous row."""

    def __init__(self, problem: "Knapsack", t_range: range, prev: np.ndarray) -> None:
        self._p = problem
        self._t_range = t_range
        self._prev = prev
        self._rows = np.empty((len(t_range), problem.capacity + 1), dtype=np.float64)

    def run_subblock(self, local_rows: range, local_cols: range) -> None:
        p = self._p
        for a in local_rows:
            t = self._t_range.start + a
            prev = self._prev if a == 0 else self._rows[a - 1]
            row = prev.copy()
            w, v = p.weights[t], p.values[t]
            if w <= p.capacity:
                np.maximum(row[w:], prev[: p.capacity + 1 - w] + v, out=row[w:])
            self._rows[a] = row

    def outputs(self) -> Dict[str, np.ndarray]:
        return {"rows": self._rows}


class Knapsack(DPProblem):
    """0/1 knapsack under EasyHPS (chain pattern over item blocks)."""

    name = "knapsack"

    def __init__(self, weights, values, capacity: int) -> None:
        self.weights = [int(w) for w in weights]
        self.values = [float(v) for v in values]
        if len(self.weights) != len(self.values) or not self.weights:
            raise ValueError("weights and values must be equal-length and non-empty")
        if any(w <= 0 for w in self.weights):
            raise ValueError("item weights must be positive")
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = int(capacity)
        self.n_items = len(self.weights)

    @classmethod
    def random(cls, n: int, capacity: int | None = None, seed: int | None = None) -> "Knapsack":
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 20, size=n)
        values = rng.integers(1, 50, size=n).astype(float)
        capacity = capacity if capacity is not None else int(weights.sum() // 3) + 1
        return cls(weights.tolist(), values.tolist(), capacity)

    # -- structure -------------------------------------------------------------

    def pattern(self) -> ChainPattern:
        return ChainPattern(self.n_items)

    def default_partition_sizes(self) -> Tuple[int, int]:
        proc = max(1, self.n_items // 8)
        return (proc, max(1, proc // 4))

    # -- data flow -----------------------------------------------------------------

    def make_state(self) -> Dict[str, np.ndarray]:
        return {"D": np.zeros((self.n_items, self.capacity + 1), dtype=np.float64)}

    def extract_inputs(
        self, state: Dict[str, np.ndarray], partition: Partition, bid: VertexId
    ) -> Dict[str, np.ndarray]:
        rows, _ = partition.block_ranges(bid)
        if rows.start == 0:
            return {"prev": np.zeros(self.capacity + 1, dtype=np.float64)}
        return {"prev": state["D"][rows.start - 1].copy()}

    def evaluator(
        self, partition: Partition, bid: VertexId, inputs: Dict[str, np.ndarray]
    ) -> _KnapsackEvaluator:
        rows, _ = partition.block_ranges(bid)
        return _KnapsackEvaluator(self, rows, inputs["prev"])

    def apply_result(
        self,
        state: Dict[str, np.ndarray],
        partition: Partition,
        bid: VertexId,
        outputs: Dict[str, np.ndarray],
    ) -> None:
        rows, _ = partition.block_ranges(bid)
        state["D"][rows.start : rows.stop] = outputs["rows"]

    def finalize(self, state: Dict[str, np.ndarray]) -> KnapsackResult:
        D = state["D"]
        chosen: List[int] = []
        c = self.capacity
        for t in range(self.n_items - 1, -1, -1):
            without = D[t - 1, c] if t > 0 else 0.0
            if not np.isclose(D[t, c], without):
                chosen.append(t)
                c -= self.weights[t]
        chosen.reverse()
        return KnapsackResult(value=float(D[self.n_items - 1, self.capacity]), chosen=tuple(chosen))

    # -- reference -------------------------------------------------------------------

    def reference(self) -> float:
        """Independent pure-Python row-rolling implementation."""
        prev = [0.0] * (self.capacity + 1)
        for w, v in zip(self.weights, self.values):
            cur = prev[:]
            for c in range(w, self.capacity + 1):
                cur[c] = max(prev[c], prev[c - w] + v)
            prev = cur
        return prev[self.capacity]

    # -- cost model ---------------------------------------------------------------------

    def region_flops(self, rows: range, cols: range, diagonal: bool = False) -> float:
        return float(len(rows)) * (self.capacity + 1)

    def input_bytes(self, partition: Partition, bid: VertexId) -> int:
        rows, _ = partition.block_ranges(bid)
        return 0 if rows.start == 0 else ELEMENT_BYTES * (self.capacity + 1)

    def output_bytes(self, partition: Partition, bid: VertexId) -> int:
        rows, _ = partition.block_ranges(bid)
        return ELEMENT_BYTES * len(rows) * (self.capacity + 1)

    def __repr__(self) -> str:
        return f"Knapsack(items={self.n_items}, capacity={self.capacity})"
