"""Longest common subsequence — a max-form 2D/0D wavefront DP.

``L[i, j] = L[i-1, j-1] + 1`` on a character match, else
``max(L[i-1, j], L[i, j-1])``; boundaries are zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.algorithms.grid_base import PairwiseGridProblem
from repro.algorithms.kernels import lcs_region


@dataclass(frozen=True)
class LCSResult:
    """Final answer: the LCS length and one witness subsequence."""

    length: int
    subsequence: str


class LongestCommonSubsequence(PairwiseGridProblem):
    """LCS of two strings under EasyHPS."""

    name = "lcs"
    FLOPS_PER_CELL = 2.0

    @classmethod
    def random(
        cls, m: int, n: int | None = None, seed: int | None = None
    ) -> "LongestCommonSubsequence":
        """Instance over random DNA sequences of lengths ``m`` and ``n``."""
        from repro.algorithms.sequences import random_dna

        n = m if n is None else n
        return cls(random_dna(m, seed=seed), random_dna(n, seed=None if seed is None else seed + 1))

    def boundary_row(self) -> np.ndarray:
        return np.zeros(self.n + 1, dtype=np.float64)

    def boundary_col(self) -> np.ndarray:
        return np.zeros(self.m + 1, dtype=np.float64)

    def cell_data(self, rows: range, cols: range) -> np.ndarray:
        a = np.frombuffer(self.a.encode(), dtype=np.uint8)[rows.start : rows.stop]
        b = np.frombuffer(self.b.encode(), dtype=np.uint8)[cols.start : cols.stop]
        return (a[:, None] == b[None, :]).astype(np.float64)

    def kernel(self):
        return lcs_region

    def finalize(self, state: Dict[str, np.ndarray]):
        if self.retain == "boundary":
            return self.boundary_result(state)
        L = state["D"]
        chars = []
        i, j = self.m, self.n
        while i > 0 and j > 0:
            if self.a[i - 1] == self.b[j - 1] and L[i, j] == L[i - 1, j - 1] + 1:
                chars.append(self.a[i - 1])
                i, j = i - 1, j - 1
            elif L[i - 1, j] >= L[i, j - 1]:
                i -= 1
            else:
                j -= 1
        chars.reverse()
        return LCSResult(length=int(L[self.m, self.n]), subsequence="".join(chars))

    def reference(self) -> int:
        """Independent pure-Python implementation (row-rolling)."""
        prev = [0] * (self.n + 1)
        for i in range(1, self.m + 1):
            cur = [0] * (self.n + 1)
            ai = self.a[i - 1]
            for j in range(1, self.n + 1):
                if ai == self.b[j - 1]:
                    cur[j] = prev[j - 1] + 1
                else:
                    cur[j] = max(prev[j], cur[j - 1])
            prev = cur
        return prev[self.n]
