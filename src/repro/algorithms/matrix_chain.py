"""Matrix-chain-order — the classic 2D/1D triangular DP (Algorithm 4.2 family).

``m[i,j] = min_{i<=k<j} m[i,k] + m[k+1,j] + p_i p_{k+1} p_{j+1}`` with
``m[i,i] = 0``: the minimum scalar-multiplication cost of parenthesizing a
chain of ``n`` matrices whose dimensions are ``p_0 x p_1, p_1 x p_2, ...``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.algorithms.kernels import matrix_chain_region
from repro.algorithms.triangular_base import TriangularProblem


@dataclass(frozen=True)
class MatrixChainResult:
    """Final answer: minimum multiplication cost and a parenthesization."""

    cost: float
    parenthesization: str


class MatrixChainOrder(TriangularProblem):
    """Optimal matrix-chain parenthesization under EasyHPS."""

    name = "matrix-chain"

    def __init__(self, dims: Sequence[int]) -> None:
        dims = [int(d) for d in dims]
        if len(dims) < 2:
            raise ValueError("need at least two dimensions (one matrix)")
        if any(d <= 0 for d in dims):
            raise ValueError("all dimensions must be positive")
        super().__init__(len(dims) - 1)
        self.dims = np.asarray(dims, dtype=np.float64)

    @classmethod
    def random(
        cls, n: int, seed: int | None = None, low: int = 5, high: int = 50
    ) -> "MatrixChainOrder":
        """Instance with ``n`` matrices of random dimensions in ``[low, high]``."""
        rng = np.random.default_rng(seed)
        return cls(rng.integers(low, high + 1, size=n + 1).tolist())

    # -- kernel hooks -------------------------------------------------------------

    def cell_data_window(self, lo: int, hi: int) -> np.ndarray:
        # The matrix-chain kernel indexes the full dims vector directly.
        return self.dims

    def kernel(self):
        return matrix_chain_region

    # -- result ----------------------------------------------------------------------

    def finalize(self, state: Dict[str, np.ndarray]) -> MatrixChainResult:
        M = state["F"]
        return MatrixChainResult(
            cost=float(M[0, self.n - 1]),
            parenthesization=self._parenthesize(M, 0, self.n - 1),
        )

    def _parenthesize(self, M: np.ndarray, i: int, j: int) -> str:
        if i == j:
            return f"A{i}"
        for k in range(i, j):
            cost = M[i, k] + M[k + 1, j] + self.dims[i] * self.dims[k + 1] * self.dims[j + 1]
            if np.isclose(M[i, j], cost):
                return f"({self._parenthesize(M, i, k)}{self._parenthesize(M, k + 1, j)})"
        raise AssertionError(f"parenthesization stuck at ({i}, {j})")

    # -- reference --------------------------------------------------------------------

    def reference(self) -> float:
        """Independent bottom-up pure-Python implementation of the cost."""
        n = self.n
        p = self.dims
        m = [[0.0] * n for _ in range(n)]
        for span in range(2, n + 1):
            for i in range(0, n - span + 1):
                j = i + span - 1
                m[i][j] = min(
                    m[i][k] + m[k + 1][j] + p[i] * p[k + 1] * p[j + 1] for k in range(i, j)
                )
        return float(m[0][n - 1])
