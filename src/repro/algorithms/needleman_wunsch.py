"""Needleman-Wunsch global alignment — a max-form 2D/0D wavefront DP.

``D[i,j] = max(D[i-1,j-1] + s(a_i, b_j), D[i-1,j] - g, D[i,j-1] - g)``
with gap-penalty boundaries ``D[i,0] = -i*g``, ``D[0,j] = -j*g``.
Complements the bundled local aligner (SWGG): same pattern family as
edit distance, global semantics, linear gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.algorithms.grid_base import PairwiseGridProblem
from repro.algorithms.kernels import needleman_wunsch_region


@dataclass(frozen=True)
class NWResult:
    """Final answer: global score and the full-length alignment."""

    score: float
    aligned_a: str
    aligned_b: str

    def identity(self) -> float:
        """Fraction of aligned columns that are exact matches."""
        pairs = [
            (x, y) for x, y in zip(self.aligned_a, self.aligned_b) if "-" not in (x, y)
        ]
        if not self.aligned_a:
            return 0.0
        return sum(x == y for x, y in pairs) / len(self.aligned_a)


class NeedlemanWunsch(PairwiseGridProblem):
    """Global alignment under EasyHPS (linear gap penalty)."""

    name = "needleman-wunsch"

    def __init__(
        self,
        a: str,
        b: str,
        *,
        match: float = 1.0,
        mismatch: float = -1.0,
        gap: float = 1.0,
        retain: str = "full",
    ) -> None:
        super().__init__(a, b, retain=retain)
        self.match = float(match)
        self.mismatch = float(mismatch)
        if gap < 0:
            raise ValueError(f"gap penalty must be >= 0, got {gap}")
        self.gap = float(gap)

    @classmethod
    def random(cls, m: int, n: int | None = None, seed: int | None = None, **kw) -> "NeedlemanWunsch":
        from repro.algorithms.sequences import random_dna

        n = m if n is None else n
        return cls(random_dna(m, seed=seed), random_dna(n, seed=None if seed is None else seed + 1), **kw)

    # -- grid hooks ------------------------------------------------------------

    def boundary_row(self) -> np.ndarray:
        return -self.gap * np.arange(self.n + 1, dtype=np.float64)

    def boundary_col(self) -> np.ndarray:
        return -self.gap * np.arange(self.m + 1, dtype=np.float64)

    def cell_data(self, rows: range, cols: range) -> np.ndarray:
        a = np.frombuffer(self.a.encode(), dtype=np.uint8)[rows.start : rows.stop]
        b = np.frombuffer(self.b.encode(), dtype=np.uint8)[cols.start : cols.stop]
        return np.where(a[:, None] == b[None, :], self.match, self.mismatch)

    def kernel(self):
        def _kernel(D, scores, rows, cols):
            needleman_wunsch_region(D, scores, self.gap, rows, cols)

        return _kernel

    # -- result ------------------------------------------------------------------

    def finalize(self, state: Dict[str, np.ndarray]):
        if self.retain == "boundary":
            return self.boundary_result(state)
        D = state["D"]
        aligned = self._traceback(D)
        return NWResult(score=float(D[self.m, self.n]), aligned_a=aligned[0], aligned_b=aligned[1])

    def _traceback(self, D: np.ndarray) -> Tuple[str, str]:
        out_a, out_b = [], []
        i, j = self.m, self.n
        while i > 0 or j > 0:
            here = D[i, j]
            if i > 0 and j > 0 and np.isclose(
                here, D[i - 1, j - 1] + (self.match if self.a[i - 1] == self.b[j - 1] else self.mismatch)
            ):
                out_a.append(self.a[i - 1])
                out_b.append(self.b[j - 1])
                i, j = i - 1, j - 1
            elif i > 0 and np.isclose(here, D[i - 1, j] - self.gap):
                out_a.append(self.a[i - 1])
                out_b.append("-")
                i -= 1
            else:
                out_a.append("-")
                out_b.append(self.b[j - 1])
                j -= 1
        return "".join(reversed(out_a)), "".join(reversed(out_b))

    def reference(self) -> float:
        """Independent pure-Python implementation of the global score."""
        prev = [-self.gap * j for j in range(self.n + 1)]
        for i in range(1, self.m + 1):
            cur = [-self.gap * i] + [0.0] * self.n
            ai = self.a[i - 1]
            for j in range(1, self.n + 1):
                s = self.match if ai == self.b[j - 1] else self.mismatch
                cur[j] = max(prev[j - 1] + s, prev[j] - self.gap, cur[j - 1] - self.gap)
            prev = cur
        return float(prev[self.n])
