"""Nussinov maximum base-pairing for RNA secondary structure — paper workload #2.

``F[i,j] = max(F[i+1,j], F[i,j-1], F[i+1,j-1] + pair(i,j),
              max_{i<=k<j} F[i,k] + F[k+1,j])``

over the upper triangle, with ``F[i,i] = 0``. The bifurcation term gives
each cell an O(n) dependency — a 2D/1D problem on the paper's
:class:`TriangularPattern` (its Fig 5).
"""

from __future__ import annotations

import functools
import sys
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.kernels import nussinov_region
from repro.algorithms.sequences import RNA_ALPHABET, encode, pair_matrix
from repro.algorithms.triangular_base import TriangularProblem


@dataclass(frozen=True)
class NussinovResult:
    """Final answer: number of pairs, the pair list, and dot-bracket notation."""

    score: int
    pairs: Tuple[Tuple[int, int], ...]
    dot_bracket: str


class Nussinov(TriangularProblem):
    """Nussinov RNA folding under EasyHPS.

    ``min_sep`` is the minimum hairpin-loop separation: bases ``i`` and
    ``j`` may pair only when ``j - i > min_sep``.
    """

    name = "nussinov"

    def __init__(self, seq: str, *, min_sep: int = 1) -> None:
        super().__init__(len(seq))
        if min_sep < 0:
            raise ValueError(f"min_sep must be >= 0, got {min_sep}")
        self.seq = seq
        self.min_sep = int(min_sep)
        self._code = encode(seq, RNA_ALPHABET)
        self._pairs = pair_matrix(RNA_ALPHABET)

    @classmethod
    def random(cls, n: int, seed: int | None = None, **kw) -> "Nussinov":
        """Instance over a random RNA sequence of length ``n``."""
        from repro.algorithms.sequences import random_rna

        return cls(random_rna(n, seed=seed), **kw)

    # -- kernel hooks ------------------------------------------------------------

    def cell_data_window(self, lo: int, hi: int) -> np.ndarray:
        code = self._code[lo:hi]
        return self._pairs[code[:, None], code[None, :]]

    def kernel(self):
        def _kernel(W, can_pair, offset, rows, cols):
            nussinov_region(W, can_pair, offset, rows, cols, min_sep=self.min_sep)

        return _kernel

    # -- result ---------------------------------------------------------------------

    def can_pair(self, i: int, j: int) -> bool:
        """Whether bases ``i`` and ``j`` may pair under the rule in force."""
        return bool(j - i > self.min_sep and self._pairs[self._code[i], self._code[j]])

    def finalize(self, state: Dict[str, np.ndarray]) -> NussinovResult:
        F = state["F"]
        pairs = tuple(sorted(self._traceback(F)))
        brackets = ["."] * self.n
        for i, j in pairs:
            brackets[i] = "("
            brackets[j] = ")"
        return NussinovResult(
            score=int(F[0, self.n - 1]),
            pairs=pairs,
            dot_bracket="".join(brackets),
        )

    def _traceback(self, F: np.ndarray) -> List[Tuple[int, int]]:
        """Recover one optimal pairing by re-deriving each cell's winning case."""
        pairs: List[Tuple[int, int]] = []
        stack: List[Tuple[int, int]] = [(0, self.n - 1)]
        while stack:
            i, j = stack.pop()
            if i >= j:
                continue
            here = F[i, j]
            if here == 0:
                continue
            if here == F[i + 1, j]:
                stack.append((i + 1, j))
            elif here == F[i, j - 1]:
                stack.append((i, j - 1))
            elif self.can_pair(i, j) and here == F[i + 1, j - 1] + 1:
                pairs.append((i, j))
                stack.append((i + 1, j - 1))
            else:
                for k in range(i + 1, j):
                    if here == F[i, k] + F[k + 1, j]:
                        stack.append((i, k))
                        stack.append((k + 1, j))
                        break
                else:
                    raise AssertionError(f"traceback stuck at ({i}, {j})")
        return pairs

    # -- reference --------------------------------------------------------------------

    def reference(self) -> int:
        """Independent top-down memoized implementation of the score."""
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 4 * self.n + 100))

        @functools.lru_cache(maxsize=None)
        def best(i: int, j: int) -> int:
            if j <= i:
                return 0
            cands = [best(i + 1, j), best(i, j - 1)]
            if self.can_pair(i, j):
                cands.append(best(i + 1, j - 1) + 1)
            for k in range(i + 1, j):
                cands.append(best(i, k) + best(k + 1, j))
            return max(cands)

        return best(0, self.n - 1)

    def __repr__(self) -> str:
        return f"Nussinov(n={self.n}, min_sep={self.min_sep})"
