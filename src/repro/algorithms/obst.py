"""Optimal binary search tree — triangular 2D/1D DP (Knuth's problem).

Named in the paper's introduction ("optimal static search tree
construction") as a motivating DP application. For keys ``0..n-1`` with
access frequencies ``freq``:

``c[i,j] = w(i,j) + min_{i<=r<=j} (c[i,r-1] + c[r+1,j])``

where ``w(i,j) = sum(freq[i..j])`` and empty ranges cost 0 — exactly the
paper's Algorithm 4.2 shape, on the same triangular machinery as matrix
chain and Nussinov.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.algorithms.triangular_base import TriangularProblem


def obst_region(W: np.ndarray, prefix: np.ndarray, offset: int, rows, cols) -> None:
    """Fill one region of the OBST window in place.

    ``prefix`` is the frequency prefix-sum vector (``prefix[k]`` = sum of
    the first ``k`` frequencies), so ``w(i, j) = prefix[j+1] - prefix[i]``.
    Window layout as in :mod:`repro.algorithms.triangular_base`: entries
    below the diagonal are 0 (empty key ranges).
    """
    for i in reversed(rows):
        li = i - offset
        for j in cols:
            if j < i:
                continue
            lj = j - offset
            w_ij = prefix[j + 1] - prefix[i]
            if j == i:
                W[li, lj] = w_ij
                continue
            # Root r = i..j: left subtree (i, r-1) is W[li, r-1-offset]
            # (the r = i case reads the zero below-diagonal cell), right
            # subtree (r+1, j) is W[r+1-offset, lj] (zero when r = j).
            left = np.empty(j - i + 1)
            left[0] = 0.0
            left[1:] = W[li, li : lj]
            right = np.empty(j - i + 1)
            right[:-1] = W[li + 1 : lj + 1, lj]
            right[-1] = 0.0
            W[li, lj] = w_ij + float(np.min(left + right))


@dataclass(frozen=True)
class OBSTResult:
    """Final answer: expected search cost and the chosen tree."""

    cost: float
    #: Nested (key, left_subtree, right_subtree) with None for empty.
    tree: Optional[tuple]

    def depth_of(self, key: int) -> int:
        """1-based depth of ``key`` in the chosen tree."""
        node, depth = self.tree, 1
        while node is not None:
            root, left, right = node
            if key == root:
                return depth
            node = left if key < root else right
            depth += 1
        raise KeyError(key)


class OptimalBST(TriangularProblem):
    """Optimal static search tree under EasyHPS."""

    name = "optimal-bst"

    def __init__(self, freq) -> None:
        freq = np.asarray(freq, dtype=np.float64)
        if freq.ndim != 1 or freq.size == 0:
            raise ValueError("freq must be a non-empty 1D vector")
        if np.any(freq < 0):
            raise ValueError("frequencies must be >= 0")
        super().__init__(freq.size)
        self.freq = freq
        self._prefix = np.concatenate([[0.0], np.cumsum(freq)])

    @classmethod
    def random(cls, n: int, seed: int | None = None) -> "OptimalBST":
        rng = np.random.default_rng(seed)
        return cls(rng.integers(1, 100, size=n).astype(float))

    # -- kernel hooks ------------------------------------------------------------

    def cell_data_window(self, lo: int, hi: int) -> np.ndarray:
        return self._prefix

    def kernel(self):
        return obst_region

    # -- result ----------------------------------------------------------------------

    def w(self, i: int, j: int) -> float:
        """Total frequency of keys ``i..j`` (0 for empty ranges)."""
        if j < i:
            return 0.0
        return float(self._prefix[j + 1] - self._prefix[i])

    def finalize(self, state: Dict[str, np.ndarray]) -> OBSTResult:
        C = state["F"]

        def cost(i: int, j: int) -> float:
            return float(C[i, j]) if i <= j else 0.0

        def build(i: int, j: int) -> Optional[tuple]:
            if j < i:
                return None
            target = cost(i, j) - self.w(i, j)
            for r in range(i, j + 1):
                if np.isclose(cost(i, r - 1) + cost(r + 1, j), target):
                    return (r, build(i, r - 1), build(r + 1, j))
            raise AssertionError(f"no root reconstructs c[{i},{j}]")

        return OBSTResult(cost=float(C[0, self.n - 1]), tree=build(0, self.n - 1))

    # -- reference --------------------------------------------------------------------

    def reference(self) -> float:
        """Independent bottom-up pure-Python implementation."""
        n = self.n
        c = [[0.0] * n for _ in range(n)]
        for i in range(n):
            c[i][i] = float(self.freq[i])
        for span in range(2, n + 1):
            for i in range(0, n - span + 1):
                j = i + span - 1
                best = min(
                    (c[i][r - 1] if r > i else 0.0) + (c[r + 1][j] if r < j else 0.0)
                    for r in range(i, j + 1)
                )
                c[i][j] = self.w(i, j) + best
        return c[0][n - 1]
