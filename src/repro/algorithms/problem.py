"""The DPProblem interface — what an application must provide to EasyHPS.

This is the Python rendering of the paper's user API (Table I): a problem
binds a DAG Pattern Model, a data-mapping rule (which cells belong to
which DAG vertex), and a ``process`` function (here
:meth:`DPProblem.evaluator` + :meth:`BlockEvaluator.run_subblock`). On top
of the paper's C API we also require an explicit *cost model*
(:meth:`DPProblem.block_flops`, :meth:`DPProblem.input_bytes`, ...)
because the performance experiments run on a simulated cluster — see
DESIGN.md's substitution table.

Execution contract
------------------

The master owns the global problem state (the DP matrix). For each
sub-task ``bid`` it calls :meth:`extract_inputs` and ships the result to a
slave; the slave builds a :class:`BlockEvaluator` from it, runs the
sub-sub-tasks of the thread-level partition through
:meth:`BlockEvaluator.run_subblock` (in any order consistent with the
intra-block DAG; sub-blocks touching disjoint cells may run concurrently),
and ships :meth:`BlockEvaluator.outputs` back; the master merges it with
:meth:`apply_result`. :meth:`finalize` turns the completed state into the
user-facing answer (score, alignment, structure...).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Tuple

import numpy as np

from repro.dag.partition import Partition
from repro.dag.pattern import DAGPattern, VertexId

#: Bytes per DP matrix element shipped over the (simulated) wire.
ELEMENT_BYTES = 8


class BlockEvaluator(ABC):
    """Slave-side computation of one sub-task (one abstract-DAG vertex).

    The evaluator owns a private working buffer assembled from the shipped
    inputs. ``run_subblock`` must only read cells that the intra-block DAG
    guarantees are already computed, and must write only its own cells —
    that discipline is what lets the slave worker pool run sub-sub-tasks
    on concurrent threads against the shared buffer.
    """

    @abstractmethod
    def run_subblock(self, local_rows: range, local_cols: range) -> None:
        """Compute the cells of one sub-sub-task, in block-local coordinates."""

    @abstractmethod
    def outputs(self) -> Dict[str, np.ndarray]:
        """The computed block data to return to the master."""

    def run_serial(self, inner: Partition) -> Dict[str, np.ndarray]:
        """Execute the whole block by draining the inner DAG serially."""
        for sub_bid in inner.abstract.topological_order():
            rows, cols = inner.block_ranges(sub_bid)
            self.run_subblock(rows, cols)
        return self.outputs()


class DPProblem(ABC):
    """A dynamic-programming application runnable under EasyHPS.

    Subclasses are immutable descriptions of a concrete instance (the
    sequences to align, the chain dimensions, ...). All methods are pure
    with respect to the instance so one problem object can be shared
    across backends and repeated runs.
    """

    #: Human-readable algorithm name (used in reports and benchmarks).
    name: str = "dp-problem"

    # -- structure ----------------------------------------------------------

    @abstractmethod
    def pattern(self) -> DAGPattern:
        """The cell-level DAG Pattern Model of this instance."""

    def build_partition(self, process_partition) -> Partition:
        """The process-level partition the runtime schedules.

        Default: block-partition the cell-level pattern with the built-in
        family rules. Problems whose schedulable DAG is not a blocked
        version of a cell grid (e.g. staged algorithms like blocked
        Floyd-Warshall) override this and return their own
        :class:`Partition`.
        """
        from repro.dag.partition import partition_pattern

        return partition_pattern(self.pattern(), process_partition)

    def default_partition_sizes(self) -> Tuple[int, int]:
        """Reasonable (process, thread) partition sizes for this instance size."""
        shape = getattr(self.pattern(), "shape", None)
        n = shape[0] if shape else getattr(self.pattern(), "n")
        proc = max(1, n // 8)
        thread = max(1, proc // 4)
        return (proc, thread)

    # -- master-side state ----------------------------------------------------

    @abstractmethod
    def make_state(self) -> Dict[str, np.ndarray]:
        """Allocate the global DP state (matrices with boundary conditions)."""

    @abstractmethod
    def extract_inputs(
        self, state: Dict[str, np.ndarray], partition: Partition, bid: VertexId
    ) -> Dict[str, np.ndarray]:
        """Slice out exactly the data block ``bid`` needs (data-comm level).

        The returned arrays are copies (a real master would serialize them
        onto the wire), so a slave can never scribble on master state.
        """

    @abstractmethod
    def apply_result(
        self,
        state: Dict[str, np.ndarray],
        partition: Partition,
        bid: VertexId,
        outputs: Dict[str, np.ndarray],
    ) -> None:
        """Merge a finished block back into the global state."""

    @abstractmethod
    def finalize(self, state: Dict[str, np.ndarray]) -> Any:
        """Produce the user-facing result from the completed state."""

    # -- slave-side computation ----------------------------------------------------

    @abstractmethod
    def evaluator(
        self, partition: Partition, bid: VertexId, inputs: Dict[str, np.ndarray]
    ) -> BlockEvaluator:
        """Build the slave-side evaluator for block ``bid``."""

    # -- reference ------------------------------------------------------------------

    @abstractmethod
    def reference(self) -> Any:
        """Straightforward serial implementation, used as ground truth in tests."""

    # -- cost model (simulated backend) ------------------------------------------------

    def region_flops(self, rows: range, cols: range, diagonal: bool = False) -> float:
        """Work units (≈ cell-update operations) of an arbitrary cell region.

        ``rows``/``cols`` are *global* cell ranges; ``diagonal`` marks a
        triangular region sitting on the problem's main diagonal. The
        default charges one unit per cell; algorithms with per-cell cost
        depending on position (SWGG, Nussinov) override this, and the
        simulator uses it for thread-level sub-blocks too.
        """
        if diagonal:
            h = len(rows)
            return h * (h + 1) / 2.0
        return float(len(rows) * len(cols))

    def block_flops(self, partition: Partition, bid: VertexId) -> float:
        """Work units of block ``bid`` (derived from :meth:`region_flops`)."""
        rows, cols = partition.block_ranges(bid)
        return self.region_flops(rows, cols, partition.is_diagonal_block(bid))

    def subblock_flops(
        self, partition: Partition, bid: VertexId, local_rows: range, local_cols: range
    ) -> float:
        """Work units of one thread-level sub-block of block ``bid``.

        The default translates block-local ranges to global cell ranges
        and defers to :meth:`region_flops`. Staged algorithms whose cost
        depends on the *stage* rather than cell position (Floyd-Warshall)
        override this directly.
        """
        rows, cols = partition.block_ranges(bid)
        grows = range(rows.start + local_rows.start, rows.start + local_rows.stop)
        gcols = range(cols.start + local_cols.start, cols.start + local_cols.stop)
        # Inner sub-blocks sitting on the problem diagonal (only possible
        # inside a diagonal block of a triangular partition) are triangles.
        diagonal = partition.is_diagonal_block(bid) and grows == gcols
        return self.region_flops(grows, gcols, diagonal)

    def block_cost_class(self, partition: Partition, bid: VertexId) -> object:
        """Hashable key under which two blocks have identical inner cost
        structure (same shape and same per-cell cost profile).

        The simulator memoizes thread-level schedules per class, which
        collapses the thousands of cost-identical blocks of a regular DP
        grid. The default key is exact for position-independent cell
        costs; position-dependent problems (SWGG, triangular) refine it.
        """
        rows, cols = partition.block_ranges(bid)
        return (len(rows), len(cols), partition.is_diagonal_block(bid))

    def input_bytes(self, partition: Partition, bid: VertexId) -> int:
        """Bytes the master must ship to the slave for block ``bid``.

        Default: measure the actual extracted arrays against a fresh
        state. Subclasses override with closed forms when extraction is
        expensive.
        """
        state = self.make_state()
        return sum(
            int(np.asarray(v).nbytes) for v in self.extract_inputs(state, partition, bid).values()
        )

    def output_bytes(self, partition: Partition, bid: VertexId) -> int:
        """Bytes the slave returns: the block's computed cells."""
        return ELEMENT_BYTES * partition.cell_count(bid)

    def cached_input_bytes(
        self, partition: Partition, bid: VertexId, node_history
    ) -> int:
        """Bytes to ship when the target node already executed the blocks
        in ``node_history`` (affinity scheduling, simulated backend).

        Default: no reuse modeled. Problems whose inputs are dominated by
        data a precedence neighbor already holds (SWGG's prefixes, the
        triangular strips) override this with the reduced volume.
        """
        return self.input_bytes(partition, bid)

    def total_flops(self, partition: Partition) -> float:
        """Total work of the instance under this partition."""
        return sum(self.block_flops(partition, b) for b in partition.block_ids())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
