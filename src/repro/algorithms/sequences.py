"""Synthetic biological sequences and scoring helpers.

The paper evaluates on sequence lengths (seq_len = 10000) without naming a
dataset; DP cost depends only on length, so seeded random sequences are a
faithful substitute (see DESIGN.md). Sequences are returned both as
strings and as integer-coded numpy arrays — kernels use the coded form so
scoring vectorizes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

DNA_ALPHABET = "ACGT"
RNA_ALPHABET = "ACGU"
PROTEIN_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"

#: Watson-Crick plus wobble pairs recognized by the Nussinov pair rule.
RNA_PAIRS = {("A", "U"), ("U", "A"), ("G", "C"), ("C", "G"), ("G", "U"), ("U", "G")}


def random_sequence(length: int, alphabet: str, seed: int | None = None) -> str:
    """Uniform random sequence over ``alphabet`` with reproducible ``seed``."""
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(alphabet), size=length)
    return "".join(alphabet[i] for i in idx)


def random_dna(length: int, seed: int | None = None) -> str:
    """Random DNA sequence."""
    return random_sequence(length, DNA_ALPHABET, seed)


def random_rna(length: int, seed: int | None = None) -> str:
    """Random RNA sequence."""
    return random_sequence(length, RNA_ALPHABET, seed)


def random_protein(length: int, seed: int | None = None) -> str:
    """Random protein sequence."""
    return random_sequence(length, PROTEIN_ALPHABET, seed)


def encode(seq: str, alphabet: str) -> np.ndarray:
    """Integer-code a sequence; raises on characters outside the alphabet."""
    lut = {c: i for i, c in enumerate(alphabet)}
    try:
        return np.array([lut[c] for c in seq], dtype=np.int8)
    except KeyError as exc:
        raise ValueError(f"character {exc.args[0]!r} not in alphabet {alphabet!r}") from None


def pair_matrix(alphabet: str = RNA_ALPHABET) -> np.ndarray:
    """Boolean matrix P where ``P[a, b]`` says coded bases a,b can pair."""
    k = len(alphabet)
    mat = np.zeros((k, k), dtype=bool)
    for x, y in RNA_PAIRS:
        if x in alphabet and y in alphabet:
            mat[alphabet.index(x), alphabet.index(y)] = True
    return mat


def match_score_matrix(
    alphabet: str, match: float = 2.0, mismatch: float = -1.0
) -> np.ndarray:
    """Simple substitution matrix: ``match`` on the diagonal, ``mismatch`` off it."""
    k = len(alphabet)
    mat = np.full((k, k), float(mismatch))
    np.fill_diagonal(mat, float(match))
    return mat


def encode_pair(
    a: str, b: str, alphabet: str = DNA_ALPHABET
) -> Tuple[np.ndarray, np.ndarray]:
    """Encode two sequences over a shared alphabet."""
    return encode(a, alphabet), encode(b, alphabet)
