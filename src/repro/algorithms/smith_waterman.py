"""Smith-Waterman with a general gap function (SWGG) — paper workload #1.

The general-gap recurrence is

``H[i,j] = max(0, H[i-1,j-1] + s(a_i, b_j),
              max_{0<=k<j} H[i,k] - w(j-k),
              max_{0<=k<i} H[k,j] - w(i-k))``

with arbitrary gap penalty ``w``. Unlike the affine (Gotoh) special case
there is no O(1) incremental form, so every cell scans its full row and
column prefix — the 2D/1D :class:`RowColPrefixPattern` dependency that
makes SWGG the paper's stress workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.algorithms.kernels import swgg_region
from repro.algorithms.problem import ELEMENT_BYTES, BlockEvaluator, DPProblem
from repro.dag.library import RowColPrefixPattern
from repro.dag.partition import Partition
from repro.dag.pattern import VertexId


@dataclass(frozen=True)
class SWGGResult:
    """Final answer: best local-alignment score, its endpoint, and the
    aligned subsequences ('-' marks gaps)."""

    score: float
    end: Tuple[int, int]
    aligned_a: str
    aligned_b: str


class _SWGGEvaluator(BlockEvaluator):
    """Slave-side evaluator holding the shipped prefix strips."""

    def __init__(
        self,
        inputs: Dict[str, np.ndarray],
        sub: np.ndarray,
        gap: np.ndarray,
        matrix_r0: int,
        matrix_c0: int,
    ) -> None:
        self._Hrow = inputs["row_prefix"]
        self._Hcol = inputs["col_prefix"]
        h, w = sub.shape
        self._Hloc = np.empty((h + 1, w + 1), dtype=np.float64)
        self._Hloc[0, :] = inputs["top"]
        self._Hloc[1:, 0] = self._Hrow[:, -1]
        self._sub = sub
        self._gap = gap
        self._r0 = matrix_r0
        self._c0 = matrix_c0

    def run_subblock(self, local_rows: range, local_cols: range) -> None:
        swgg_region(
            self._Hloc,
            self._Hrow,
            self._Hcol,
            self._sub,
            self._gap,
            self._c0,
            self._r0,
            local_rows,
            local_cols,
        )

    def outputs(self) -> Dict[str, np.ndarray]:
        return {"block": self._Hloc[1:, 1:]}


class SmithWatermanGG(DPProblem):
    """Smith-Waterman General Gap local alignment under EasyHPS.

    ``gap_fn`` maps a gap length ``d >= 1`` to its penalty; the default is
    the affine ``gap_open + gap_extend * d`` evaluated *generally* (the
    runtime never exploits affinity, exactly as the paper's SWGG does).
    """

    name = "swgg"

    def __init__(
        self,
        a: str,
        b: str,
        *,
        match: float = 2.0,
        mismatch: float = -1.0,
        gap_open: float = 2.0,
        gap_extend: float = 0.5,
        gap_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        if not a or not b:
            raise ValueError("both sequences must be non-empty")
        self.a = a
        self.b = b
        self.m = len(a)
        self.n = len(b)
        self.match = float(match)
        self.mismatch = float(mismatch)
        d = np.arange(max(self.m, self.n) + 1, dtype=np.float64)
        if gap_fn is None:
            self.gap = gap_open + gap_extend * d
        else:
            self.gap = np.asarray(gap_fn(d), dtype=np.float64)
            if self.gap.shape != d.shape:
                raise ValueError("gap_fn must map the length vector elementwise")
        # gap[0] corresponds to a zero-length gap, which cannot occur; park
        # a huge penalty there so an indexing slip can never win the max.
        self.gap[0] = 1e30

    @classmethod
    def random(cls, m: int, n: int | None = None, seed: int | None = None, **kw) -> "SmithWatermanGG":
        """Instance over random DNA sequences of lengths ``m`` and ``n``."""
        from repro.algorithms.sequences import random_dna

        n = m if n is None else n
        return cls(
            random_dna(m, seed=seed),
            random_dna(n, seed=None if seed is None else seed + 1),
            **kw,
        )

    # -- structure ------------------------------------------------------------

    def pattern(self) -> RowColPrefixPattern:
        return RowColPrefixPattern(self.m, self.n)

    def _score(self, x: str, y: str) -> float:
        return self.match if x == y else self.mismatch

    def _sub_block(self, rows: range, cols: range) -> np.ndarray:
        a = np.frombuffer(self.a.encode(), dtype=np.uint8)[rows.start : rows.stop]
        b = np.frombuffer(self.b.encode(), dtype=np.uint8)[cols.start : cols.stop]
        return np.where(a[:, None] == b[None, :], self.match, self.mismatch)

    # -- DPProblem interface ---------------------------------------------------

    def make_state(self) -> Dict[str, np.ndarray]:
        return {"H": np.zeros((self.m + 1, self.n + 1), dtype=np.float64)}

    def extract_inputs(
        self, state: Dict[str, np.ndarray], partition: Partition, bid: VertexId
    ) -> Dict[str, np.ndarray]:
        rows, cols = partition.block_ranges(bid)
        H = state["H"]
        R0, R1 = rows.start + 1, rows.stop  # inclusive matrix rows R0..R1
        C0, C1 = cols.start + 1, cols.stop
        return {
            "row_prefix": H[R0 : R1 + 1, 0:C0].copy(),
            "col_prefix": H[0:R0, C0 : C1 + 1].copy(),
            "top": H[R0 - 1, C0 - 1 : C1 + 1].copy(),
        }

    def evaluator(
        self, partition: Partition, bid: VertexId, inputs: Dict[str, np.ndarray]
    ) -> _SWGGEvaluator:
        rows, cols = partition.block_ranges(bid)
        return _SWGGEvaluator(
            inputs,
            sub=self._sub_block(rows, cols),
            gap=self.gap,
            matrix_r0=rows.start + 1,
            matrix_c0=cols.start + 1,
        )

    def apply_result(
        self,
        state: Dict[str, np.ndarray],
        partition: Partition,
        bid: VertexId,
        outputs: Dict[str, np.ndarray],
    ) -> None:
        rows, cols = partition.block_ranges(bid)
        state["H"][rows.start + 1 : rows.stop + 1, cols.start + 1 : cols.stop + 1] = outputs[
            "block"
        ]

    def finalize(self, state: Dict[str, np.ndarray]) -> SWGGResult:
        H = state["H"]
        flat = int(np.argmax(H))
        i, j = divmod(flat, H.shape[1])
        aligned = self._traceback(H, i, j)
        return SWGGResult(score=float(H[i, j]), end=(i, j), aligned_a=aligned[0], aligned_b=aligned[1])

    def _traceback(self, H: np.ndarray, i: int, j: int) -> Tuple[str, str]:
        """Walk back from the maximum, re-deriving which case produced each cell."""
        out_a: list[str] = []
        out_b: list[str] = []
        while i > 0 and j > 0 and H[i, j] > 0:
            here = H[i, j]
            if here == H[i - 1, j - 1] + self._score(self.a[i - 1], self.b[j - 1]):
                out_a.append(self.a[i - 1])
                out_b.append(self.b[j - 1])
                i, j = i - 1, j - 1
                continue
            # H[i, k] - w(j - k) for k = 0..j-1 pairs with gap[j:0:-1].
            row_hits = np.nonzero(np.isclose(H[i, :j] - self.gap[j:0:-1], here))[0]
            if row_hits.size:
                k = int(row_hits[-1])
                out_a.extend("-" * (j - k))
                out_b.extend(reversed(self.b[k:j]))
                j = k
                continue
            col_hits = np.nonzero(np.isclose(H[:i, j] - self.gap[i:0:-1], here))[0]
            if col_hits.size:
                k = int(col_hits[-1])
                out_a.extend(reversed(self.a[k:i]))
                out_b.extend("-" * (i - k))
                i = k
                continue
            raise AssertionError(f"traceback stuck at ({i}, {j}) — inconsistent matrix")
        return "".join(reversed(out_a)), "".join(reversed(out_b))

    def reference(self) -> float:
        """Independent pure-Python O(m·n·(m+n)) implementation of the score."""
        return float(np.max(self.reference_matrix()))

    def reference_matrix(self) -> np.ndarray:
        """Pure-loop reference H matrix (use only for small instances)."""
        H = np.zeros((self.m + 1, self.n + 1))
        for i in range(1, self.m + 1):
            for j in range(1, self.n + 1):
                best = 0.0
                best = max(best, H[i - 1, j - 1] + self._score(self.a[i - 1], self.b[j - 1]))
                for k in range(j):
                    best = max(best, H[i, k] - self.gap[j - k])
                for k in range(i):
                    best = max(best, H[k, j] - self.gap[i - k])
                H[i, j] = best
        return H

    # -- cost model -----------------------------------------------------------------

    def region_flops(self, rows: range, cols: range, diagonal: bool = False) -> float:
        """Each cell scans its row and column prefixes: cost ≈ i + j."""
        h, w = len(rows), len(cols)
        mean_i = (rows.start + 1 + rows.stop) / 2.0
        mean_j = (cols.start + 1 + cols.stop) / 2.0
        return h * w * (mean_i + mean_j)

    def block_cost_class(self, partition: Partition, bid: VertexId) -> object:
        """Per-cell cost is i + j, so blocks on one anti-diagonal of the
        block grid share their inner cost structure exactly."""
        rows, cols = partition.block_ranges(bid)
        return (len(rows), len(cols), rows.start + cols.start)

    def input_bytes(self, partition: Partition, bid: VertexId) -> int:
        rows, cols = partition.block_ranges(bid)
        h, w = len(rows), len(cols)
        R0, C0 = rows.start + 1, cols.start + 1
        return ELEMENT_BYTES * (h * C0 + R0 * w + (w + 1))

    def cached_input_bytes(self, partition: Partition, bid: VertexId, node_history) -> int:
        """Prefix reuse: a node that computed the W (resp. N) neighbor
        already holds this block's full row (resp. column) prefix."""
        rows, cols = partition.block_ranges(bid)
        h, w = len(rows), len(cols)
        R0, C0 = rows.start + 1, cols.start + 1
        row_prefix = h * C0
        col_prefix = R0 * w
        I, J = bid
        if (I, J - 1) in node_history:
            row_prefix = 0
        if (I - 1, J) in node_history:
            col_prefix = 0
        return ELEMENT_BYTES * (row_prefix + col_prefix + (w + 1))

    def __repr__(self) -> str:
        return f"SmithWatermanGG(m={self.m}, n={self.n})"
