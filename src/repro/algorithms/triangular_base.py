"""Shared plumbing for upper-triangular (2D/1D) DP problems.

Nussinov and matrix-chain-order both fill the upper triangle of an
``n x n`` matrix where cell ``(i, j)`` combines solutions of every split
``(i, k) / (k+1, j)``. A block ``(I, J)`` therefore needs the *row strip*
of blocks to its left (``F[rows(I), r0:c0]``) and the *column strip* of
blocks below it (``F[r1:c1, cols(J)]``) — paper Fig 5's dependency fan.

The evaluator assembles a square working *window* over the index range
``[r0, c1)``: entries below the diagonal stay 0 (the value of an empty
span), which keeps the split recurrence branch-free at the edges.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.algorithms.problem import ELEMENT_BYTES, BlockEvaluator, DPProblem
from repro.dag.library import TriangularPattern
from repro.dag.partition import Partition
from repro.dag.pattern import VertexId

#: Kernel signature: (window, cell_data, offset, global_rows, global_cols).
TriangularKernel = Callable[[np.ndarray, np.ndarray, int, range, range], None]


class TriangularBlockEvaluator(BlockEvaluator):
    """Evaluator over the square window of one triangular block."""

    def __init__(
        self,
        row_strip: np.ndarray,
        col_strip: np.ndarray,
        rows: range,
        cols: range,
        cell_data: np.ndarray,
        kernel: TriangularKernel,
        corner: np.ndarray | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        r0, r1 = rows.start, rows.stop
        c0, c1 = cols.start, cols.stop
        L = c1 - r0
        self._W = np.zeros((L, L), dtype=dtype)
        if row_strip.size:
            self._W[0 : r1 - r0, 0 : c0 - r0] = row_strip
        if col_strip.size:
            self._W[r1 - r0 : L, c0 - r0 : L] = col_strip
        if corner is not None and corner.size:
            self._W[r1 - r0, c0 - r0 - 1] = corner[0, 0]
        self._rows = rows
        self._cols = cols
        self._cell_data = cell_data
        self._kernel = kernel

    def seed_cell(self, global_i: int, global_j: int, value) -> None:
        """Pre-seed one window cell before the kernel runs.

        Used by grammars (CYK) to place terminal-rule masks on the
        diagonal of diagonal blocks, which the span kernels never compute.
        """
        offset = self._rows.start
        self._W[global_i - offset, global_j - offset] = value

    def run_subblock(self, local_rows: range, local_cols: range) -> None:
        rows_g = range(self._rows.start + local_rows.start, self._rows.start + local_rows.stop)
        cols_g = range(self._cols.start + local_cols.start, self._cols.start + local_cols.stop)
        self._kernel(self._W, self._cell_data, self._rows.start, rows_g, cols_g)

    def outputs(self) -> Dict[str, np.ndarray]:
        r0, r1 = self._rows.start, self._rows.stop
        c0, c1 = self._cols.start, self._cols.stop
        return {"block": self._W[0 : r1 - r0, c0 - r0 : c1 - r0]}


class TriangularProblem(DPProblem):
    """Base class for upper-triangular span DP over ``n`` elements."""

    #: Cost charged per cell is ``span_cost_scale * (j - i + 1)`` work units.
    span_cost_scale = 1.0
    #: Element dtype of the DP matrix (CYK uses uint64 bitmasks).
    matrix_dtype: np.dtype | type = np.float64

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"problem size must be positive, got {n}")
        self.n = int(n)

    # -- hooks for subclasses ---------------------------------------------------

    def cell_data_window(self, lo: int, hi: int) -> np.ndarray:
        """Per-cell data for the window over global indices ``[lo, hi)``."""
        raise NotImplementedError

    def kernel(self) -> TriangularKernel:
        raise NotImplementedError

    # -- structure ------------------------------------------------------------------

    def pattern(self) -> TriangularPattern:
        return TriangularPattern(self.n)

    def make_state(self) -> Dict[str, np.ndarray]:
        return {"F": np.zeros((self.n, self.n), dtype=self.matrix_dtype)}

    def extract_inputs(
        self, state: Dict[str, np.ndarray], partition: Partition, bid: VertexId
    ) -> Dict[str, np.ndarray]:
        rows, cols = partition.block_ranges(bid)
        F = state["F"]
        inputs = {
            "row_strip": F[rows.start : rows.stop, rows.start : cols.start].copy(),
            "col_strip": F[rows.stop : cols.stop, cols.start : cols.stop].copy(),
        }
        if not partition.is_diagonal_block(bid):
            # The inward-diagonal corner F[r1, c0-1]: needed by the paired
            # term of the block's bottom-left cell, covered by neither strip.
            inputs["corner"] = F[rows.stop : rows.stop + 1, cols.start - 1 : cols.start].copy()
        return inputs

    def evaluator(
        self, partition: Partition, bid: VertexId, inputs: Dict[str, np.ndarray]
    ) -> TriangularBlockEvaluator:
        rows, cols = partition.block_ranges(bid)
        return TriangularBlockEvaluator(
            row_strip=inputs["row_strip"],
            col_strip=inputs["col_strip"],
            rows=rows,
            cols=cols,
            cell_data=self.cell_data_window(rows.start, cols.stop),
            kernel=self.kernel(),
            corner=inputs.get("corner"),
            dtype=self.matrix_dtype,
        )

    def apply_result(
        self,
        state: Dict[str, np.ndarray],
        partition: Partition,
        bid: VertexId,
        outputs: Dict[str, np.ndarray],
    ) -> None:
        rows, cols = partition.block_ranges(bid)
        state["F"][rows.start : rows.stop, cols.start : cols.stop] = outputs["block"]

    def finalize(self, state: Dict[str, np.ndarray]) -> Any:
        raise NotImplementedError

    def reference(self) -> Any:
        raise NotImplementedError

    # -- cost model -------------------------------------------------------------------

    def region_flops(self, rows: range, cols: range, diagonal: bool = False) -> float:
        """Each cell's split scan costs ≈ its span length ``j - i + 1``."""
        h, w = len(rows), len(cols)
        if diagonal:
            return self.span_cost_scale * h * (h + 1) * (h + 2) / 6.0
        mean_span = (cols.start + cols.stop - 1) / 2.0 - (rows.start + rows.stop - 1) / 2.0 + 1.0
        return self.span_cost_scale * h * w * mean_span

    def block_cost_class(self, partition: Partition, bid: VertexId) -> object:
        """Per-cell cost is the span ``j - i``, so blocks at one diagonal
        offset of the block grid share their inner cost structure."""
        rows, cols = partition.block_ranges(bid)
        return (len(rows), len(cols), cols.start - rows.start, partition.is_diagonal_block(bid))

    def input_bytes(self, partition: Partition, bid: VertexId) -> int:
        rows, cols = partition.block_ranges(bid)
        h, w = len(rows), len(cols)
        row_strip = h * (cols.start - rows.start)
        col_strip = (cols.stop - rows.stop) * w
        corner = 0 if partition.is_diagonal_block(bid) else 1
        return ELEMENT_BYTES * (row_strip + col_strip + corner)

    def cached_input_bytes(self, partition: Partition, bid: VertexId, node_history) -> int:
        """Strip reuse: the W neighbor's executor holds this row strip,
        the S neighbor's executor holds this column strip."""
        rows, cols = partition.block_ranges(bid)
        h, w = len(rows), len(cols)
        row_strip = h * (cols.start - rows.start)
        col_strip = (cols.stop - rows.stop) * w
        corner = 0 if partition.is_diagonal_block(bid) else 1
        i, j = bid
        if (i, j - 1) in node_history:
            row_strip = 0
        if (i + 1, j) in node_history:
            col_strip = 0
        return ELEMENT_BYTES * (row_strip + col_strip + corner)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"
