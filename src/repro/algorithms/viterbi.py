"""Viterbi decoding of a hidden Markov model — a 1D chain DP.

``delta[t, s] = max_{s'} delta[t-1, s'] + logA[s', s] + logB[s, o_t]``

The DAG is a pure chain over time blocks (the library's
:class:`ChainPattern`): no two blocks can run concurrently, so this
workload is the honest degenerate case of DP parallelization — EasyHPS
schedules it correctly but cannot speed it up, which the chain-pattern
tests and the ablation bench use as a negative control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.algorithms.problem import ELEMENT_BYTES, BlockEvaluator, DPProblem
from repro.dag.library import ChainPattern
from repro.dag.partition import Partition
from repro.dag.pattern import VertexId


@dataclass(frozen=True)
class ViterbiResult:
    """Final answer: the most probable state path and its log-probability."""

    log_prob: float
    path: Tuple[int, ...]


class _ViterbiEvaluator(BlockEvaluator):
    """Computes delta/psi rows for one time block given the previous row."""

    def __init__(self, problem: "ViterbiDecoding", t_range: range, prev: np.ndarray) -> None:
        self._p = problem
        self._t_range = t_range
        self._prev = prev
        h = len(t_range)
        self._delta = np.empty((h, problem.n_states), dtype=np.float64)
        self._psi = np.zeros((h, problem.n_states), dtype=np.int64)

    def run_subblock(self, local_rows: range, local_cols: range) -> None:
        p = self._p
        for a in local_rows:
            t = self._t_range.start + a
            obs_scores = p.log_b[:, p.obs[t]]
            if t == 0:
                self._delta[a] = p.log_pi + obs_scores
                continue
            prev = self._prev if a == 0 else self._delta[a - 1]
            cand = prev[:, None] + p.log_a  # cand[s', s]
            self._psi[a] = np.argmax(cand, axis=0)
            self._delta[a] = cand[self._psi[a], np.arange(p.n_states)] + obs_scores

    def outputs(self) -> Dict[str, np.ndarray]:
        return {"delta": self._delta, "psi": self._psi}


class ViterbiDecoding(DPProblem):
    """Most-probable-path decoding under EasyHPS.

    Parameters are log-space HMM matrices: ``log_pi (S,)``,
    ``log_a (S, S)`` transitions, ``log_b (S, V)`` emissions, and an
    integer observation sequence ``obs (T,)`` over vocabulary ``V``.
    """

    name = "viterbi"

    def __init__(
        self,
        log_pi: np.ndarray,
        log_a: np.ndarray,
        log_b: np.ndarray,
        obs: np.ndarray,
    ) -> None:
        self.log_pi = np.asarray(log_pi, dtype=np.float64)
        self.log_a = np.asarray(log_a, dtype=np.float64)
        self.log_b = np.asarray(log_b, dtype=np.float64)
        self.obs = np.asarray(obs, dtype=np.int64)
        S = self.log_pi.shape[0]
        if self.log_a.shape != (S, S):
            raise ValueError(f"log_a must be ({S}, {S}), got {self.log_a.shape}")
        if self.log_b.shape[0] != S:
            raise ValueError(f"log_b must have {S} rows, got {self.log_b.shape}")
        if self.obs.ndim != 1 or self.obs.size == 0:
            raise ValueError("obs must be a non-empty 1D sequence")
        if self.obs.min() < 0 or self.obs.max() >= self.log_b.shape[1]:
            raise ValueError("observation symbols outside emission vocabulary")
        self.n_states = S
        self.T = int(self.obs.size)

    @classmethod
    def random(
        cls, T: int, n_states: int = 4, n_symbols: int = 6, seed: int | None = None
    ) -> "ViterbiDecoding":
        """A random (row-normalized) HMM with a random observation string."""
        rng = np.random.default_rng(seed)

        def log_rows(shape):
            m = rng.random(shape) + 0.05
            return np.log(m / m.sum(axis=-1, keepdims=True))

        return cls(
            log_pi=log_rows(n_states),
            log_a=log_rows((n_states, n_states)),
            log_b=log_rows((n_states, n_symbols)),
            obs=rng.integers(0, n_symbols, size=T),
        )

    # -- structure -------------------------------------------------------------

    def pattern(self) -> ChainPattern:
        return ChainPattern(self.T)

    def default_partition_sizes(self) -> Tuple[int, int]:
        proc = max(1, self.T // 8)
        return (proc, max(1, proc // 4))

    # -- data flow ----------------------------------------------------------------

    def make_state(self) -> Dict[str, np.ndarray]:
        return {
            "delta": np.zeros((self.T, self.n_states), dtype=np.float64),
            "psi": np.zeros((self.T, self.n_states), dtype=np.int64),
        }

    def extract_inputs(
        self, state: Dict[str, np.ndarray], partition: Partition, bid: VertexId
    ) -> Dict[str, np.ndarray]:
        rows, _ = partition.block_ranges(bid)
        if rows.start == 0:
            return {"prev": np.zeros(0, dtype=np.float64)}
        return {"prev": state["delta"][rows.start - 1].copy()}

    def evaluator(
        self, partition: Partition, bid: VertexId, inputs: Dict[str, np.ndarray]
    ) -> _ViterbiEvaluator:
        rows, _ = partition.block_ranges(bid)
        return _ViterbiEvaluator(self, rows, inputs["prev"])

    def apply_result(
        self,
        state: Dict[str, np.ndarray],
        partition: Partition,
        bid: VertexId,
        outputs: Dict[str, np.ndarray],
    ) -> None:
        rows, _ = partition.block_ranges(bid)
        state["delta"][rows.start : rows.stop] = outputs["delta"]
        state["psi"][rows.start : rows.stop] = outputs["psi"]

    def finalize(self, state: Dict[str, np.ndarray]) -> ViterbiResult:
        delta, psi = state["delta"], state["psi"]
        path = [int(np.argmax(delta[self.T - 1]))]
        for t in range(self.T - 1, 0, -1):
            path.append(int(psi[t, path[-1]]))
        path.reverse()
        return ViterbiResult(log_prob=float(np.max(delta[self.T - 1])), path=tuple(path))

    # -- reference -------------------------------------------------------------------

    def reference(self) -> float:
        """Independent pure-Python implementation of the best log-prob."""
        prev = [float(self.log_pi[s] + self.log_b[s, self.obs[0]]) for s in range(self.n_states)]
        for t in range(1, self.T):
            cur = []
            for s in range(self.n_states):
                best = max(prev[sp] + float(self.log_a[sp, s]) for sp in range(self.n_states))
                cur.append(best + float(self.log_b[s, self.obs[t]]))
            prev = cur
        return max(prev)

    # -- cost model ---------------------------------------------------------------------

    def region_flops(self, rows: range, cols: range, diagonal: bool = False) -> float:
        return float(len(rows)) * self.n_states * self.n_states

    def input_bytes(self, partition: Partition, bid: VertexId) -> int:
        rows, _ = partition.block_ranges(bid)
        return ELEMENT_BYTES * (0 if rows.start == 0 else self.n_states)

    def output_bytes(self, partition: Partition, bid: VertexId) -> int:
        rows, _ = partition.block_ranges(bid)
        return 2 * ELEMENT_BYTES * len(rows) * self.n_states

    def __repr__(self) -> str:
        return f"ViterbiDecoding(T={self.T}, states={self.n_states})"
