"""Run reporting and experiment-series helpers."""

from repro.analysis.report import RunReport
from repro.analysis.tables import ascii_table, format_series
from repro.analysis.figures import Series, speedup_series

__all__ = ["RunReport", "ascii_table", "format_series", "Series", "speedup_series"]
