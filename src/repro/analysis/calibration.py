"""Calibrating the simulated cluster against real measurements.

The simulator charges abstract work units through ``NodeSpec.flops_per_second``.
To make simulated makespans comparable to *this machine's* real compute
capability, :func:`calibrate_node` times actual block evaluations of a
problem and fits the rate; :func:`calibration_report` shows the per-block
fit quality so a bad cost model is visible instead of silently absorbed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.problem import DPProblem
from repro.cluster.machine import NodeSpec
from repro.dag.partition import BlockShape
from repro.dag.pattern import VertexId
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class CalibrationSample:
    """One timed block evaluation."""

    bid: VertexId
    flops: float
    seconds: float

    @property
    def rate(self) -> float:
        """Work units per second achieved on this block."""
        if self.seconds <= 0:
            raise ValueError("non-positive sample duration")
        return self.flops / self.seconds


def measure_blocks(
    problem: DPProblem,
    process_partition: BlockShape,
    thread_partition: BlockShape,
    block_ids: Optional[Sequence[VertexId]] = None,
    repeats: int = 1,
) -> List[CalibrationSample]:
    """Time real (serial) evaluations of selected blocks.

    Blocks default to a spread across the abstract DAG (first, middle,
    last in topological order) so position-dependent cost models get
    probed at both ends.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    partition = problem.build_partition(process_partition)
    order = list(partition.abstract.topological_order())
    if block_ids is None:
        picks = sorted({0, len(order) // 2, len(order) - 1})
        block_ids = [order[i] for i in picks]
    # Evaluate prerequisites once so each measured block has real inputs.
    state = problem.make_state()
    needed = set(block_ids)
    samples: List[CalibrationSample] = []
    for bid in order:
        inputs = problem.extract_inputs(state, partition, bid)
        inner = partition.sub_partition(bid, thread_partition)
        if bid in needed:
            best = float("inf")
            for _ in range(repeats):
                evaluator = problem.evaluator(partition, bid, inputs)
                started = time.perf_counter()
                outputs = evaluator.run_serial(inner)
                best = min(best, time.perf_counter() - started)
            samples.append(
                CalibrationSample(bid=bid, flops=problem.block_flops(partition, bid), seconds=best)
            )
        else:
            outputs = problem.evaluator(partition, bid, inputs).run_serial(inner)
        problem.apply_result(state, partition, bid, outputs)
    return samples


def fit_rate(samples: Sequence[CalibrationSample]) -> float:
    """Aggregate work-per-second over all samples (total flops / total s)."""
    if not samples:
        raise ConfigError("need at least one calibration sample")
    total_flops = sum(s.flops for s in samples)
    total_seconds = sum(s.seconds for s in samples)
    if total_seconds <= 0:
        raise ConfigError("calibration samples have zero total duration")
    return total_flops / total_seconds


def calibrate_node(
    problem: DPProblem,
    process_partition: BlockShape,
    thread_partition: BlockShape,
    base: Optional[NodeSpec] = None,
    repeats: int = 2,
) -> Tuple[NodeSpec, List[CalibrationSample]]:
    """A NodeSpec whose single-thread rate matches this host for ``problem``.

    Returns the spec plus the raw samples (for :func:`calibration_report`).
    Contention/overheads are kept from ``base`` — calibrating those needs
    real multicore hardware, which is exactly what this repo simulates.
    """
    samples = measure_blocks(problem, process_partition, thread_partition, repeats=repeats)
    rate = fit_rate(samples)
    spec = base or NodeSpec(threads=1)
    return replace(spec, flops_per_second=rate), samples


def calibration_report(samples: Sequence[CalibrationSample]) -> str:
    """Per-block achieved rates and the dispersion of the fit."""
    from repro.analysis.tables import ascii_table

    rate = fit_rate(samples)
    rows = [
        [str(s.bid), f"{s.flops:.3g}", f"{s.seconds * 1e3:.2f}", f"{s.rate:.3g}",
         f"{s.rate / rate:.2f}x"]
        for s in samples
    ]
    spread = max(s.rate for s in samples) / min(s.rate for s in samples)
    table = ascii_table(["block", "flops", "ms", "rate (flops/s)", "vs fit"], rows)
    return (
        f"{table}\n"
        f"fitted rate: {rate:.4g} work units/s; per-block spread {spread:.2f}x\n"
        + ("WARNING: spread > 3x — the cost model misfits this problem\n" if spread > 3 else "")
    )
