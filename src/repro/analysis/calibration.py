"""Calibrating the simulated cluster against real measurements.

The simulator charges abstract work units through ``NodeSpec.flops_per_second``.
To make simulated makespans comparable to *this machine's* real compute
capability, :func:`calibrate_node` times actual block evaluations of a
problem and fits the rate; :func:`calibration_report` shows the per-block
fit quality so a bad cost model is visible instead of silently absorbed.

The communication side is calibrated from *traces* rather than re-runs:
instrumented channels stamp every ``msg-send`` with measured serialize +
transport durations, and :func:`fit_link` least-squares those
latency-vs-size samples into the simulator's alpha+beta
:class:`~repro.cluster.network.LinkModel`. :func:`link_fit_report` diffs
the fit against a reference model so a simulated network that no longer
matches the measured one is visible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.problem import DPProblem
from repro.cluster.machine import NodeSpec
from repro.cluster.network import LinkModel
from repro.dag.partition import BlockShape
from repro.dag.pattern import VertexId
from repro.utils.errors import ConfigError


@dataclass(frozen=True)
class CalibrationSample:
    """One timed block evaluation."""

    bid: VertexId
    flops: float
    seconds: float

    @property
    def rate(self) -> float:
        """Work units per second achieved on this block."""
        if self.seconds <= 0:
            raise ValueError("non-positive sample duration")
        return self.flops / self.seconds


def measure_blocks(
    problem: DPProblem,
    process_partition: BlockShape,
    thread_partition: BlockShape,
    block_ids: Optional[Sequence[VertexId]] = None,
    repeats: int = 1,
) -> List[CalibrationSample]:
    """Time real (serial) evaluations of selected blocks.

    Blocks default to a spread across the abstract DAG (first, middle,
    last in topological order) so position-dependent cost models get
    probed at both ends.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    partition = problem.build_partition(process_partition)
    order = list(partition.abstract.topological_order())
    if block_ids is None:
        picks = sorted({0, len(order) // 2, len(order) - 1})
        block_ids = [order[i] for i in picks]
    # Evaluate prerequisites once so each measured block has real inputs.
    state = problem.make_state()
    needed = set(block_ids)
    samples: List[CalibrationSample] = []
    for bid in order:
        inputs = problem.extract_inputs(state, partition, bid)
        inner = partition.sub_partition(bid, thread_partition)
        if bid in needed:
            best = float("inf")
            for _ in range(repeats):
                evaluator = problem.evaluator(partition, bid, inputs)
                started = time.perf_counter()
                outputs = evaluator.run_serial(inner)
                best = min(best, time.perf_counter() - started)
            samples.append(
                CalibrationSample(bid=bid, flops=problem.block_flops(partition, bid), seconds=best)
            )
        else:
            outputs = problem.evaluator(partition, bid, inputs).run_serial(inner)
        problem.apply_result(state, partition, bid, outputs)
    return samples


def fit_rate(samples: Sequence[CalibrationSample]) -> float:
    """Aggregate work-per-second over all samples (total flops / total s)."""
    if not samples:
        raise ConfigError("need at least one calibration sample")
    total_flops = sum(s.flops for s in samples)
    total_seconds = sum(s.seconds for s in samples)
    if total_seconds <= 0:
        raise ConfigError("calibration samples have zero total duration")
    return total_flops / total_seconds


def calibrate_node(
    problem: DPProblem,
    process_partition: BlockShape,
    thread_partition: BlockShape,
    base: Optional[NodeSpec] = None,
    repeats: int = 2,
) -> Tuple[NodeSpec, List[CalibrationSample]]:
    """A NodeSpec whose single-thread rate matches this host for ``problem``.

    Returns the spec plus the raw samples (for :func:`calibration_report`).
    Contention/overheads are kept from ``base`` — calibrating those needs
    real multicore hardware, which is exactly what this repo simulates.
    """
    samples = measure_blocks(problem, process_partition, thread_partition, repeats=repeats)
    rate = fit_rate(samples)
    spec = base or NodeSpec(threads=1)
    return replace(spec, flops_per_second=rate), samples


@dataclass(frozen=True)
class LinkSample:
    """One observed message: payload size and end-to-end cost seconds."""

    nbytes: int
    seconds: float


def link_samples_from_events(events: Iterable) -> List[LinkSample]:
    """Extract latency-vs-size samples from a recorded event stream.

    Prefers instrumented-channel ``msg-send`` events (real backends:
    ``t_ser + t_wire`` measured durations); falls back to the simulated
    backend's task-scope ``send`` spans (reserved link occupancy). Only
    samples with positive size and duration survive — the fit divides
    by byte spread.
    """
    real: List[LinkSample] = []
    sim: List[LinkSample] = []
    for ev in events:
        data = getattr(ev, "data", None)
        if not data:
            continue
        if ev.scope == "message" and ev.kind == "msg-send":
            t_wire = data.get("t_wire")
            if t_wire is None:
                continue
            secs = float(t_wire) + float(data.get("t_ser", 0.0) or 0.0)
            nbytes = int(data.get("nbytes", 0) or 0)
            if nbytes > 0 and secs > 0:
                real.append(LinkSample(nbytes=nbytes, seconds=secs))
        elif ev.scope == "task" and ev.kind == "send":
            span = ev.span()
            nbytes = int(data.get("nbytes", 0) or 0)
            if span is not None and nbytes > 0 and span[1] > span[0]:
                sim.append(LinkSample(nbytes=nbytes, seconds=span[1] - span[0]))
    return real if real else sim


def fit_link(samples: Sequence[LinkSample]) -> LinkModel:
    """Least-squares alpha+beta fit: ``seconds = latency + nbytes / bandwidth``.

    The slope is clamped positive (a descending fit means the sizes do
    not explain the durations — the latency term then carries the mean)
    and the intercept is clamped non-negative.
    """
    if len(samples) < 2:
        raise ConfigError(f"link fit needs >= 2 samples, got {len(samples)}")
    n = float(len(samples))
    mean_x = sum(s.nbytes for s in samples) / n
    mean_y = sum(s.seconds for s in samples) / n
    sxx = sum((s.nbytes - mean_x) ** 2 for s in samples)
    if sxx <= 0:
        raise ConfigError(
            "link fit needs spread in message sizes (all samples are "
            f"{samples[0].nbytes} bytes)"
        )
    sxy = sum((s.nbytes - mean_x) * (s.seconds - mean_y) for s in samples)
    slope = max(sxy / sxx, 0.0)
    latency = max(mean_y - slope * mean_x, 0.0)
    bandwidth = 1.0 / slope if slope > 0 else 1e15
    return LinkModel(latency=latency, bandwidth=bandwidth)


def link_fit_report(
    samples: Sequence[LinkSample], reference: Optional[LinkModel] = None
) -> str:
    """The fitted link model, its residuals, and the diff vs a reference.

    ``reference`` is the simulated cluster's configured link; the
    per-sample mean absolute relative error against both models says
    whether the simulator's network still matches the measured one.
    """
    fitted = fit_link(samples)
    lines = [
        f"link fit over {len(samples)} messages "
        f"({min(s.nbytes for s in samples)}..{max(s.nbytes for s in samples)} bytes):",
        f"  fitted  : latency {fitted.latency:.4g} s, "
        f"bandwidth {fitted.bandwidth:.4g} B/s",
        f"  fit MARE: {_link_mare(samples, fitted):.1%} "
        "(mean |predicted - observed| / observed)",
    ]
    if reference is not None:
        lines.append(
            f"  reference: latency {reference.latency:.4g} s, "
            f"bandwidth {reference.bandwidth:.4g} B/s "
            f"(MARE {_link_mare(samples, reference):.1%})"
        )
        lat_x = fitted.latency / reference.latency if reference.latency > 0 else float("inf")
        bw_x = fitted.bandwidth / reference.bandwidth
        lines.append(
            f"  fitted vs reference: latency {lat_x:.3g}x, bandwidth {bw_x:.3g}x"
        )
    return "\n".join(lines)


def _link_mare(samples: Sequence[LinkSample], model: LinkModel) -> float:
    errs = [
        abs(model.transfer_time(s.nbytes) - s.seconds) / s.seconds
        for s in samples
        if s.seconds > 0
    ]
    return sum(errs) / len(errs) if errs else 0.0


def calibration_report(samples: Sequence[CalibrationSample]) -> str:
    """Per-block achieved rates and the dispersion of the fit."""
    from repro.analysis.tables import ascii_table

    rate = fit_rate(samples)
    rows = [
        [str(s.bid), f"{s.flops:.3g}", f"{s.seconds * 1e3:.2f}", f"{s.rate:.3g}",
         f"{s.rate / rate:.2f}x"]
        for s in samples
    ]
    spread = max(s.rate for s in samples) / min(s.rate for s in samples)
    table = ascii_table(["block", "flops", "ms", "rate (flops/s)", "vs fit"], rows)
    return (
        f"{table}\n"
        f"fitted rate: {rate:.4g} work units/s; per-block spread {spread:.2f}x\n"
        + ("WARNING: spread > 3x — the cost model misfits this problem\n" if spread > 3 else "")
    )
