"""Structured experiment records: persist and compare runs.

Benchmarks and user studies produce many (config, report) pairs; this
module gives them a stable on-disk form — JSON lines — plus grouping and
markdown rendering, so results survive sessions and can be diffed across
code versions.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

from repro.analysis.report import RunReport
from repro.analysis.tables import ascii_table


@dataclass(frozen=True)
class ExperimentRecord:
    """One measured run, flattened for persistence."""

    experiment: str
    algorithm: str
    backend: str
    scheduler: str
    nodes: int
    cores: Optional[int]
    makespan: float
    utilization: float
    faults_recovered: int
    idle_while_ready: float
    n_tasks: int
    timestamp: float
    params: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_report(
        cls,
        experiment: str,
        report: RunReport,
        timestamp: float,
        **params,
    ) -> "ExperimentRecord":
        """Flatten a run report under an experiment label.

        ``timestamp`` is explicit so records stay reproducible in
        deterministic pipelines (pass ``time.time()`` for live runs).
        """
        return cls(
            experiment=experiment,
            algorithm=report.algorithm,
            backend=report.backend,
            scheduler=report.scheduler,
            nodes=report.nodes,
            cores=report.total_cores,
            makespan=report.makespan,
            utilization=report.utilization,
            faults_recovered=report.faults_recovered,
            idle_while_ready=report.idle_while_ready,
            n_tasks=report.n_tasks,
            timestamp=timestamp,
            params=dict(params),
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "ExperimentRecord":
        data = json.loads(line)
        return cls(**data)


class ExperimentLog:
    """An append-only JSONL store of experiment records."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def append(self, record: ExperimentRecord) -> None:
        with self.path.open("a") as fh:
            fh.write(record.to_json() + "\n")

    def append_report(self, experiment: str, report: RunReport, **params) -> ExperimentRecord:
        record = ExperimentRecord.from_report(experiment, report, time.time(), **params)
        self.append(record)
        return record

    def __iter__(self) -> Iterator[ExperimentRecord]:
        if not self.path.exists():
            return iter(())
        with self.path.open() as fh:
            records = [ExperimentRecord.from_json(line) for line in fh if line.strip()]
        return iter(records)

    def by_experiment(self, name: str) -> List[ExperimentRecord]:
        return [r for r in self if r.experiment == name]

    def experiments(self) -> List[str]:
        seen: Dict[str, None] = {}
        for r in self:
            seen.setdefault(r.experiment, None)
        return list(seen)


def to_markdown(records: Iterable[ExperimentRecord]) -> str:
    """Render records as a compact table (one row per run)."""
    rows = [
        [
            r.experiment,
            r.algorithm,
            f"{r.scheduler}@{r.backend}",
            r.nodes,
            r.cores if r.cores is not None else "-",
            r.makespan,
            f"{r.utilization:.0%}" if r.utilization else "-",
        ]
        for r in records
    ]
    return ascii_table(
        ["experiment", "algorithm", "sched@backend", "X", "Y", "makespan (s)", "util"],
        rows,
    )


def best_by(records: Iterable[ExperimentRecord], key: str = "makespan") -> ExperimentRecord:
    """The record minimizing ``key`` (must be a numeric field)."""
    records = list(records)
    if not records:
        raise ValueError("no records")
    return min(records, key=lambda r: getattr(r, key))
