"""Figure-series containers and derived curves (speedup, ratios).

Benchmarks build :class:`Series` objects — the exact (x, y) data a figure
plots — and render them as text; EXPERIMENTS.md records them next to the
paper's reported shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.tables import format_series


@dataclass(frozen=True)
class Series:
    """One plotted line: a label plus (x, y) points."""

    label: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(f"xs and ys must align: {len(self.xs)} vs {len(self.ys)}")

    @classmethod
    def from_points(cls, label: str, points: Sequence[Tuple[float, float]]) -> "Series":
        xs, ys = zip(*points) if points else ((), ())
        return cls(label, tuple(xs), tuple(ys))

    def ratio_to(self, other: "Series", label: str | None = None) -> "Series":
        """Pointwise self/other over the common x values."""
        common = sorted(set(self.xs) & set(other.xs))
        mine = dict(zip(self.xs, self.ys))
        theirs = dict(zip(other.xs, other.ys))
        ys = tuple(mine[x] / theirs[x] for x in common)
        return Series(label or f"{self.label}/{other.label}", tuple(common), ys)

    def min_y(self) -> float:
        return min(self.ys)

    def max_y(self) -> float:
        return max(self.ys)

    def render(self) -> str:
        return format_series(self.label, self.xs, self.ys)


def speedup_series(elapsed: Series, baseline: float, label: str | None = None) -> Series:
    """Speedup curve ``baseline / elapsed(x)``."""
    ys = tuple(baseline / y for y in elapsed.ys)
    return Series(label or f"{elapsed.label} speedup", elapsed.xs, ys)


def crossover_points(a: Series, b: Series) -> List[float]:
    """x positions where series ``a - b`` changes sign (shape checks)."""
    common = sorted(set(a.xs) & set(b.xs))
    da = dict(zip(a.xs, a.ys))
    db = dict(zip(b.xs, b.ys))
    out: List[float] = []
    prev = None
    for x in common:
        diff = da[x] - db[x]
        if prev is not None and diff * prev < 0:
            out.append(x)
        if diff != 0:
            prev = diff
    return out
