"""Schedule traces and ASCII Gantt rendering.

The simulated backend can record, per sub-task, when its input transfer
started, when compute began and ended, and when the result landed at the
master. ``render_gantt`` draws one row per node: ``-`` transfer, ``#``
compute, ``.`` idle — which makes scheduling pathologies (the static
schedulers' idle-while-ready holes) directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.comm.messages import TaskId


@dataclass(frozen=True)
class TraceEvent:
    """One sub-task execution on one node, in simulated seconds."""

    node: int
    task_id: TaskId
    transfer_start: float
    compute_start: float
    compute_end: float
    result_at: float

    def __post_init__(self) -> None:
        if not (
            self.transfer_start <= self.compute_start <= self.compute_end <= self.result_at
        ):
            raise ValueError(f"trace event out of order: {self}")


def render_gantt(
    trace: Sequence[TraceEvent],
    width: int = 80,
    makespan: float | None = None,
) -> str:
    """One row per node; ``-`` transfer, ``#`` compute, ``.`` idle."""
    if not trace:
        return "(empty trace)"
    end = makespan if makespan is not None else max(e.result_at for e in trace)
    if end <= 0:
        raise ValueError("trace has non-positive extent")
    scale = width / end
    by_node: Dict[int, List[TraceEvent]] = {}
    for e in trace:
        by_node.setdefault(e.node, []).append(e)
    lines = []
    for node in sorted(by_node):
        row = ["."] * width
        for e in by_node[node]:
            a = min(width - 1, int(e.transfer_start * scale))
            b = min(width - 1, int(e.compute_start * scale))
            c = min(width - 1, int(e.compute_end * scale))
            for x in range(a, b):
                row[x] = "-"
            for x in range(b, c + 1):
                row[x] = "#"
        lines.append(f"node {node:2d} |{''.join(row)}|")
    lines.append(f"        0{' ' * (width - 10)}{end:.4g}s")
    return "\n".join(lines)


def busy_fraction(trace: Sequence[TraceEvent], makespan: float) -> Dict[int, float]:
    """Per-node fraction of the schedule spent computing."""
    if makespan <= 0:
        raise ValueError("makespan must be positive")
    busy: Dict[int, float] = {}
    for e in trace:
        busy[e.node] = busy.get(e.node, 0.0) + (e.compute_end - e.compute_start)
    return {node: t / makespan for node, t in sorted(busy.items())}


def critical_tail(trace: Sequence[TraceEvent], k: int = 5) -> Tuple[TraceEvent, ...]:
    """The last ``k`` finishing sub-tasks — where end-game imbalance lives."""
    return tuple(sorted(trace, key=lambda e: e.result_at)[-k:])
