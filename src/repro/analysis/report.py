"""Structured run reports.

Every backend returns a :class:`RunReport` describing what the schedule
did: makespan, communication volume, per-worker task counts, fault
recoveries, and (simulated backend) utilization and idle-while-ready time
— the quantity whose non-zero value under BCW explains Fig 17.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class RunReport:
    """What happened during one EasyHPS run."""

    backend: str
    scheduler: str
    algorithm: str
    #: Total nodes including the master (paper's X).
    nodes: int
    #: Computing threads per slave node (paper's ct; max when uneven).
    threads_per_node: int
    #: End-to-end schedule length: simulated seconds (simulated backend)
    #: or wall-clock seconds (real backends).
    makespan: float
    #: Wall-clock seconds the run took on the host (== makespan for real
    #: backends; simulator CPU time for the simulated one).
    wall_time: float
    #: Number of process-level sub-tasks executed.
    n_tasks: int
    #: Number of thread-level sub-sub-tasks executed (0 when unknown).
    n_subtasks: int = 0
    #: Protocol messages exchanged, both directions.
    messages: int = 0
    #: Payload bytes master -> slaves (task inputs).
    bytes_to_slaves: int = 0
    #: Payload bytes slaves -> master (results).
    bytes_to_master: int = 0
    #: Process-level faults detected and recovered by redistribution.
    faults_recovered: int = 0
    #: Thread-level faults recovered by restarting a computing thread.
    thread_restarts: int = 0
    #: Stale results discarded via the register-table epoch check.
    stale_results: int = 0
    #: Straggler dispatches cancelled early and re-queued (``speculate``).
    speculative_redispatches: int = 0
    #: Workers retired for exceeding ``blacklist_threshold`` failures.
    blacklisted_workers: Tuple[int, ...] = ()
    #: Service/computing threads that outlived their join timeout (each
    #: also produced a :class:`~repro.utils.errors.WorkerLeakWarning`).
    worker_leaks: int = 0
    #: Message/worker faults injected by a chaos plan during the run.
    faults_injected: int = 0
    #: Sub-tasks executed per slave id.
    tasks_per_worker: Dict[int, int] = field(default_factory=dict)
    #: Worker-seconds spent idle while the computable stack was non-empty
    #: (simulated backend; the static schedulers' pathology metric).
    idle_while_ready: float = 0.0
    #: Mean busy fraction of computing threads (simulated backend).
    utilization: float = 0.0
    #: Total abstract work units of the instance.
    total_flops: float = 0.0
    #: Total cores in the paper's accounting (Y), when derivable.
    total_cores: Optional[int] = None
    #: Per-sub-task schedule trace (any backend with trace=True); a
    #: tuple of :class:`repro.analysis.gantt.TraceEvent` derived from the
    #: telemetry event stream.
    trace: Optional[tuple] = None
    #: Raw telemetry stream (``RunConfig.observe``/``trace``): a tuple of
    #: :class:`repro.obs.recorder.ObsEvent` covering the sub-task
    #: lifecycle; export with :func:`repro.obs.export.write_trace`.
    events: Optional[tuple] = None
    #: Metrics snapshot (``RunConfig.observe``): the plain-dict view of
    #: the run's :class:`repro.obs.metrics.MetricsRegistry`.
    metrics: Optional[Dict[str, object]] = None
    #: Rolling run digest (hex): an order-independent fold over every
    #: committed ``(task_id, outputs digest)``. Identical across backends
    #: for identical results (the serial oracle's digest is the reference;
    #: epochs are deliberately excluded from the fold). None when
    #: ``RunConfig.integrity`` is off.
    run_digest: Optional[str] = None
    #: Results rejected at receive because their payload digest mismatched.
    digest_rejects: int = 0
    #: Sampled audit recomputes that convicted a committed block (SDC).
    audits_convicted: int = 0
    #: Commits revoked and recomputed by taint invalidation.
    tainted_recomputes: int = 0
    #: Workers quarantined for divergent results.
    quarantined_workers: Tuple[int, ...] = ()

    def speedup_vs(self, serial_makespan: float) -> float:
        """Speedup relative to a serial makespan of the same instance."""
        if self.makespan <= 0:
            raise ValueError("makespan must be positive to compute speedup")
        return serial_makespan / self.makespan

    def summary(self) -> str:
        """Human-readable multi-line digest."""
        lines = [
            f"{self.algorithm} via {self.backend}/{self.scheduler} "
            f"on {self.nodes} nodes x {self.threads_per_node} threads",
            f"  makespan      : {self.makespan:.6g} s",
            f"  tasks         : {self.n_tasks} ({self.n_subtasks} sub-sub-tasks)",
            f"  messages      : {self.messages} "
            f"({_human_bytes(self.bytes_to_slaves)} out, {_human_bytes(self.bytes_to_master)} back)",
        ]
        if self.faults_recovered or self.thread_restarts or self.stale_results:
            lines.append(
                f"  faults        : {self.faults_recovered} redistributed, "
                f"{self.thread_restarts} thread restarts, {self.stale_results} stale dropped"
            )
        if self.faults_injected:
            lines.append(f"  chaos         : {self.faults_injected} faults injected")
        if self.speculative_redispatches or self.blacklisted_workers or self.worker_leaks:
            lines.append(
                f"  recovery      : {self.speculative_redispatches} speculative, "
                f"blacklisted {list(self.blacklisted_workers)}, "
                f"{self.worker_leaks} leaked threads"
            )
        if self.utilization:
            lines.append(
                f"  utilization   : {self.utilization:.1%}"
                + (f", idle-while-ready {self.idle_while_ready:.4g} s" if self.idle_while_ready else "")
            )
        if self.digest_rejects or self.audits_convicted or self.quarantined_workers:
            lines.append(
                f"  integrity     : {self.digest_rejects} digest rejects, "
                f"{self.audits_convicted} audit convictions, "
                f"{self.tainted_recomputes} tainted recomputes, "
                f"quarantined {list(self.quarantined_workers)}"
            )
        if self.run_digest is not None:
            lines.append(f"  run digest    : {self.run_digest}")
        if self.events is not None:
            lines.append(f"  telemetry     : {len(self.events)} events recorded")
        return "\n".join(lines)


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0:
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} TiB"
