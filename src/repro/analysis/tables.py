"""Plain-text tables for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width table with a header rule."""
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in srows)
    return "\n".join(out)


def format_series(label: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """One series as 'label: (x, y) (x, y) ...' with compact numbers."""
    pts = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{label}: {pts}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
