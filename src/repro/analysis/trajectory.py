"""The performance trajectory: appendable baselines and a regression gate.

``BENCH_BASELINE.json`` at the repo root accumulates one entry per
recorded revision — a measured run of the standard workload on all four
backends. This module owns that file's schema and the two operations on
it:

- :func:`append_entry` — measure and append (the ``--write`` path),
  labelling the entry with ``git describe`` output by default so
  entries map to revisions without manual bookkeeping;
- :func:`check_against` — the **regression gate** (``repro perf
  --against BENCH_BASELINE.json --check``): compare a fresh measurement
  against the latest recorded entry with configurable tolerances.

What is gated, and how, follows what is actually stable:

- *Deterministic wire counters* (serial + simulated backends): message
  and byte counts reproduce bit-for-bit, so any **increase** beyond
  ``max_bytes_regress`` (default 0: none) fails. Decreases pass — they
  are improvements the next ``--write`` records.
- *Simulated makespan*: sim-time is deterministic; gated directly
  against ``max_makespan_regress``.
- *Real-backend makespans* (threads/processes): wall time depends on
  the machine, so the gate compares the **ratio to the serial backend's
  makespan from the same measurement session** — a machine-portable
  proxy — against the baseline's ratio, with the same tolerance.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.errors import ConfigError

SCHEMA = "repro-bench-baseline-1"

#: The standard workload: small enough for CI, large enough that the
#: dispatch/commit path dominates interpreter startup.
STANDARD = dict(
    algorithm="edit-distance",
    size=240,
    seed=0,
    nodes=3,
    threads_per_node=2,
    process_partition=40,
    thread_partition=10,
)

BACKENDS = ("serial", "threads", "processes", "simulated")

#: Deterministic backends: wire counters must reproduce bit-for-bit.
DETERMINISTIC = ("serial", "simulated")

#: Default headroom for makespan comparisons. Generous by design: CI
#: machines are noisy, and the ratio-to-serial normalization only
#: removes the *linear* part of machine variation.
DEFAULT_MAKESPAN_REGRESS = 0.75

#: Default headroom for deterministic wire counters: none — any byte or
#: message increase is a real protocol change someone must acknowledge
#: by re-recording the baseline.
DEFAULT_BYTES_REGRESS = 0.0


def measure_backend(backend: str) -> Dict[str, object]:
    """Run the standard workload once on ``backend`` and digest it."""
    from repro import EasyHPS, RunConfig
    from repro.algorithms import EditDistance

    problem = EditDistance.random(STANDARD["size"], seed=STANDARD["seed"])
    config = RunConfig(
        nodes=STANDARD["nodes"],
        threads_per_node=STANDARD["threads_per_node"],
        backend=backend,
        process_partition=STANDARD["process_partition"],
        thread_partition=STANDARD["thread_partition"],
    )
    t0 = time.perf_counter()
    run = EasyHPS(config).run(problem)
    wall = time.perf_counter() - t0
    rep = run.report
    return {
        "wall_time_s": round(wall, 6),
        "makespan_s": round(rep.makespan, 6),
        "messages": rep.messages,
        "bytes_to_slaves": rep.bytes_to_slaves,
        "bytes_to_master": rep.bytes_to_master,
    }


def measure() -> Dict[str, Dict[str, object]]:
    """The standard workload on every backend."""
    return {backend: measure_backend(backend) for backend in BACKENDS}


def git_describe_label(cwd: Optional[str] = None) -> str:
    """A revision label from ``git describe`` (tags or short hash, with
    ``-dirty``); falls back to ``"dev"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "dev"
    label = out.stdout.strip()
    return label if out.returncode == 0 and label else "dev"


def load_trajectory(path: str) -> Dict[str, object]:
    """The baseline document, or an empty skeleton when absent."""
    if not os.path.exists(path):
        return {"schema": SCHEMA, "workload": dict(STANDARD), "entries": []}
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ConfigError(
            f"{path}: unknown baseline schema {doc.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    return doc


def append_entry(
    path: str,
    label: Optional[str] = None,
    measured: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Measure (unless given) and append one trajectory entry; returns it."""
    doc = load_trajectory(path)
    doc["schema"] = SCHEMA
    doc["workload"] = dict(STANDARD)
    entry = {
        "label": label or git_describe_label(os.path.dirname(path) or None),
        "backends": measured if measured is not None else measure(),
    }
    doc.setdefault("entries", []).append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entry


@dataclass(frozen=True)
class GateCheck:
    """One gate comparison: ``got`` must stay within ``tol`` of ``want``."""

    name: str
    want: float
    got: float
    tol: float

    @property
    def ok(self) -> bool:
        return self.got <= self.want * (1.0 + self.tol)

    def describe(self) -> str:
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.name}: baseline {self.want:.6g}, current {self.got:.6g} "
            f"(allowed +{self.tol:.0%}) — {verdict}"
        )


@dataclass
class GateResult:
    """Outcome of one gate run against the latest trajectory entry."""

    baseline_label: str
    checks: List[GateCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[GateCheck]:
        return [c for c in self.checks if not c.ok]

    def describe(self) -> str:
        lines = [f"perf gate vs baseline entry {self.baseline_label!r}:"]
        lines += [f"  {c.describe()}" for c in self.checks]
        lines.append(
            f"  => {'PASS' if self.ok else f'FAIL ({len(self.failures)} regressions)'}"
        )
        return "\n".join(lines)


def check_against(
    path: str,
    *,
    max_makespan_regress: float = DEFAULT_MAKESPAN_REGRESS,
    max_bytes_regress: float = DEFAULT_BYTES_REGRESS,
    measured: Optional[Dict[str, Dict[str, object]]] = None,
) -> GateResult:
    """Gate a fresh measurement against the latest trajectory entry.

    Raises :class:`~repro.utils.errors.ConfigError` when the trajectory
    has no entries (nothing to gate against) — that is a setup error,
    not a regression.
    """
    doc = load_trajectory(path)
    entries = doc.get("entries", [])
    if not entries:
        raise ConfigError(f"{path}: no baseline entries; record one with --write first")
    latest = entries[-1]
    base = latest["backends"]
    current = measured if measured is not None else measure()
    result = GateResult(baseline_label=str(latest.get("label", "?")))

    for backend in DETERMINISTIC:
        if backend not in base or backend not in current:
            continue
        for key in ("messages", "bytes_to_slaves", "bytes_to_master"):
            result.checks.append(
                GateCheck(
                    name=f"{backend}.{key}",
                    want=float(base[backend][key]),
                    got=float(current[backend][key]),
                    tol=max_bytes_regress,
                )
            )
    if "simulated" in base and "simulated" in current:
        result.checks.append(
            GateCheck(
                name="simulated.makespan_s",
                want=float(base["simulated"]["makespan_s"]),
                got=float(current["simulated"]["makespan_s"]),
                tol=max_makespan_regress,
            )
        )
    base_serial = float(base.get("serial", {}).get("makespan_s", 0.0))
    cur_serial = float(current.get("serial", {}).get("makespan_s", 0.0))
    if base_serial > 0 and cur_serial > 0:
        for backend in ("threads", "processes"):
            if backend not in base or backend not in current:
                continue
            result.checks.append(
                GateCheck(
                    name=f"{backend}.makespan_vs_serial",
                    want=float(base[backend]["makespan_s"]) / base_serial,
                    got=float(current[backend]["makespan_s"]) / cur_serial,
                    tol=max_makespan_regress,
                )
            )
    return result


def format_measurement(measured: Dict[str, Dict[str, object]]) -> str:
    """One line per backend, aligned (shared by the CLI and the script)."""
    lines = []
    for backend, m in measured.items():
        lines.append(
            f"  {backend:10s} wall={m['wall_time_s']:8.3f}s "
            f"makespan={m['makespan_s']:8.3f}s msgs={m['messages']:6d} "
            f"out={m['bytes_to_slaves']:9d}B back={m['bytes_to_master']:9d}B"
        )
    return "\n".join(lines)
