"""Execution backends.

Four ways to run one and the same problem/partition/policy description:

- ``serial``    — single-threaded reference executor (ground truth);
- ``threads``   — real slave parts on threads (EasyPDP-style node);
- ``processes`` — real slave parts on OS processes (the MPI stand-in);
- ``simulated`` — discrete-event performance model (the Tianhe-1A
  stand-in used by every figure reproduction).

All return ``(final_state_or_None, RunReport)``; the facade finalizes.
"""

from repro.backends.serial import run_serial
from repro.backends.threads import run_threads
from repro.backends.processes import run_processes
from repro.backends.simulated import run_simulated

__all__ = ["run_serial", "run_threads", "run_processes", "run_simulated"]
