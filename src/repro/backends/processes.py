"""Processes backend: slave parts as OS processes — the MPI stand-in.

Each slave is a ``multiprocessing.Process`` running
:func:`repro.runtime.slave.slave_process_main`; messages pickle across OS
pipes exactly where MPI messages would flow. Problems must therefore be
picklable (all bundled algorithms are). This backend achieves real
parallel speedup for compute-heavy instances but exists primarily to
prove the distributed protocol; timing figures come from the simulator.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, Tuple

import numpy as np

from repro.algorithms.problem import DPProblem
from repro.analysis.report import RunReport
from repro.backends.threads import open_journal
from repro.chaos.channel import ChaosChannel
from repro.cluster.faults import IoPolicy
from repro.comm.shm import (
    BlockStore,
    ShmChannel,
    drain_shm_errors,
    run_prefix,
    sweep_segments,
)
from repro.comm.transport import PipeChannel
from repro.obs import EventRecorder, MetricsRegistry, to_gantt_trace
from repro.runtime.config import RunConfig
from repro.runtime.master import MasterPart
from repro.runtime.slave import slave_process_main
from repro.schedulers.policy import make_policy


def run_processes(
    problem: DPProblem, config: RunConfig, resume=None
) -> Tuple[Dict[str, np.ndarray], RunReport]:
    """Execute ``problem`` with ``config.n_slaves`` slave processes.

    ``resume`` (a :class:`~repro.durable.recovery.RecoveredRun`) continues
    a journaled run after a master crash — including a real ``kill -9``:
    orphaned slave processes of the dead master self-terminate on pipe
    EOF, and this call starts a fresh slave fleet.
    """
    proc_size, thread_size = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)
    policy = make_policy(
        config.scheduler,
        config.n_slaves,
        partition.grid.n_block_cols,
        block_cols=config.bcw_block_cols,
    )

    # Telemetry lives master-side only: the recorder holds a lock and
    # cannot pickle into slave processes. Task-scope compute spans are
    # synthesized at the master from TaskResult.elapsed, so the lifecycle
    # stream matches the in-process backends anyway.
    recorder = EventRecorder() if config.observing else None
    metrics = MetricsRegistry() if config.observing else None

    # fork is faster and keeps the problem object shared copy-on-write;
    # fall back to spawn where fork is unavailable (macOS default, Windows).
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")

    # Zero-copy data plane (``config.shm``): one run-wide segment prefix,
    # one master-side block store (assign payloads), one store per slave
    # process (result payloads, built inside slave_process_main). The
    # master sweeps the prefix at teardown as the leak backstop.
    shm_prefix = run_prefix(config.run_id) if config.shm else None
    store = (
        BlockStore(
            shm_prefix,
            io_policy=IoPolicy(config.io_fault_plan, "shm-master")
            if config.io_fault_plan
            else None,
        )
        if shm_prefix is not None
        else None
    )

    master_channels = []
    procs = []
    options = dict(
        thread_scheduler=config.thread_scheduler,
        subtask_timeout=config.subtask_timeout,
        max_retries=config.max_retries,
        poll_interval=config.poll_interval,
        fault_plan=config.fault_plan,
        thread_fault_plan=config.thread_fault_plan,
        worker_fault_plan=config.worker_fault_plan,
        hang_duration=config.hang_duration,
        verify=config.verify,
        heartbeat_interval=config.heartbeat_interval,
        integrity=config.integrity,
        shm_prefix=shm_prefix,
        io_fault_plan=config.io_fault_plan if config.io_fault_plan else None,
    )
    for k in range(config.n_slaves):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        channel = PipeChannel(parent_conn)
        if store is not None:
            # The shm wrapper sits directly on the pipe; chaos (below)
            # wraps *outside* it, so injected faults mutate the decoded
            # arrays the runtime sees, never the opaque segment refs.
            # Instrumented on its own: per-message telemetry accrues on
            # the outermost wrapper, but the ``shm-attach`` span is
            # emitted by this layer regardless of what wraps it.
            channel = ShmChannel(channel, store)
            if recorder is not None:
                channel.instrument(recorder, endpoint=f"slave{k}")
        if config.message_fault_plan:
            # Chaos wraps the master-side endpoint only — the plan never
            # crosses the pipe, and both directions are still covered.
            channel = ChaosChannel(
                channel, config.message_fault_plan, endpoint_index=k
            )
        if recorder is not None:
            channel.instrument(recorder, endpoint=f"slave{k}")
        master_channels.append(channel)
        procs.append(
            ctx.Process(
                target=slave_process_main,
                args=(k, child_conn, problem, proc_size, thread_size,
                      config.threads_per_node, options),
                daemon=True,
                name=f"slave{k}",
            )
        )

    journal = open_journal(config, problem, resume, obs=recorder)
    master = MasterPart(
        problem,
        partition,
        master_channels,
        policy,
        task_timeout=config.task_timeout,
        max_retries=config.max_retries,
        poll_interval=config.poll_interval,
        retry_backoff=config.retry_backoff,
        retry_backoff_max=config.retry_backoff_max,
        speculate=config.speculate,
        speculative_factor=config.speculative_factor,
        speculative_quantile=config.speculative_quantile,
        blacklist_threshold=config.blacklist_threshold,
        stall_timeout=config.effective_stall_timeout,
        verify=config.verify,
        obs=recorder,
        metrics=metrics,
        journal=journal,
        completed=resume.committed if resume is not None else None,
        initial_state=resume.state if resume is not None else None,
        attempts=resume.attempts if resume is not None else None,
        heartbeat_interval=config.heartbeat_interval,
        lease_factor=config.lease_factor,
        integrity=config.integrity,
        audit_fraction=config.audit_fraction,
        vote_k=config.vote_k,
        quarantine_threshold=config.quarantine_threshold,
        run_digest=resume.run_digest if resume is not None else None,
        commit_digests=resume.scan.commit_digests if resume is not None else None,
        batch_wave=config.batch_wave,
        max_batch=config.max_batch,
        block_store=store,
        job_id=config.run_id,
    )

    started = time.perf_counter()
    for p in procs:
        p.start()
    try:
        state = master.run()
    finally:
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for ch in master_channels:
            ch.close()
        if shm_prefix is not None:
            # Backstop after the fleet is gone: unlink any segment of this
            # run still in /dev/shm (undelivered assigns were already
            # released as their dispatches settled; this catches orphans
            # from slaves killed mid-park).
            sweep_segments(shm_prefix)
            # Surface every OSError the reclamation hooks swallowed for
            # this run — resource failures must never be invisible.
            drain_shm_errors(shm_prefix, metrics=metrics, obs=recorder)
    elapsed = time.perf_counter() - started

    report = RunReport(
        backend="processes",
        scheduler=config.scheduler,
        algorithm=problem.name,
        nodes=config.nodes,
        threads_per_node=config.threads_per_node,
        makespan=elapsed,
        wall_time=elapsed,
        n_tasks=partition.n_blocks,
        messages=master.stats.messages,
        bytes_to_slaves=master.stats.bytes_to_slaves,
        bytes_to_master=master.stats.bytes_to_master,
        faults_recovered=master.stats.faults_recovered,
        stale_results=master.stats.stale_results,
        tasks_per_worker=dict(master.stats.tasks_per_worker),
        total_flops=problem.total_flops(partition),
        speculative_redispatches=master.stats.speculative_redispatches,
        blacklisted_workers=tuple(master.stats.blacklisted_workers),
        worker_leaks=master.stats.worker_leaks,
        faults_injected=sum(
            getattr(ch, "faults_injected", 0) for ch in master_channels
        ),
        run_digest=master.stats.run_digest,
        digest_rejects=master.stats.digest_rejects,
        audits_convicted=master.stats.audits_convicted,
        tainted_recomputes=master.stats.tainted_recomputes,
        quarantined_workers=tuple(master.stats.quarantined_workers),
    )
    if recorder is not None:
        report.events = recorder.events()
        if metrics is not None:
            report.metrics = metrics.snapshot()
        if config.trace:
            report.trace = to_gantt_trace(report.events)
    return state, report
