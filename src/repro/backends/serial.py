"""Serial reference backend.

Drains the process-level DAG in topological order, computing each block's
inner DAG serially too. This is the correctness oracle for the parallel
backends and the wall-time baseline for measured speedups.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from repro.algorithms.problem import DPProblem
from repro.analysis.report import RunReport
from repro.runtime.config import RunConfig


def run_serial(problem: DPProblem, config: RunConfig) -> Tuple[Dict[str, np.ndarray], RunReport]:
    """Execute ``problem`` serially under ``config``'s partition sizes."""
    proc_size, thread_size = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)
    state = problem.make_state()
    started = time.perf_counter()
    n_subtasks = 0
    for bid in partition.abstract.topological_order():
        inputs = problem.extract_inputs(state, partition, bid)
        evaluator = problem.evaluator(partition, bid, inputs)
        inner = partition.sub_partition(bid, thread_size)
        n_subtasks += inner.n_blocks
        outputs = evaluator.run_serial(inner)
        problem.apply_result(state, partition, bid, outputs)
    elapsed = time.perf_counter() - started
    report = RunReport(
        backend="serial",
        scheduler="none",
        algorithm=problem.name,
        nodes=1,
        threads_per_node=1,
        makespan=elapsed,
        wall_time=elapsed,
        n_tasks=partition.n_blocks,
        n_subtasks=n_subtasks,
        total_flops=problem.total_flops(partition),
    )
    return state, report
