"""Serial reference backend.

Drains the process-level DAG in topological order, computing each block's
inner DAG serially too. This is the correctness oracle for the parallel
backends and the wall-time baseline for measured speedups.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from repro.algorithms.problem import DPProblem
from repro.analysis.report import RunReport
from repro.comm.serialization import (
    MESSAGE_ENVELOPE_BYTES,
    content_digest,
    payload_nbytes,
)
from repro.integrity import fold_commit, run_digest_hex
from repro.obs import EventRecorder, MetricsRegistry, to_gantt_trace
from repro.runtime.config import RunConfig


def run_serial(
    problem: DPProblem, config: RunConfig, resume=None
) -> Tuple[Dict[str, np.ndarray], RunReport]:
    """Execute ``problem`` serially under ``config``'s partition sizes.

    Journals through the same write-ahead path as the parallel backends
    when ``config.journal_path`` is set, and skips already-committed
    blocks when resuming (``resume`` is a
    :class:`~repro.durable.recovery.RecoveredRun`).
    """
    from repro.backends.threads import open_journal

    proc_size, thread_size = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)
    state = problem.make_state() if resume is None else resume.state
    committed = dict(resume.committed) if resume is not None else {}
    # The oracle emits the same task lifecycle as the parallel backends
    # (one virtual worker, node 0) so traces are structurally comparable.
    recorder = EventRecorder() if config.observing else None
    metrics = MetricsRegistry() if config.observing else None
    journal = open_journal(config, problem, resume, obs=recorder)
    if recorder is not None and committed:
        recorder.emit("resume", None, node=0, n_committed=len(committed))
    # The oracle folds the same rolling run digest as the parallel
    # backends (epoch-free, so the folds compare directly); resumed runs
    # continue from the journal's fold.
    digest_on = config.integrity != "off"
    digest_acc = 0
    digests: Dict = {}
    if digest_on and resume is not None:
        if resume.run_digest:
            digest_acc = int(resume.run_digest, 16)
        digests.update(resume.scan.commit_digests)
    started = time.perf_counter()
    n_subtasks = 0
    try:
        n_subtasks, digest_acc = _drain(
            problem, partition, state, committed, journal,
            recorder, metrics, thread_size, digest_on, digest_acc, digests,
        )
        if journal is not None:
            journal.end(run_digest=run_digest_hex(digest_acc) if digest_on else None)
    finally:
        if journal is not None:
            journal.close()
    elapsed = time.perf_counter() - started
    report = RunReport(
        backend="serial",
        scheduler="none",
        algorithm=problem.name,
        nodes=1,
        threads_per_node=1,
        makespan=elapsed,
        wall_time=elapsed,
        n_tasks=partition.n_blocks,
        n_subtasks=n_subtasks,
        total_flops=problem.total_flops(partition),
        run_digest=run_digest_hex(digest_acc) if digest_on else None,
    )
    if recorder is not None:
        report.events = recorder.events()
        if metrics is not None:
            report.metrics = metrics.snapshot()
        if config.trace:
            report.trace = to_gantt_trace(report.events)
    return state, report


def _drain(
    problem, partition, state, committed, journal,
    recorder, metrics, thread_size, digest_on, digest_acc, digests,
) -> Tuple[int, int]:
    """Topological drain of the remaining (uncommitted) blocks."""
    n_subtasks = 0
    for bid in partition.abstract.topological_order():
        if bid in committed:
            continue  # recovered from the journal; already in state
        inputs = problem.extract_inputs(state, partition, bid)
        if recorder is not None:
            recorder.emit("assign", bid, epoch=0, node=0, worker=0)
            recorder.emit(
                "send", bid, epoch=0, node=0, worker=0,
                nbytes=MESSAGE_ENVELOPE_BYTES + payload_nbytes(inputs),
            )
        evaluator = problem.evaluator(partition, bid, inputs)
        inner = partition.sub_partition(bid, thread_size)
        n_subtasks += inner.n_blocks
        t0 = recorder.clock.now() if recorder is not None else 0.0
        outputs = evaluator.run_serial(inner)
        if recorder is not None:
            t1 = recorder.clock.now()
            recorder.emit("compute", bid, epoch=0, node=0, worker=0, t0=t0, t1=t1)
            recorder.emit(
                "result", bid, epoch=0, node=0, worker=0,
                nbytes=MESSAGE_ENVELOPE_BYTES + payload_nbytes(outputs),
                elapsed=t1 - t0,
            )
            recorder.emit("commit", bid, epoch=0, node=0, worker=0)
            if metrics is not None:
                metrics.counter("serial.tasks_completed").inc()
        digest = None
        if digest_on:
            if recorder is not None:
                d0 = recorder.clock.now()
                digest = content_digest(outputs)
                d1 = recorder.clock.now()
                recorder.emit(
                    "digest-compute", bid, epoch=0, node=0, worker=0,
                    t0=d0, t1=d1, hop="commit",
                )
            else:
                digest = content_digest(outputs)
            digest_acc = fold_commit(digest_acc, bid, digest)
            digests[bid] = digest
        if journal is not None:
            if recorder is not None:
                j0 = recorder.clock.now()
                jbytes = journal.commit(bid, 0, outputs, digest=digest)
                j1 = recorder.clock.now()
                recorder.emit(
                    "journal-write", bid, epoch=0, node=0, worker=0,
                    t0=j0, t1=j1, nbytes=jbytes,
                )
            else:
                journal.commit(bid, 0, outputs, digest=digest)  # write-ahead of the merge
        problem.apply_result(state, partition, bid, outputs)
        committed[bid] = 0
        if journal is not None and journal.should_checkpoint():
            snapshot = {k: np.array(v, copy=True) for k, v in state.items()}
            c0 = recorder.clock.now() if recorder is not None else 0.0
            nbytes = journal.checkpoint(
                snapshot, committed, {t: 1 for t in committed},
                run_digest=run_digest_hex(digest_acc) if digest_on else None,
                commit_digests=dict(digests) if digest_on else None,
            )
            if recorder is not None:
                c1 = recorder.clock.now()
                recorder.emit(
                    "checkpoint", None, node=0, t0=c0, t1=c1,
                    n_committed=len(committed), nbytes=nbytes,
                )
    return n_subtasks, digest_acc
