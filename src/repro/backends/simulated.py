"""Simulated backend: the two-level EasyHPS schedule on a modeled cluster.

This backend replays the paper's experiments without Tianhe-1A: it runs
the *actual* scheduling machinery (DAG parser, policy objects, register /
overtime bookkeeping) against a deterministic cost model —

- a sub-task's compute time is the makespan of its thread-level DAG under
  the node's computing threads (:func:`simulate_level`), charged from the
  algorithm's ``region_flops`` and the node's contention-aware rate;
- every master<->slave message occupies both endpoints' NICs for
  ``latency + bytes/bandwidth``;
- the master serializes a per-dispatch overhead, and each node handles
  one sub-task at a time (the paper's slave loop).

Determinism: all decisions depend only on event order, which the event
queue makes reproducible. Inner makespans are memoized on (pattern,
cost-signature, threads), which collapses the many identical blocks of a
regular DP grid.

Fault injection: a "crash" costs the node half the compute time and never
answers; a "hang" occupies the node for twice the timeout. Both are
recovered by the simulated overtime check, mirroring Fig 10.

Chaos (:mod:`repro.chaos`) is modeled too: message faults hit the
simulated TaskAssign/TaskResult transfers (a dropped assignment leaves
the node free and the registration to time out; a dropped result leaves
the registration to time out while the node serves on), worker faults
kill or slow whole nodes, timeouts are attributed to nodes for
blacklisting, and re-dispatches honor the exponential backoff. A run
that can no longer finish (every node dead) ends in a clean
:class:`FaultToleranceExhausted` — the simulator cannot hang by
construction (the event queue drains), so the abort path is the whole
guarantee. Speculation is a no-op here: stragglers are deterministic and
the plain timeout recovers them.

Silent data corruption is modeled as *taint*: the simulator computes no
cell values, so it tracks which commits would be wrong instead. A live
dispatch becomes tainted by an undetected message mutation (``corrupt``
with digests off, ``bitflip`` always — its digest is restamped) or by a
lying node past its ``lie_point``; a commit whose predecessor commit is
tainted inherits the taint ("garbage in"). The integrity policy then
mirrors the real master's semantics: digests detect ``corrupt`` at
receive (assign-side rejects ride the overtime check like a drop;
result-side rejects charge the retry budget and requeue immediately);
audits recompute a deterministic sample *from committed inputs*, so they
convict exactly the own-fault taints — inherited taint recomputes to the
same wrong values and passes, which is why conviction triggers taint
recompute of the whole committed dependent closure; voting is modeled as
full-coverage divergence detection at ``(vote_k - 1)`` extra round trips
per commit (replicas disagree exactly when the producer's own result is
wrong). Convicted nodes are quarantined past ``quarantine_threshold``.
Taint that survives to the end of the run is counted in the
``sim.undetected_corruptions`` metric — the simulator's omniscient stand-
in for a wrong answer, which chaos campaigns use to classify runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.problem import DPProblem
from repro.analysis.report import RunReport
from repro.cluster.machine import NodeSpec
from repro.cluster.simcore import EventQueue
from repro.cluster.topology import ClusterSpec
from repro.comm.messages import TaskId
from repro.comm.serialization import MESSAGE_ENVELOPE_BYTES
from repro.dag.parser import DAGParser
from repro.dag.partition import Partition
from repro.dag.pattern import DAGPattern
from repro.obs import EventRecorder, MetricsRegistry, ScheduleTracer, to_gantt_trace
from repro.runtime.config import RunConfig
from repro.schedulers.policy import SchedulingPolicy, make_policy
from repro.utils.errors import FaultToleranceExhausted, SchedulerError


def simulate_level(
    pattern: DAGPattern,
    costs: Dict[TaskId, float],
    n_workers: int,
    policy: SchedulingPolicy,
    overhead: float = 0.0,
) -> Tuple[float, float, float]:
    """Event-driven list schedule of one DAG level.

    Returns ``(makespan, busy_time, idle_while_ready)``: total schedule
    length, summed worker busy seconds, and summed worker-seconds spent
    idle while at least one ready task existed that the worker's policy
    forbade (zero under the dynamic policy by construction).
    """
    import heapq

    parser = DAGParser(pattern)
    ready: List[TaskId] = list(parser.computable())
    idle_workers: List[int] = list(range(n_workers))
    running: List[Tuple[float, int, TaskId]] = []  # (finish, worker, task)
    now = 0.0
    busy = 0.0
    idle_while_ready = 0.0

    def assign() -> None:
        nonlocal busy
        # Scan order is the policy's business: LIFO over the computable
        # stack by default, cost-ordered for dynamic-lcf.
        w = 0
        while w < len(idle_workers):
            worker = idle_workers[w]
            idx = policy.select_index(worker, ready)
            picked: Optional[TaskId] = None if idx is None else ready.pop(idx)
            if picked is None:
                w += 1
                continue
            idle_workers.pop(w)
            duration = costs[picked] + overhead
            busy += duration
            heapq.heappush(running, (now + duration, worker, picked))

    assign()
    while running:
        finish, worker, task = heapq.heappop(running)
        if ready and idle_workers:
            # Workers idling next to ready-but-ineligible tasks: the
            # static schedulers' pathology, accounted per interval.
            idle_while_ready += len(idle_workers) * (finish - now)
        now = finish
        idle_workers.append(worker)
        idle_workers.sort()
        ready.extend(parser.complete(task))
        assign()
    if not parser.is_done():
        raise SchedulerError(
            f"level schedule stalled with {parser.n_remaining} tasks left "
            f"(policy {policy.name!r} starved a task)"
        )
    return now, busy, idle_while_ready


@dataclass
class _Node:
    """Runtime state of one simulated computing node."""

    spec: NodeSpec
    nic_free: float = 0.0
    busy_until: float = 0.0
    parked_since: Optional[float] = None
    tasks_done: int = 0
    #: Prefetched-but-not-yet-computing task (prefetch mode):
    #: (bid, epoch, transfer_start, transfer_done).
    pending: Optional[Tuple[TaskId, int, float, float]] = None
    #: Permanently out of service (worker-death fault or blacklisted).
    dead: bool = False
    #: Per-node message counters keying the message-fault plan.
    sent_index: int = 0
    recv_index: int = 0
    #: Whether the slow-node fault was already reported for this node.
    slow_noted: bool = False


class _SimulatedRun:
    """One end-to-end simulated schedule."""

    def __init__(
        self,
        problem: DPProblem,
        config: RunConfig,
        resume=None,
        evq: Optional[EventQueue] = None,
    ) -> None:
        self.problem = problem
        self.config = config
        proc_size, thread_size = config.partitions_for(problem)
        self.partition: Partition = problem.build_partition(proc_size)
        self.thread_size = thread_size
        self.cluster: ClusterSpec = config.cluster_spec()
        #: Per-node sets of completed task ids (affinity + cache model).
        self.node_done: List[set] = [set() for _ in self.cluster.compute_nodes]
        if config.scheduler == "dynamic-affinity":
            from repro.schedulers.policy import AffinityDynamicPolicy

            self.policy: SchedulingPolicy = AffinityDynamicPolicy(
                self.cluster.n_compute_nodes,
                neighbor_fn=self.partition.abstract.predecessors,
                history={k: s for k, s in enumerate(self.node_done)},
            )
        else:
            self.policy = make_policy(
                config.scheduler,
                self.cluster.n_compute_nodes,
                self.partition.grid.n_block_cols,
                block_cols=config.bcw_block_cols,
                cost_fn=lambda bid: problem.block_flops(self.partition, bid),
            )
        self.thread_policy_name = config.thread_scheduler

        #: Injectable for model checking: ``repro.check.explore`` passes a
        #: :class:`~repro.cluster.simcore.ControlledEventQueue` to
        #: enumerate message-delivery orders. Every event scheduled below
        #: carries a structural label for that purpose.
        self.evq = evq if evq is not None else EventQueue()
        self.nodes = [_Node(spec=s) for s in self.cluster.compute_nodes]
        self.master_nic_free = 0.0
        self.master_cpu_free = 0.0

        self.parser = DAGParser(self.partition.abstract)
        self.ready: List[TaskId] = list(self.parser.computable())
        self.attempts: Dict[TaskId, int] = {}
        self.registered: Dict[TaskId, int] = {}  # live task -> epoch

        self._inner_memo: Dict[tuple, Tuple[float, float]] = {}
        self.makespan = 0.0
        self.busy_thread_seconds = 0.0
        self.n_subtasks = 0
        self.messages = 0
        self.bytes_to_slaves = 0
        self.bytes_to_master = 0
        self.faults = 0
        self.idle_while_ready = 0.0
        self._last_account = 0.0
        self.failure: Optional[BaseException] = None
        #: Chaos bookkeeping: injected fault count, which node each live
        #: task was dispatched to (timeout attribution), per-node timeout
        #: failures, and nodes retired by death/blacklist.
        self.faults_injected = 0
        self.dispatched_to: Dict[TaskId, int] = {}
        self.node_failures: Dict[int, int] = {}
        self.blacklisted: List[int] = []
        #: SDC model: live (bid, epoch) dispatches that would return wrong
        #: values, commits that are wrong, per-node conviction counts, and
        #: nodes retired for divergent results (distinct from blacklist).
        self.integrity = config.integrity_policy
        self.live_taint: Dict[Tuple[TaskId, int], str] = {}
        self.tainted_commits: Dict[TaskId, str] = {}
        self.divergence: Dict[int, int] = {}
        self.quarantined: List[int] = []
        self.digest_rejects = 0
        self.audits_passed = 0
        self.audits_convicted = 0
        self.taint_recomputes = 0
        self.votes_cast = 0
        self.vote_divergences = 0
        #: Telemetry stream stamped with *sim-time* (the event queue's
        #: clock) so exported traces draw the modeled schedule, and the
        #: happens-before log validated after the run (``verify``) — both
        #: behind the shared :class:`ScheduleTracer`.
        self.obs: Optional[EventRecorder] = (
            EventRecorder(self.evq.clock()) if config.observing else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.observing else None
        )
        self.sched = ScheduleTracer(
            clock=self.evq.clock(),
            verify=config.verify,
            obs=self.obs,
            node=-1,
            scope="task",
        )
        #: Durable-run state: committed task -> epoch, and the write-ahead
        #: journal (None when journaling is off). Journal writes are
        #: charged to the master CPU in sim-time (``journal_latency``).
        self.committed: Dict[TaskId, int] = {}
        if resume is not None:
            # Replay the journal's committed prefix straight into the DAG
            # parser. The committed set is downward-closed (tasks commit
            # only after their predecessors), so topological order never
            # hits a blocked vertex. Synthetic commit records go to the
            # happens-before trace only — the obs stream distinguishes
            # journaled from live commits for the resume invariants.
            for bid in self.partition.abstract.topological_order():
                if bid not in resume.committed:
                    continue
                self.parser.complete(bid)
                if self.sched.trace is not None:
                    self.sched.trace.record(
                        "commit", bid, resume.committed[bid], -1, 0.0
                    )
            self.committed = dict(resume.committed)
            self.attempts.update(resume.attempts)
            self.ready = list(self.parser.computable())
            if self.obs is not None:
                self.obs.emit(
                    "resume", None, node=-1, scope="task",
                    n_committed=len(self.committed),
                )
        from repro.backends.threads import open_journal

        self.journal = open_journal(config, problem, resume, obs=self.obs)
        if self.journal is not None:
            # ``journal_degrade="checkpoint"`` rescue: the simulator's
            # checkpoints carry no DP state (it computes no cells), just
            # the committed set and retry budgets.
            self.journal.bind_rescue(
                lambda: self.journal.checkpoint(
                    None, self.committed, dict(self.attempts)
                )
            )
        #: task -> sim-time when it became dispatchable; consumed at
        #: assign time for the ``queue-wait`` span. Only kept while
        #: observing so the disabled path stays allocation-free.
        self.ready_at: Dict[TaskId, float] = (
            {bid: self.evq.now for bid in self.ready} if self.obs is not None else {}
        )

    # -- cost helpers ----------------------------------------------------------

    def _inner(self, bid: TaskId, node: NodeSpec) -> Tuple[float, float, int]:
        """(compute_seconds, busy_thread_seconds, n_subtasks) of one sub-task.

        Memoized per (block cost class, node spec, thread policy): two
        blocks with identical shape and per-cell cost profile schedule
        identically, which collapses a regular grid's thousands of blocks
        into a handful of thread-level simulations.
        """
        t = node.threads
        key = (
            self.problem.block_cost_class(self.partition, bid),
            t,
            node.flops_per_second,
            node.contention,
            round(node.task_overhead, 12),
            self.thread_policy_name,
        )
        cached = self._inner_memo.get(key)
        if cached is not None:
            return cached
        inner = self.partition.sub_partition(bid, self.thread_size)
        costs: Dict[TaskId, float] = {}
        # Conservative model: all t threads contend while the node works.
        rate = node.flops_per_second * node.thread_efficiency(t)
        for sub in inner.abstract.vertices():
            lr, lc = inner.block_ranges(sub)
            costs[sub] = self.problem.subblock_flops(self.partition, bid, lr, lc) / rate
        policy = make_policy(self.thread_policy_name, t, inner.grid.n_block_cols)
        makespan, busy, _ = simulate_level(
            inner.abstract, costs, t, policy, overhead=node.task_overhead
        )
        result = (makespan, busy, inner.n_blocks)
        self._inner_memo[key] = result
        return result

    # -- accounting ---------------------------------------------------------------

    def _account(self) -> None:
        """Accumulate parked-while-ready time since the previous event."""
        now = self.evq.now
        dt = now - self._last_account
        if dt > 0 and self.ready:
            parked = sum(1 for n in self.nodes if n.parked_since is not None)
            self.idle_while_ready += parked * dt
        self._last_account = now

    # -- protocol events -----------------------------------------------------------

    def _note_msg_fault(
        self, kind: str, bid: TaskId, epoch: int, k: int, mtype: str
    ) -> None:
        self.faults_injected += 1
        if self.obs is not None:
            self.obs.emit(
                f"msg-{kind}", bid, epoch=epoch, node=k, scope="message",
                type=mtype, endpoint=f"node{k}",
            )

    def _retire_node(self, k: int, kind: str, **data: object) -> None:
        """Take node ``k`` permanently out of service (death/blacklist)."""
        node = self.nodes[k]
        node.dead = True
        node.parked_since = None
        if self.obs is not None:
            self.obs.emit(kind, None, node=k, worker=k, scope="task", **data)

    def _node_idle(self, k: int) -> None:
        self._account()
        node = self.nodes[k]
        if node.dead:
            return
        death_point = self.config.worker_fault_plan.death_point(k)
        if death_point is not None and node.tasks_done >= death_point:
            # Worker-level fault: the node goes permanently silent between
            # tasks. Its live registrations (if any) time out and
            # redistribute; all nodes dead ends in a clean abort.
            self.faults_injected += 1
            self._retire_node(k, "worker-death", after_tasks=death_point)
            return
        if node.pending is not None:
            # Promote the prefetched task (its input already transferred).
            bid, epoch, xfer_start, xfer_done = node.pending
            node.pending = None
            node.parked_since = None
            if self.registered.get(bid) == epoch:
                self._begin_compute(k, bid, epoch, xfer_start, max(self.evq.now, xfer_done))
                self._try_prefetch(k)
                return
            # Cancelled (timed out) while waiting: fall through to fresh work.
        if self.config.batch_wave:
            self._dispatch_wave(k)
            return
        idx = self.policy.select_index(k, self.ready)
        picked: Optional[TaskId] = None if idx is None else self.ready.pop(idx)
        if picked is None:
            node.parked_since = self.evq.now
            return
        node.parked_since = None
        self._dispatch(k, picked)
        self._try_prefetch(k)

    def _reserve_transfer(self, k: int, bid: TaskId) -> Tuple[int, float, float]:
        """Register a dispatch and reserve its input transfer; returns
        (epoch, transfer_start, transfer_done)."""
        now = self.evq.now
        node = self.nodes[k]
        epoch = self.attempts.get(bid, 0)
        self.attempts[bid] = epoch + 1
        self.registered[bid] = epoch
        self.dispatched_to[bid] = k
        if self.sched.observing:
            ready_at = self.ready_at.pop(bid, None)
            if ready_at is not None:
                self.sched.record(
                    "queue-wait", bid, epoch, k, ts=now, t0=ready_at, t1=now,
                )
        if self.sched.enabled:
            self.sched.record("assign", bid, epoch, k, ts=now)
        if self.config.data_reuse:
            in_bytes = self.problem.cached_input_bytes(self.partition, bid, self.node_done[k])
        else:
            in_bytes = self.problem.input_bytes(self.partition, bid)
        in_bytes += MESSAGE_ENVELOPE_BYTES
        self.master_cpu_free = max(self.master_cpu_free, now) + self.cluster.master_overhead
        start = max(self.master_cpu_free, self.master_nic_free, node.nic_free)
        xfer = self.cluster.link.transfer_time(in_bytes)
        self.master_nic_free = start + xfer
        node.nic_free = start + xfer
        self.messages += 2  # idle signal + assignment
        self.bytes_to_slaves += in_bytes
        if self.sched.observing:
            # The input transfer occupies [start, start + xfer) on the
            # link — recorded as a reserved span in sim-time.
            self.sched.record(
                "send", bid, epoch, k, node=k, ts=start,
                t0=start, t1=start + xfer, nbytes=in_bytes,
            )
        # Overtime watch (Fig 10): fires relative to dispatch time.
        self.evq.at(
            now + self.config.task_timeout,
            lambda bid=bid, epoch=epoch: self._timeout(bid, epoch),
            label=("timeout", bid, epoch),
        )
        return epoch, start, start + xfer

    def _dispatch(self, k: int, bid: TaskId) -> None:
        epoch, start, xfer_done = self._reserve_transfer(k, bid)
        node = self.nodes[k]
        rule = None
        if self.config.message_fault_plan:
            rule = self.config.message_fault_plan.decide(
                "send", "TaskAssign", bid, node.sent_index, endpoint=k
            )
            node.sent_index += 1
        if rule is not None:
            self._note_msg_fault(rule.kind, bid, epoch, k, "TaskAssign")
            if rule.kind == "drop" or (
                rule.kind == "corrupt" and self.integrity.digest_on
            ):
                # The assignment never arrives — dropped outright, or
                # mutated with a now-stale digest that the slave verifies
                # and rejects. Either way the node stays free (idle again
                # once the wasted transfer slot passes) and the
                # registration rides the overtime check to redistribution.
                if rule.kind == "corrupt" and self.obs is not None:
                    self.obs.emit(
                        "digest-reject", bid, epoch=epoch, node=k,
                        scope="message", hop="assign",
                    )
                self.evq.at(xfer_done, lambda k=k: self._node_idle(k), label=("idle", k))
                return
            if rule.kind in ("corrupt", "bitflip"):
                # Undetected input mutation: ``corrupt`` with digests off
                # is consumed unverified; ``bitflip`` restamps a
                # self-consistent digest either way. The node computes on
                # garbage — its result will be wrong.
                self.live_taint[(bid, epoch)] = f"assign-{rule.kind}"
            if rule.kind == "delay":
                xfer_done += rule.delay
            elif rule.kind == "duplicate":
                # The slave computes the copy too, but its second result
                # is epoch-stale; one extra message models it.
                self.messages += 1
        self._begin_compute(k, bid, epoch, start, xfer_done)

    def _try_prefetch(self, k: int) -> None:
        """Overlap the next task's transfer with the running compute
        (one-deep, prefetch mode only; batching already ships the whole
        computable wave at once, so the two modes do not compose)."""
        if not self.config.prefetch or self.config.batch_wave:
            return
        node = self.nodes[k]
        if node.pending is not None or node.busy_until <= self.evq.now:
            return
        idx = self.policy.select_index(k, self.ready)
        if idx is None:
            return
        bid = self.ready.pop(idx)
        epoch, start, xfer_done = self._reserve_transfer(k, bid)
        node.pending = (bid, epoch, start, xfer_done)

    def _begin_compute(
        self, k: int, bid: TaskId, epoch: int, xfer_start: float, compute_start: float
    ) -> None:
        node = self.nodes[k]
        fault = self.config.fault_plan.lookup(bid, epoch)
        compute, busy, nsub = self._inner(bid, node.spec)
        compute += self.cluster.slave_overhead
        slow = self.config.worker_fault_plan.slow_factor(k)
        if slow > 1.0:
            compute *= slow
            if not node.slow_noted:
                node.slow_noted = True
                self.faults_injected += 1
                if self.obs is not None:
                    self.obs.emit(
                        "worker-slow", bid, epoch=epoch, node=k, worker=k,
                        scope="task", factor=slow,
                    )
        if fault is not None and fault.kind == "crash":
            crash_at = compute_start + 0.5 * compute
            node.busy_until = crash_at
            self.evq.at(crash_at, lambda k=k: self._node_idle(k), label=("idle", k))
        elif fault is not None and fault.kind == "hang":
            recover_at = compute_start + 2.0 * self.config.task_timeout
            node.busy_until = recover_at
            self.evq.at(recover_at, lambda k=k: self._node_idle(k), label=("idle", k))
        else:
            done = compute_start + compute
            node.busy_until = done
            if self.sched.observing:
                self.sched.record(
                    "compute", bid, epoch, k, node=k, ts=done,
                    t0=compute_start, t1=done,
                )
            self.busy_thread_seconds += busy
            self.n_subtasks += nsub
            # NIC reservation for the result transfer happens when compute
            # finishes, not now — reserving a future slot at dispatch time
            # would wrongly serialize every other node's input transfer
            # behind this task.
            self.evq.at(
                done,
                lambda bid=bid, epoch=epoch, k=k: self._compute_done(bid, epoch, k),
                label=("compute-done", bid, epoch, k),
            )

    # -- batched wavefront dispatch (``config.batch_wave``) -----------------------

    def _dispatch_wave(self, k: int) -> None:
        """Assign one BatchAssign-equivalent: up to ``max_batch`` eligible
        ready tasks in ONE modeled envelope and ONE input transfer.

        Per-subtask semantics are preserved exactly as in the real master:
        every element registers its own epoch, gets its own timeout watch,
        and commits (or faults) individually — only the link-model α term
        (one envelope, one master dispatch overhead, 2 messages for the
        whole wave instead of 2 per task) is amortized.
        """
        node = self.nodes[k]
        wave: List[TaskId] = []
        while len(wave) < self.config.max_batch:
            idx = self.policy.select_index(k, self.ready)
            if idx is None:
                break
            wave.append(self.ready.pop(idx))
        if not wave:
            node.parked_since = self.evq.now
            return
        node.parked_since = None
        now = self.evq.now
        in_bytes = MESSAGE_ENVELOPE_BYTES  # ONE envelope for the wave
        in_each: List[int] = []
        parts: List[Tuple[TaskId, int]] = []
        for bid in wave:
            epoch = self.attempts.get(bid, 0)
            self.attempts[bid] = epoch + 1
            self.registered[bid] = epoch
            self.dispatched_to[bid] = k
            parts.append((bid, epoch))
            if self.sched.observing:
                ready_at = self.ready_at.pop(bid, None)
                if ready_at is not None:
                    self.sched.record(
                        "queue-wait", bid, epoch, k, ts=now, t0=ready_at, t1=now,
                    )
            if self.sched.enabled:
                self.sched.record("assign", bid, epoch, k, ts=now)
            if self.config.data_reuse:
                nb = self.problem.cached_input_bytes(self.partition, bid, self.node_done[k])
            else:
                nb = self.problem.input_bytes(self.partition, bid)
            in_bytes += nb
            in_each.append(nb)
            self.evq.at(
                now + self.config.task_timeout,
                lambda bid=bid, epoch=epoch: self._timeout(bid, epoch),
                label=("timeout", bid, epoch),
            )
        # ONE dispatch overhead and ONE transfer for the whole wave.
        self.master_cpu_free = max(self.master_cpu_free, now) + self.cluster.master_overhead
        start = max(self.master_cpu_free, self.master_nic_free, node.nic_free)
        xfer = self.cluster.link.transfer_time(in_bytes)
        self.master_nic_free = start + xfer
        node.nic_free = start + xfer
        self.messages += 2  # idle signal + the batch assignment
        self.bytes_to_slaves += in_bytes
        if self.sched.observing:
            self.sched.record(
                "batch-assemble", None, -1, k, node=k, ts=now,
                t0=now, t1=now, n_tasks=len(parts),
            )
            for (bid, epoch), nb in zip(parts, in_each):
                self.sched.record(
                    "send", bid, epoch, k, node=k, ts=start,
                    t0=start, t1=start + xfer, nbytes=nb,
                )
        xfer_done = start + xfer
        rule = None
        if self.config.message_fault_plan:
            rule = self.config.message_fault_plan.decide(
                "send", "BatchAssign", wave[0], node.sent_index, endpoint=k
            )
            node.sent_index += 1
        if rule is not None:
            bid0, ep0 = parts[0]
            self._note_msg_fault(rule.kind, bid0, ep0, k, "BatchAssign")
            if rule.kind == "drop":
                # The whole envelope never arrives: every registration
                # rides the overtime check to redistribution.
                self.evq.at(xfer_done, lambda k=k: self._node_idle(k), label=("idle", k))
                return
            if rule.kind == "corrupt" and self.integrity.digest_on:
                # The slave verifies per-subtask digests and rejects only
                # the mutated element; the rest of the wave computes.
                if self.obs is not None:
                    self.obs.emit(
                        "digest-reject", bid0, epoch=ep0, node=k,
                        scope="message", hop="assign",
                    )
                parts = parts[1:]
                if not parts:
                    self.evq.at(
                        xfer_done, lambda k=k: self._node_idle(k), label=("idle", k)
                    )
                    return
            elif rule.kind in ("corrupt", "bitflip"):
                # Undetected input mutation of one element of the wave.
                self.live_taint[(bid0, ep0)] = f"assign-{rule.kind}"
            if rule.kind == "delay":
                xfer_done += rule.delay
            elif rule.kind == "duplicate":
                self.messages += 1
        self._begin_wave_compute(k, parts, xfer_done)

    def _begin_wave_compute(
        self, k: int, parts: List[Tuple[TaskId, int]], compute_start: float
    ) -> None:
        """Sequentially compute one assigned wave (per-subtask faults)."""
        node = self.nodes[k]
        slow = self.config.worker_fault_plan.slow_factor(k)
        t = compute_start
        survivors: List[Tuple[TaskId, int]] = []
        for bid, epoch in parts:
            fault = self.config.fault_plan.lookup(bid, epoch)
            compute, busy, nsub = self._inner(bid, node.spec)
            compute += self.cluster.slave_overhead
            if slow > 1.0:
                compute *= slow
                if not node.slow_noted:
                    node.slow_noted = True
                    self.faults_injected += 1
                    if self.obs is not None:
                        self.obs.emit(
                            "worker-slow", bid, epoch=epoch, node=k, worker=k,
                            scope="task", factor=slow,
                        )
            if fault is not None and fault.kind == "crash":
                # This element dies half-way and is skipped — the rest of
                # the wave still computes (per-subtask semantics); its
                # registration rides the overtime check.
                t += 0.5 * compute
                continue
            if fault is not None and fault.kind == "hang":
                # The element stalls past the deadline; skipped, recovered
                # by its own timeout like the single-dispatch hang.
                t += 2.0 * self.config.task_timeout
                continue
            if self.sched.observing:
                self.sched.record(
                    "compute", bid, epoch, k, node=k, ts=t + compute,
                    t0=t, t1=t + compute,
                )
            t += compute
            self.busy_thread_seconds += busy
            self.n_subtasks += nsub
            survivors.append((bid, epoch))
        node.busy_until = t
        if not survivors:
            self.evq.at(t, lambda k=k: self._node_idle(k), label=("idle", k))
            return
        self.evq.at(
            t,
            lambda: self._wave_done(k, survivors),
            label=("wave-done", k, survivors[0][0], survivors[0][1]),
        )

    def _wave_done(self, k: int, parts: List[Tuple[TaskId, int]]) -> None:
        """The wave finished computing: ship ONE BatchResult envelope."""
        self._account()
        node = self.nodes[k]
        lie_point = self.config.worker_fault_plan.lie_point(k)
        if lie_point is not None and node.tasks_done >= lie_point:
            # Past its lie point the node perturbs every element it
            # returns; each stays self-consistent on the wire.
            self.faults_injected += 1
            for bid, epoch in parts:
                self.live_taint[(bid, epoch)] = "worker-liar"
            if self.obs is not None:
                self.obs.emit(
                    "worker-liar", parts[0][0], epoch=parts[0][1], node=k,
                    worker=k, scope="task", after_tasks=lie_point,
                )
        out_bytes = MESSAGE_ENVELOPE_BYTES + sum(
            self.problem.output_bytes(self.partition, bid) for bid, _ in parts
        )
        send_start = max(self.evq.now, node.nic_free, self.master_nic_free)
        out_xfer = self.cluster.link.transfer_time(out_bytes)
        node.nic_free = send_start + out_xfer
        self.master_nic_free = send_start + out_xfer
        node.busy_until = send_start + out_xfer
        self.messages += 1  # ONE result envelope for the whole wave
        self.bytes_to_master += out_bytes
        arrive = send_start + out_xfer
        reject: Optional[Tuple[TaskId, int]] = None
        rule = None
        if self.config.message_fault_plan:
            rule = self.config.message_fault_plan.decide(
                "recv", "BatchResult", parts[0][0], node.recv_index, endpoint=k
            )
            node.recv_index += 1
        if rule is not None:
            bid0, ep0 = parts[0]
            self._note_msg_fault(rule.kind, bid0, ep0, k, "BatchResult")
            if rule.kind == "drop":
                # The whole envelope is lost; every element rides the
                # overtime check while the node serves on.
                self.evq.at(arrive, lambda k=k: self._node_idle(k), label=("idle", k))
                return
            if rule.kind == "corrupt":
                if self.integrity.digest_on:
                    # The master verifies per-subtask digests: the mutated
                    # element is rejected (charged requeue), the rest of
                    # the wave commits normally.
                    reject = (bid0, ep0)
                    parts = parts[1:]
                else:
                    self.live_taint[(bid0, ep0)] = "result-corrupt"
            elif rule.kind == "bitflip":
                self.live_taint[(bid0, ep0)] = "result-bitflip"
            if rule.kind == "delay":
                arrive += rule.delay
            elif rule.kind == "duplicate":
                self.messages += 1  # the echo lands element-wise stale
        self.evq.at(
            arrive,
            lambda: self._batch_arrival(k, parts, reject),
            label=("batch-result", k, parts[0][0] if parts else None),
        )

    def _batch_arrival(
        self,
        k: int,
        parts: List[Tuple[TaskId, int]],
        reject: Optional[Tuple[TaskId, int]] = None,
    ) -> None:
        """One BatchResult landed: commit every element, then go idle once."""
        self._account()
        if reject is not None:
            self._digest_reject_core(reject[0], reject[1], k)
        for bid, epoch in parts:
            self._commit_result(bid, epoch, k)
        self._node_idle(k)

    def _compute_done(self, bid: TaskId, epoch: int, k: int) -> None:
        """Compute finished on node ``k``: ship the result back (Fig 11 g/h)."""
        self._account()
        node = self.nodes[k]
        lie_point = self.config.worker_fault_plan.lie_point(k)
        if lie_point is not None and node.tasks_done >= lie_point:
            # The lying node perturbs its outputs *before* digesting, so
            # the result is self-consistent on the wire — only audit or
            # vote can convict it.
            self.faults_injected += 1
            self.live_taint[(bid, epoch)] = "worker-liar"
            if self.obs is not None:
                self.obs.emit(
                    "worker-liar", bid, epoch=epoch, node=k, worker=k,
                    scope="task", after_tasks=lie_point,
                )
        out_bytes = self.problem.output_bytes(self.partition, bid) + MESSAGE_ENVELOPE_BYTES
        send_start = max(self.evq.now, node.nic_free, self.master_nic_free)
        out_xfer = self.cluster.link.transfer_time(out_bytes)
        node.nic_free = send_start + out_xfer
        self.master_nic_free = send_start + out_xfer
        node.busy_until = send_start + out_xfer
        self.messages += 1
        self.bytes_to_master += out_bytes
        arrive = send_start + out_xfer
        rule = None
        if self.config.message_fault_plan:
            rule = self.config.message_fault_plan.decide(
                "recv", "TaskResult", bid, node.recv_index, endpoint=k
            )
            node.recv_index += 1
        if rule is not None:
            self._note_msg_fault(rule.kind, bid, epoch, k, "TaskResult")
            if rule.kind == "drop":
                # The result never reaches the master: the registration
                # rides the overtime check; the node itself serves on.
                self.evq.at(arrive, lambda k=k: self._node_idle(k), label=("idle", k))
                return
            if rule.kind == "corrupt":
                if self.integrity.digest_on:
                    # The master verifies the result digest on receive:
                    # reject, charge the retry budget, requeue at once —
                    # no overtime wait.
                    self.evq.at(
                        arrive,
                        lambda: self._digest_reject(bid, epoch, k),
                        label=("digest-reject", bid, epoch, k),
                    )
                    return
                self.live_taint[(bid, epoch)] = "result-corrupt"
            elif rule.kind == "bitflip":
                self.live_taint[(bid, epoch)] = "result-bitflip"
            if rule.kind == "delay":
                arrive += rule.delay
            elif rule.kind == "duplicate":
                self.messages += 1
                self.evq.at(
                    arrive,
                    lambda: self._result_echo(bid, epoch, k),
                    label=("result-echo", bid, epoch, k),
                )
        self.evq.at(
            arrive, lambda: self._result(bid, epoch, k), label=("result", bid, epoch, k)
        )

    def _result_echo(self, bid: TaskId, epoch: int, k: int) -> None:
        """The second copy of a duplicated result: always epoch-stale by
        the time it lands (the first copy deregistered the task)."""
        if self.registered.get(bid) != epoch and self.sched.enabled:
            self.sched.record("stale-drop", bid, epoch, k, node=k)

    def _digest_reject(self, bid: TaskId, epoch: int, k: int) -> None:
        """A mutated result whose digest went stale: the master rejects it
        at receive and requeues on the charged retry budget (mirroring the
        real master — a link corrupting the same task forever must abort,
        not livelock)."""
        self._account()
        self._digest_reject_core(bid, epoch, k)
        self._node_idle(k)

    def _digest_reject_core(self, bid: TaskId, epoch: int, k: int) -> None:
        """Reject one result without idling the node (shared between the
        single-result path and a batch arrival, which idles once at the
        end of the envelope)."""
        if self.registered.get(bid) == epoch:
            del self.registered[bid]
            self.digest_rejects += 1
            if self.obs is not None:
                self.obs.emit(
                    "digest-reject", bid, epoch=epoch, node=k,
                    scope="message", hop="result",
                )
            charged = self.attempts.get(bid, 0)
            if charged > self.config.max_retries + 1:
                self.failure = FaultToleranceExhausted(
                    f"sub-task {bid} rejected for digest mismatch after "
                    f"{charged} dispatches (simulated)"
                )
            else:
                self.faults += 1
                if self.sched.enabled:
                    self.sched.record("redistribute", bid, epoch)
                self._requeue(bid)

    def _result(self, bid: TaskId, epoch: int, k: int) -> None:
        self._account()
        self._commit_result(bid, epoch, k)
        self._node_idle(k)  # the node serves on (also after a stale drop)

    def _commit_result(self, bid: TaskId, epoch: int, k: int) -> None:
        """Land one result at the master: stale-drop or journal + commit +
        integrity check + ready-wake. Shared between the single-result
        path and a batch arrival; the caller idles the node afterwards."""
        if self.registered.get(bid) != epoch:
            if self.sched.enabled:
                self.sched.record("stale-drop", bid, epoch, k, node=k)
            return
        del self.registered[bid]
        taint = self.live_taint.pop((bid, epoch), None)
        if taint is None:
            for p in self.partition.abstract.predecessors(bid):
                if p in self.tainted_commits:
                    taint = "inherited"  # computed from wrong inputs
                    break
        if self.journal is not None:
            # Write-ahead of the (modeled) merge; the fsync'd append
            # occupies the master CPU for ``journal_latency`` sim-seconds.
            jbytes = self.journal.commit(bid, epoch, None)
            j0 = max(self.master_cpu_free, self.evq.now)
            self.master_cpu_free = j0 + self.config.journal_latency
            if self.obs is not None:
                # The modeled fsync'd append occupies [j0, j0 + latency)
                # on the master CPU, in sim-time.
                self.obs.emit(
                    "journal-write", bid, epoch=epoch, node=-1, scope="task",
                    t0=j0, t1=self.master_cpu_free, nbytes=jbytes,
                )
        self.committed[bid] = epoch
        if self.sched.enabled:
            if self.sched.observing:
                out_bytes = (
                    self.problem.output_bytes(self.partition, bid) + MESSAGE_ENVELOPE_BYTES
                )
                self.sched.record("result", bid, epoch, k, node=k, nbytes=out_bytes)
            # Before parser.complete so successors' assigns serialize
            # after this commit in the event log.
            self.sched.record("commit", bid, epoch, k)
        if self.journal is not None and self.journal.should_checkpoint():
            nbytes = self.journal.checkpoint(None, self.committed, dict(self.attempts))
            c0 = self.master_cpu_free
            self.master_cpu_free += self.config.journal_latency
            if self.obs is not None:
                self.obs.emit(
                    "checkpoint", None, node=-1, scope="task",
                    t0=c0, t1=self.master_cpu_free,
                    n_committed=len(self.committed), nbytes=nbytes,
                )
        self.nodes[k].tasks_done += 1
        self.node_done[k].add(bid)
        self.makespan = max(self.makespan, self.evq.now)
        if taint is not None:
            self.tainted_commits[bid] = taint
        fresh = self.parser.complete(bid)
        if fresh:
            self.ready.extend(fresh)
            if self.obs is not None:
                for nb in fresh:
                    self.ready_at[nb] = self.evq.now
        self._integrity_check(bid, epoch, k, taint)
        if self.ready:
            for j, node in enumerate(self.nodes):
                if node.parked_since is not None:
                    self._node_idle(j)
                else:
                    self._try_prefetch(j)

    # -- integrity (SDC model) ----------------------------------------------------

    def _integrity_check(self, bid: TaskId, epoch: int, k: int, taint) -> None:
        """Model the master's post-commit SDC defenses on one commit.

        Both defenses recompute/replicate from *committed* predecessor
        blocks, so they convict exactly the own-fault taints; inherited
        taint reproduces the same wrong values and passes undetected —
        which is why a conviction invalidates the whole committed
        dependent closure rather than one block.
        """
        own_fault = taint is not None and taint != "inherited"
        pol = self.integrity
        if pol.vote_on:
            # Vote model: ``vote_k`` replicas from distinct nodes, paid as
            # (vote_k - 1) extra assign/result round trips per commit;
            # replicas disagree exactly when this result is own-fault
            # wrong. (The real master's escalation-to-arbiter dance is
            # collapsed into the divergence verdict.)
            self.messages += 2 * (pol.vote_k - 1)
            self.votes_cast += pol.vote_k
            if own_fault:
                self.vote_divergences += 1
                if self.obs is not None:
                    self.obs.emit(
                        "vote-divergence", bid, epoch=epoch, node=k,
                        worker=k, scope="task",
                    )
                self._convict(bid, epoch, k)
            return
        if pol.audit_on and pol.should_audit(bid):
            # The audit recompute occupies the master CPU for one inner
            # makespan (the same deterministic sample as the real master).
            compute, _busy, _n = self._inner(bid, self.nodes[k].spec)
            self.master_cpu_free = (
                max(self.master_cpu_free, self.evq.now) + compute
            )
            if own_fault:
                self.audits_convicted += 1
                if self.obs is not None:
                    self.obs.emit(
                        "audit-convict", bid, epoch=epoch, node=k,
                        worker=k, scope="task",
                    )
                self._convict(bid, epoch, k)
            else:
                self.audits_passed += 1
                if self.obs is not None:
                    self.obs.emit(
                        "audit-pass", bid, epoch=epoch, node=k, worker=k,
                        scope="task",
                    )

    def _convict(self, bid: TaskId, epoch: int, k: int) -> None:
        """A proven-wrong commit: taint-recompute its closure and count
        the divergence against node ``k`` (quarantine past threshold)."""
        self._taint_invalidate(bid)
        n = self.divergence.get(k, 0) + 1
        self.divergence[k] = n
        if n >= self.integrity.quarantine_threshold and not self.nodes[k].dead:
            self.quarantined.append(k)
            self._retire_node(k, "quarantine", convictions=n)
            for tbid, ep in list(self.registered.items()):
                if self.dispatched_to.get(tbid) != k:
                    continue
                del self.registered[tbid]
                if self.sched.enabled:
                    self.sched.record("redistribute", tbid, ep)
                self._requeue(tbid)

    def _taint_invalidate(self, root: TaskId) -> None:
        """Invalidate ``root`` and its committed dependent closure, then
        requeue the recompute frontier (mirrors the real master's
        DAG-aware taint recompute, journal records included)."""
        pattern = self.partition.abstract
        closure = {root}
        stack = [root]
        while stack:
            v = stack.pop()
            for s in pattern.successors(v):
                if s in self.committed and s not in closure:
                    closure.add(s)
                    stack.append(s)
        order = [v for v in pattern.topological_order() if v in closure]
        if self.journal is not None:
            self.journal.invalidate(order)
            self.master_cpu_free = (
                max(self.master_cpu_free, self.evq.now)
                + self.config.journal_latency
            )
        for v in order:
            self.committed.pop(v, None)
            self.tainted_commits.pop(v, None)
        self.taint_recomputes += len(order)
        if self.obs is not None:
            self.obs.emit(
                "taint-invalidate", root, node=-1, scope="task",
                n_tainted=len(order),
            )
        # Live dispatches fed from a now-invalidated block were extracted
        # from tainted state: cancel them (their results land stale); the
        # parser re-emits them once their predecessors recommit.
        for tbid, ep in list(self.registered.items()):
            if any(p not in self.committed for p in pattern.predecessors(tbid)):
                del self.registered[tbid]
                if self.sched.enabled:
                    self.sched.record("redistribute", tbid, ep)
        frontier = self.parser.invalidate(order)
        self.ready = [
            t for t in self.ready
            if all(p in self.committed for p in pattern.predecessors(t))
        ]
        self.ready.extend(frontier)
        if self.obs is not None:
            for nb in frontier:
                self.ready_at[nb] = self.evq.now

    def _timeout(self, bid: TaskId, epoch: int) -> None:
        self._account()
        if self.registered.get(bid) != epoch:
            return  # completed in time
        del self.registered[bid]
        self._note_node_failure(self.dispatched_to.get(bid, -1))
        attempts = self.attempts[bid]
        if attempts > self.config.max_retries + 1:
            self.failure = FaultToleranceExhausted(
                f"sub-task {bid} failed {attempts} dispatches (simulated)"
            )
            return
        self.faults += 1
        if self.sched.enabled:
            self.sched.record("redistribute", bid, epoch)
        delay = 0.0
        if self.config.retry_backoff > 0:
            delay = min(
                self.config.retry_backoff * (2.0 ** max(0, attempts - 1)),
                self.config.retry_backoff_max,
            )
        if delay > 0:
            if self.obs is not None:
                self.obs.emit(
                    "backoff", bid, epoch=epoch, scope="task", delay=delay
                )
            self.evq.at(
                self.evq.now + delay,
                lambda bid=bid: self._requeue(bid),
                label=("requeue", bid),
            )
        else:
            self._requeue(bid)

    def _requeue(self, bid: TaskId) -> None:
        """Put a recovered sub-task back on offer and wake parked nodes."""
        self.ready.append(bid)
        if self.obs is not None:
            self.ready_at[bid] = self.evq.now
        for j, node in enumerate(self.nodes):
            if node.parked_since is not None:
                self._node_idle(j)
            else:
                self._try_prefetch(j)

    def _note_node_failure(self, k: int) -> None:
        """Blacklist node ``k`` past the failure threshold (never the last
        surviving node); its live dispatches re-queue immediately."""
        if self.config.blacklist_threshold is None or k < 0:
            return
        n = self.node_failures.get(k, 0) + 1
        self.node_failures[k] = n
        if n < self.config.blacklist_threshold or self.nodes[k].dead:
            return
        if sum(1 for nd in self.nodes if not nd.dead) <= 1:
            return  # degradation floor
        self.blacklisted.append(k)
        self._retire_node(k, "blacklist", failures=n)
        for bid, ep in list(self.registered.items()):
            if self.dispatched_to.get(bid) != k:
                continue
            del self.registered[bid]
            self.faults += 1
            if self.sched.enabled:
                self.sched.record("redistribute", bid, ep)
            self._requeue(bid)

    # -- driver -------------------------------------------------------------------------

    def execute(self) -> RunReport:
        import time as _time

        wall_start = _time.perf_counter()
        for k in range(len(self.nodes)):
            self.evq.at(0.0, lambda k=k: self._node_idle(k), label=("idle", k))
        try:
            self.evq.run()
            if self.failure is None and self.parser.is_done():
                if self.journal is not None:
                    self.journal.end()
        finally:
            # MasterCrash (the journal kill switch) and abort paths both
            # land here; the journal file must survive for `repro resume`.
            if self.journal is not None:
                self.journal.close()
        if self.failure is not None:
            raise self.failure
        if not self.parser.is_done():
            if any(n.dead for n in self.nodes):
                # Every path forward died with the nodes; the event queue
                # drained, which is the simulator's version of "no
                # progress" — abort cleanly, never silently stall.
                raise FaultToleranceExhausted(
                    f"simulation out of workers with {self.parser.n_remaining} "
                    f"sub-tasks left ({sum(1 for n in self.nodes if n.dead)} "
                    f"of {len(self.nodes)} nodes lost)"
                )
            raise SchedulerError(
                f"simulation stalled with {self.parser.n_remaining} sub-tasks left"
            )
        self.sched.check(self.partition.abstract, title=f"simulated-trace({self.problem.name})")
        if self.metrics is not None:
            self.metrics.counter("sim.messages").inc(self.messages)
            self.metrics.counter("sim.bytes_to_slaves").inc(self.bytes_to_slaves)
            self.metrics.counter("sim.bytes_to_master").inc(self.bytes_to_master)
            self.metrics.counter("sim.faults_recovered").inc(self.faults)
            for k, n in enumerate(self.nodes):
                self.metrics.counter("sim.tasks_completed", node=k).inc(n.tasks_done)
            self.metrics.gauge("sim.idle_while_ready").set(self.idle_while_ready)
            # Omniscient SDC verdict: taint that survived to the end is a
            # wrong answer the run never noticed. Emitted in the sim.*
            # namespace (not integrity.*) because the simulator knows it
            # even with integrity off — campaigns classify on it.
            self.metrics.counter("sim.undetected_corruptions").inc(
                len(self.tainted_commits)
            )
            if self.integrity.digest_on:
                self.metrics.counter("integrity.digest_rejects").inc(
                    self.digest_rejects
                )
                self.metrics.counter("integrity.audits_passed").inc(
                    self.audits_passed
                )
                self.metrics.counter("integrity.audits_convicted").inc(
                    self.audits_convicted
                )
                self.metrics.counter("integrity.tainted_recomputes").inc(
                    self.taint_recomputes
                )
                self.metrics.counter("integrity.votes_cast").inc(self.votes_cast)
                self.metrics.counter("integrity.vote_divergences").inc(
                    self.vote_divergences
                )
                self.metrics.counter("integrity.quarantined_workers").inc(
                    len(self.quarantined)
                )
        wall = _time.perf_counter() - wall_start
        total_threads = self.cluster.total_computing_threads
        events = self.obs.events() if self.obs is not None else None
        return RunReport(
            backend="simulated",
            scheduler=self.config.scheduler,
            algorithm=self.problem.name,
            nodes=self.cluster.total_nodes,
            threads_per_node=max(s.threads for s in self.cluster.compute_nodes),
            makespan=self.makespan,
            wall_time=wall,
            n_tasks=self.partition.n_blocks,
            n_subtasks=self.n_subtasks,
            messages=self.messages,
            bytes_to_slaves=self.bytes_to_slaves,
            bytes_to_master=self.bytes_to_master,
            faults_recovered=self.faults,
            tasks_per_worker={k: n.tasks_done for k, n in enumerate(self.nodes)},
            idle_while_ready=self.idle_while_ready,
            utilization=(
                self.busy_thread_seconds / (self.makespan * total_threads)
                if self.makespan > 0
                else 0.0
            ),
            total_flops=self.problem.total_flops(self.partition),
            total_cores=self.cluster.total_cores,
            blacklisted_workers=tuple(self.blacklisted),
            faults_injected=self.faults_injected,
            digest_rejects=self.digest_rejects,
            audits_convicted=self.audits_convicted,
            tainted_recomputes=self.taint_recomputes,
            quarantined_workers=tuple(self.quarantined),
            trace=to_gantt_trace(events) if self.config.trace and events is not None else None,
            events=events,
            metrics=self.metrics.snapshot() if self.metrics is not None else None,
        )


def run_simulated(
    problem: DPProblem, config: RunConfig, resume=None
) -> Tuple[None, RunReport]:
    """Simulate ``problem`` on ``config``'s cluster; no values are computed.

    ``resume`` replays a journal's committed prefix into the DAG parser
    (no state rebuild — the simulator computes no values) and continues
    the modeled schedule from the recovered frontier.
    """
    return None, _SimulatedRun(problem, config, resume).execute()


def simulated_serial_makespan(problem: DPProblem, config: RunConfig) -> float:
    """Simulated single-thread makespan of the same instance — the paper's
    speedup baseline (sequential program, no partitioning overheads)."""
    spec = config.cluster_spec().compute_nodes[0]
    pattern = problem.pattern()
    shape = getattr(pattern, "shape", None)
    if shape is not None:
        rows, cols = range(shape[0]), range(shape[1])
        flops = problem.region_flops(rows, cols)
    else:
        n = pattern.n  # triangular / chain
        flops = problem.region_flops(range(n), range(n), diagonal=True)
    return flops / spec.flops_per_second


def experiment_series(
    problem: DPProblem,
    nodes: int,
    cores: Sequence[int],
    **config_overrides,
) -> List[Tuple[int, RunReport]]:
    """Run ``Experiment_<nodes>_<Y>`` for each Y in ``cores``; skip
    infeasible Y (fewer computing threads than nodes)."""
    out: List[Tuple[int, RunReport]] = []
    for y in cores:
        try:
            config = RunConfig.experiment(nodes, y, **config_overrides)
        except Exception:
            continue
        _, report = run_simulated(problem, config)
        out.append((y, report))
    return out


def paper_core_range(nodes: int, max_ct: int = 11) -> List[int]:
    """The paper's Y values for X nodes: Y = 2X - 1 + ct * (X - 1), ct = 1..max_ct."""
    return [2 * nodes - 1 + ct * (nodes - 1) for ct in range(1, max_ct + 1)]
