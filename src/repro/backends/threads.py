"""Threads backend: real master/slave runtime inside one process.

Slave parts run on threads and talk to the master over queue channels.
This exercises every protocol and worker-pool code path with true
concurrency; because of CPython's GIL it demonstrates *correctness* of the
thread level rather than speedup (see DESIGN.md) — timing experiments use
the simulated backend.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.algorithms.problem import DPProblem
from repro.analysis.report import RunReport
from repro.chaos.channel import ChaosChannel
from repro.comm.transport import channel_pair
from repro.cluster.faults import IoPolicy
from repro.durable.degrade import JournalGuard
from repro.durable.journal import CommitJournal
from repro.obs import EventRecorder, MetricsRegistry, to_gantt_trace
from repro.runtime.config import RunConfig
from repro.runtime.master import MasterPart
from repro.runtime.slave import SlavePart
from repro.schedulers.policy import make_policy


def open_journal(
    config: RunConfig, problem: DPProblem, resume, obs=None
) -> Optional[JournalGuard]:
    """Shared backend helper: the run's write-ahead journal, if any.

    Fresh runs create (and ``begin``) the journal at ``journal_path``
    with the chaos kill switch armed; resumed runs reopen the recovered
    journal for append (truncating any torn tail) with the switch off.
    Either way the handle comes back wrapped in a
    :class:`~repro.durable.degrade.JournalGuard`, so every backend gets
    the same bounded retry-then-degrade ladder
    (``config.journal_degrade``) when a write hits ENOSPC/EIO — real or
    injected by ``config.io_fault_plan``.
    """
    io_policy = (
        IoPolicy(config.io_fault_plan, "journal") if config.io_fault_plan else None
    )
    if resume is not None:
        journal = CommitJournal.open_resume(
            resume.scan,
            fsync=config.journal_fsync,
            checkpoint_interval=config.checkpoint_interval,
            io_policy=io_policy,
        )
        return JournalGuard(
            journal,
            mode=config.journal_degrade,
            retries=config.journal_retries,
            job_id=config.run_id,
            obs=obs,
        )
    if config.journal_path is None:
        return None
    journal = CommitJournal.create(
        config.journal_path,
        fsync=config.journal_fsync,
        checkpoint_interval=config.checkpoint_interval,
        kill_after=config.journal_kill_after,
        kill_torn=config.journal_kill_torn,
        io_policy=io_policy,
    )
    guard = JournalGuard(
        journal,
        mode=config.journal_degrade,
        retries=config.journal_retries,
        job_id=config.run_id,
        obs=obs,
    )
    guard.begin(problem, config)
    return guard


def run_threads(
    problem: DPProblem, config: RunConfig, resume=None
) -> Tuple[Dict[str, np.ndarray], RunReport]:
    """Execute ``problem`` with ``config.n_slaves`` slave threads.

    ``resume`` (a :class:`~repro.durable.recovery.RecoveredRun`) continues
    a journaled run: committed sub-tasks are replayed into the DAG parser
    instead of re-dispatched.
    """
    proc_size, thread_size = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)
    policy = make_policy(
        config.scheduler,
        config.n_slaves,
        partition.grid.n_block_cols,
        block_cols=config.bcw_block_cols,
    )

    # One shared recorder/registry spans the master, the in-process
    # slaves, and the channel endpoints (wall-clock domain).
    recorder = EventRecorder() if config.observing else None
    metrics = MetricsRegistry() if config.observing else None

    stop = threading.Event()
    slaves = []
    master_channels = []
    for k in range(config.n_slaves):
        master_end, slave_end = channel_pair()
        if config.message_fault_plan:
            # The chaos wrapper becomes the master-side endpoint, so both
            # directions of this slave's traffic pass through it.
            master_end = ChaosChannel(
                master_end, config.message_fault_plan, endpoint_index=k
            )
        if recorder is not None:
            master_end.instrument(recorder, endpoint=f"slave{k}")
        master_channels.append(master_end)
        slaves.append(
            SlavePart(
                slave_id=k,
                channel=slave_end,
                problem=problem,
                partition=partition,
                thread_partition=thread_size,
                n_threads=config.threads_per_node,
                thread_scheduler=config.thread_scheduler,
                subtask_timeout=config.subtask_timeout,
                max_retries=config.max_retries,
                poll_interval=config.poll_interval,
                fault_plan=config.fault_plan,
                thread_fault_plan=config.thread_fault_plan,
                worker_fault_plan=config.worker_fault_plan,
                hang_duration=config.hang_duration,
                stop_event=stop,
                verify=config.verify,
                obs=recorder,
                heartbeat_interval=config.heartbeat_interval,
                integrity=config.integrity,
            )
        )
    journal = open_journal(config, problem, resume, obs=recorder)
    master = MasterPart(
        problem,
        partition,
        master_channels,
        policy,
        task_timeout=config.task_timeout,
        max_retries=config.max_retries,
        poll_interval=config.poll_interval,
        retry_backoff=config.retry_backoff,
        retry_backoff_max=config.retry_backoff_max,
        speculate=config.speculate,
        speculative_factor=config.speculative_factor,
        speculative_quantile=config.speculative_quantile,
        blacklist_threshold=config.blacklist_threshold,
        stall_timeout=config.effective_stall_timeout,
        verify=config.verify,
        obs=recorder,
        metrics=metrics,
        journal=journal,
        completed=resume.committed if resume is not None else None,
        initial_state=resume.state if resume is not None else None,
        attempts=resume.attempts if resume is not None else None,
        heartbeat_interval=config.heartbeat_interval,
        lease_factor=config.lease_factor,
        integrity=config.integrity,
        audit_fraction=config.audit_fraction,
        vote_k=config.vote_k,
        quarantine_threshold=config.quarantine_threshold,
        run_digest=resume.run_digest if resume is not None else None,
        commit_digests=resume.scan.commit_digests if resume is not None else None,
        # Batched wavefront dispatch works on any channel; the shm plane
        # (``config.shm``) is meaningless in-process and ignored here.
        batch_wave=config.batch_wave,
        max_batch=config.max_batch,
        job_id=config.run_id,
    )

    slave_threads = [
        threading.Thread(target=s.run, daemon=True, name=f"slave{s.slave_id}") for s in slaves
    ]
    started = time.perf_counter()
    for t in slave_threads:
        t.start()
    try:
        state = master.run()
    finally:
        stop.set()
        for t in slave_threads:
            t.join(timeout=10.0)
    elapsed = time.perf_counter() - started

    report = RunReport(
        backend="threads",
        scheduler=config.scheduler,
        algorithm=problem.name,
        nodes=config.nodes,
        threads_per_node=config.threads_per_node,
        makespan=elapsed,
        wall_time=elapsed,
        n_tasks=partition.n_blocks,
        n_subtasks=sum(s.stats.subtasks for s in slaves),
        messages=master.stats.messages,
        bytes_to_slaves=master.stats.bytes_to_slaves,
        bytes_to_master=master.stats.bytes_to_master,
        faults_recovered=master.stats.faults_recovered,
        thread_restarts=sum(s.stats.thread_restarts for s in slaves),
        stale_results=master.stats.stale_results,
        tasks_per_worker=dict(master.stats.tasks_per_worker),
        total_flops=problem.total_flops(partition),
        speculative_redispatches=master.stats.speculative_redispatches,
        blacklisted_workers=tuple(master.stats.blacklisted_workers),
        worker_leaks=master.stats.worker_leaks
        + int(sum(s.stats.extras.get("worker_leaks", 0) for s in slaves)),
        faults_injected=sum(
            getattr(ch, "faults_injected", 0) for ch in master_channels
        ),
        run_digest=master.stats.run_digest,
        digest_rejects=master.stats.digest_rejects,
        audits_convicted=master.stats.audits_convicted,
        tainted_recomputes=master.stats.tainted_recomputes,
        quarantined_workers=tuple(master.stats.quarantined_workers),
    )
    if recorder is not None:
        report.events = recorder.events()
        if metrics is not None:
            report.metrics = metrics.snapshot()
        if config.trace:
            report.trace = to_gantt_trace(report.events)
    return state, report
