"""``repro.chaos`` — deterministic fault campaigns for the runtime.

Three pieces (see ``docs/fault_tolerance.md``):

- **fault plans** (:mod:`repro.cluster.faults`) — seeded, order-independent
  task / message / worker fault models;
- **channel injection** (:mod:`repro.chaos.channel`) — a
  :class:`ChaosChannel` wrapping any transport endpoint to drop,
  duplicate, delay, or corrupt protocol messages;
- **campaigns** (:mod:`repro.chaos.campaign`) — N seeded runs per backend,
  each asserting the core invariant: *the DP result equals the serial
  oracle, or the run ends in a clean*
  :class:`~repro.utils.errors.FaultToleranceExhausted` — *never a hang,
  never a wrong answer* — with the :mod:`repro.check` trace invariants
  validated on every surviving run.

Drive from the CLI with ``repro chaos --seeds 20 --backend simulated
--backend threads``. Kill-master campaigns (``repro chaos
--kill-master-at 0.5``) crash the journaling master at a seeded commit,
``repro resume`` the write-ahead journal, and assert the resumed run is
oracle-identical with the :mod:`repro.check.durable_check` resume
invariants intact.
"""

from repro.chaos.campaign import (
    CampaignResult,
    CampaignSpec,
    RunOutcome,
    chaos_config,
    run_campaign,
)
from repro.chaos.channel import ChaosChannel
from repro.chaos.resources import DEGRADE_CYCLE
from repro.chaos.serve import (
    JobVerdict,
    ServeCampaignResult,
    ServeCampaignSpec,
    run_serve_campaign,
)
from repro.cluster.faults import (
    IO_FAULT_KINDS,
    IO_FAULT_OPS,
    MESSAGE_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    IoFaultPlan,
    IoFaultRule,
    IoPolicy,
    MessageFaultPlan,
    MessageFaultRule,
    WorkerFaultPlan,
    WorkerFaultRule,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "RunOutcome",
    "chaos_config",
    "run_campaign",
    "ChaosChannel",
    "JobVerdict",
    "ServeCampaignResult",
    "ServeCampaignSpec",
    "run_serve_campaign",
    "DEGRADE_CYCLE",
    "IO_FAULT_KINDS",
    "IO_FAULT_OPS",
    "IoFaultPlan",
    "IoFaultRule",
    "IoPolicy",
    "MESSAGE_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "MessageFaultPlan",
    "MessageFaultRule",
    "WorkerFaultPlan",
    "WorkerFaultRule",
]
