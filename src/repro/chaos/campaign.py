"""Deterministic fault campaigns: N seeded runs, one invariant.

A campaign replays the same DP instance under seeded fault plans across
backends and classifies every run:

- ``ok``                  — finished; state equals the serial oracle and
  the fault/recovery trace invariants hold;
- ``aborted``             — ended in a clean
  :class:`~repro.utils.errors.FaultToleranceExhausted` (the budget or
  every worker was genuinely exhausted — an *allowed* outcome);
- ``wrong-answer``        — finished with state differing from the oracle;
- ``invariant-violation`` — finished but the telemetry stream violates a
  fault-tolerance invariant (commit after blacklist, fault without
  reassign-or-abort);
- ``hang``                — neither finished nor aborted within the run
  deadline;
- ``error``               — any other exception escaped the runtime.

The campaign invariant is that only the first two ever occur. Fault
plans are pure functions of the seed (:mod:`repro.cluster.faults`), so a
failing seed replays exactly.

SDC mode (``sdc=True``, ``repro chaos --sdc``) swaps the fault mix for
the *silent* tier — lying workers (``worker_p_lie``) and digest-evading
``bitflip`` message mutations — and runs under the configured integrity
mode. Classification tightens accordingly: real-backend states still
diff against the serial oracle, the simulator's omniscient
``sim.undetected_corruptions`` counter classifies taint that survived to
the end as ``wrong-answer``, and the integrity invariants (no dispatch
after quarantine, every taint recomputed, no commit without digest
verification) join the fault invariants. Running the same seeds with
``integrity='off'`` demonstrates the failure the defenses exist for: the
campaign reports ``wrong-answer``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.faults import (
    DETECTABLE_MESSAGE_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultPlan,
    IoFaultPlan,
    MessageFaultPlan,
    WorkerFaultPlan,
)
from repro.runtime.config import RunConfig
from repro.utils.errors import ChaosError, FaultToleranceExhausted

#: Backends a campaign may exercise ("serial" is the oracle, not a target).
CAMPAIGN_BACKENDS = ("simulated", "threads", "processes")


@dataclass(frozen=True)
class CampaignSpec:
    """What one chaos campaign runs."""

    backends: Tuple[str, ...] = ("simulated", "threads")
    #: Seeded runs per backend; seeds are ``first_seed .. first_seed+seeds-1``.
    seeds: int = 10
    first_seed: int = 0
    #: DP instance under test (one instance, many fault seeds).
    algo: str = "edit-distance"
    size: int = 48
    problem_seed: int = 0
    #: Fault pressure per seed.
    message_p: float = 0.12
    worker_p_die: float = 0.2
    worker_p_slow: float = 0.2
    task_fault_p: float = 0.1
    #: Cluster shape of each run.
    nodes: int = 3
    threads_per_node: int = 2
    scheduler: str = "dynamic"
    #: Wall-clock deadline per run; exceeding it classifies as ``hang``.
    run_timeout: float = 60.0
    #: Kill-master mode: crash the master (in-process ``kill -9``
    #: equivalent at a commit boundary) at a seeded point within the
    #: first ``kill_master_at`` fraction of the run's commits, then
    #: ``repro resume`` the journal and assert the resumed run matches
    #: the oracle and the resume invariants. ``None`` disables.
    kill_master_at: Optional[float] = None
    #: SDC mode: inject the *silent* corruption tier (lying workers,
    #: digest-evading bitflips) and defend with ``integrity``. The other
    #: fault knobs above still apply on top. The campaign audits at
    #: fraction 1.0: sampled auditing is a *probabilistic* defense
    #: (unsampled lies survive), but the campaign invariant is a hard
    #: oracle-identical-or-abort guarantee, which only full coverage
    #: (audit 1.0, or vote) provides.
    sdc: bool = False
    integrity: str = "audit"
    worker_p_lie: float = 0.3
    audit_fraction: float = 1.0
    vote_k: int = 2
    quarantine_threshold: int = 3
    #: Data-plane knobs under fault pressure: batched wavefront dispatch
    #: (``BatchAssign``/``BatchResult`` envelopes become the fault
    #: surface) and the zero-copy shm block transport (leaked segments
    #: become a campaign invariant).
    batch_wave: bool = False
    max_batch: int = 8
    shm: bool = False
    #: Resource-exhaustion mode (``repro chaos --resources``): seeded
    #: I/O faults into journal appends/fsyncs and shm allocation, a
    #: journal in a temp dir, and the degrade ladder cycled per seed.
    #: See :mod:`repro.chaos.resources` for the contract.
    resources: bool = False
    io_p_write: float = 0.08
    io_p_fsync: float = 0.04
    io_p_shm: float = 0.15

    def __post_init__(self) -> None:
        from repro.integrity import INTEGRITY_MODES

        for b in self.backends:
            if b not in CAMPAIGN_BACKENDS:
                raise ChaosError(
                    f"campaign backend must be one of {CAMPAIGN_BACKENDS}, got {b!r}"
                )
        if self.seeds < 1:
            raise ChaosError(f"seeds must be >= 1, got {self.seeds}")
        if self.kill_master_at is not None and not (0.0 < self.kill_master_at <= 1.0):
            raise ChaosError(
                f"kill_master_at must be a fraction in (0, 1], got {self.kill_master_at}"
            )
        if self.resources and self.kill_master_at is not None:
            raise ChaosError(
                "resources mode and kill-master mode are separate campaigns; "
                "run them one at a time"
            )
        if self.integrity not in INTEGRITY_MODES:
            raise ChaosError(
                f"integrity must be one of {INTEGRITY_MODES}, got {self.integrity!r}"
            )


@dataclass
class RunOutcome:
    """Classification of one seeded run."""

    backend: str
    seed: int
    status: str  # ok | aborted | wrong-answer | invariant-violation | hang | error
    detail: str = ""
    faults_injected: int = 0
    faults_recovered: int = 0
    elapsed: float = 0.0
    #: Perfetto trace written for a failing run (``artifact_dir`` set).
    trace_path: Optional[str] = None

    @property
    def acceptable(self) -> bool:
        """True for the two outcomes the campaign invariant allows."""
        return self.status in ("ok", "aborted")


@dataclass
class CampaignResult:
    """All outcomes of one campaign."""

    spec: CampaignSpec
    outcomes: Tuple[RunOutcome, ...] = ()

    @property
    def ok(self) -> bool:
        return all(o.acceptable for o in self.outcomes)

    @property
    def failures(self) -> Tuple[RunOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.acceptable)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for o in self.outcomes:
            out[o.status] = out.get(o.status, 0) + 1
        return out

    def summary(self) -> str:
        lines = [
            f"chaos campaign: {self.spec.algo}-{self.spec.size}, "
            f"{self.spec.seeds} seeds x {list(self.spec.backends)}",
        ]
        for backend in self.spec.backends:
            runs = [o for o in self.outcomes if o.backend == backend]
            counts: Dict[str, int] = {}
            for o in runs:
                counts[o.status] = counts.get(o.status, 0) + 1
            injected = sum(o.faults_injected for o in runs)
            recovered = sum(o.faults_recovered for o in runs)
            parts = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
            lines.append(
                f"  {backend:10s}: {parts}  "
                f"({injected} faults injected, {recovered} recovered)"
            )
        for o in self.failures:
            where = f" [trace: {o.trace_path}]" if o.trace_path else ""
            lines.append(f"  FAIL {o.backend} seed {o.seed}: {o.status} — {o.detail}{where}")
        lines.append("invariant held" if self.ok else "INVARIANT VIOLATED")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ChaosError(self.summary())


def chaos_config(backend: str, seed: int, spec: CampaignSpec) -> RunConfig:
    """The :class:`RunConfig` of one seeded campaign run.

    Timeouts are tight (so injected faults are detected quickly) and the
    hardened recovery is on: exponential backoff, blacklisting with a
    one-survivor floor, and the stall watchdog. The simulated backend
    runs in sim-time, where the same knobs are cheap.
    """
    common = dict(
        nodes=spec.nodes,
        threads_per_node=spec.threads_per_node,
        backend=backend,
        scheduler=spec.scheduler,
        process_partition=(max(4, spec.size // 4), max(4, spec.size // 4)),
        thread_partition=(max(2, spec.size // 8), max(2, spec.size // 8)),
        max_retries=8,
        fault_plan=(
            FaultPlan.random(spec.task_fault_p, seed=seed, kind=("crash", "hang"))
            if spec.task_fault_p > 0
            else FaultPlan.none()
        ),
        message_fault_plan=(
            MessageFaultPlan.random(
                spec.message_p,
                seed=seed,
                # SDC mode adds the digest-evading tier to the draw.
                kinds=MESSAGE_FAULT_KINDS if spec.sdc else DETECTABLE_MESSAGE_KINDS,
            )
            if spec.message_p > 0
            else MessageFaultPlan.none()
        ),
        worker_fault_plan=(
            WorkerFaultPlan.random(
                p_die=spec.worker_p_die,
                p_slow=spec.worker_p_slow,
                p_lie=spec.worker_p_lie if spec.sdc else 0.0,
                seed=seed,
            )
            if (
                spec.worker_p_die > 0
                or spec.worker_p_slow > 0
                or (spec.sdc and spec.worker_p_lie > 0)
            )
            else WorkerFaultPlan.none()
        ),
        io_fault_plan=(
            IoFaultPlan.random(
                p_write=spec.io_p_write,
                p_fsync=spec.io_p_fsync,
                p_shm=spec.io_p_shm,
                seed=seed,
            )
            if spec.resources
            else IoFaultPlan.none()
        ),
        blacklist_threshold=4,
        retry_backoff=0.01,
        retry_backoff_max=0.25,
        observe=True,
        batch_wave=spec.batch_wave,
        max_batch=spec.max_batch,
        shm=spec.shm,
    )
    if spec.sdc:
        common.update(
            integrity=spec.integrity,
            audit_fraction=spec.audit_fraction,
            vote_k=spec.vote_k,
            quarantine_threshold=spec.quarantine_threshold,
        )
    if backend == "simulated":
        return RunConfig(task_timeout=5.0, subtask_timeout=5.0, **common)
    return RunConfig(
        task_timeout=0.75,
        subtask_timeout=2.0,
        hang_duration=1.5,
        poll_interval=0.01,
        **common,
    )


def _oracle_state(spec: CampaignSpec) -> Optional[Dict[str, np.ndarray]]:
    """Serial-backend state of the campaign's instance (the ground truth)."""
    from repro.runtime.system import EasyHPS

    problem = _build_problem(spec)
    run = EasyHPS(RunConfig(backend="serial")).run(problem)
    return run.state


def _build_problem(spec: CampaignSpec):
    from repro.cli import ALGORITHMS, _register_algorithms

    _register_algorithms()
    try:
        factory = ALGORITHMS[spec.algo]
    except KeyError:
        raise ChaosError(
            f"unknown algorithm {spec.algo!r}; choose from {', '.join(sorted(ALGORITHMS))}"
        ) from None
    return factory(spec.size, spec.problem_seed)


def _states_equal(
    oracle: Dict[str, np.ndarray], state: Dict[str, np.ndarray]
) -> Optional[str]:
    """None when equal, else a human-readable first difference."""
    if set(oracle) != set(state):
        return f"state keys differ: {sorted(oracle)} vs {sorted(state)}"
    for key in sorted(oracle):
        if not np.array_equal(np.asarray(oracle[key]), np.asarray(state[key])):
            bad = int(np.sum(np.asarray(oracle[key]) != np.asarray(state[key])))
            return f"state[{key!r}] differs from oracle in {bad} cells"
    return None


def _execute_one(
    spec: CampaignSpec, backend: str, seed: int, oracle, artifact_dir: Optional[str]
) -> RunOutcome:
    from repro.runtime.system import EasyHPS

    config = chaos_config(backend, seed, spec)
    if backend == "processes" and spec.shm:
        # Key this run's segments by a run id so the leak check below
        # inspects exactly this run's namespace — a pid-keyed prefix
        # would collide with every other shm run this process hosts
        # (parallel campaigns, the serve daemon's concurrent jobs).
        from dataclasses import replace as _replace

        config = _replace(
            config, run_id=f"chaos-{backend}-s{seed}-p{os.getpid()}"
        )
    problem = _build_problem(spec)
    box: Dict[str, object] = {}

    def target() -> None:
        try:
            box["run"] = EasyHPS(config).run(problem)
        except BaseException as exc:  # classified below, never swallowed
            box["exc"] = exc

    started = time.perf_counter()
    t = threading.Thread(target=target, daemon=True, name=f"chaos-{backend}-{seed}")
    t.start()
    t.join(timeout=spec.run_timeout)
    elapsed = time.perf_counter() - started

    if t.is_alive():
        # The one outcome the design promises cannot happen. The runner
        # abandons the daemon thread and reports it.
        return RunOutcome(
            backend, seed, "hang",
            detail=f"run exceeded {spec.run_timeout}s deadline", elapsed=elapsed,
        )
    if backend == "processes" and spec.shm:
        # Segment-leak invariant: however the run settled — committed,
        # aborted mid-wave, or errored — the teardown sweep must have
        # reclaimed every block segment this master parked. (The hang
        # path above legitimately still holds segments, so it returns
        # before this check.)
        from repro.comm.shm import leaked_segments, run_prefix, sweep_segments

        prefix = run_prefix(config.run_id)
        leaks = leaked_segments(prefix)
        if leaks:
            sweep_segments(prefix)  # don't poison later seeds
            return RunOutcome(
                backend, seed, "invariant-violation",
                detail=f"{len(leaks)} shm segments leaked: {leaks[:3]}",
                elapsed=elapsed,
            )
    exc = box.get("exc")
    if isinstance(exc, FaultToleranceExhausted):
        return RunOutcome(
            backend, seed, "aborted", detail=str(exc)[:200], elapsed=elapsed
        )
    if exc is not None:
        return RunOutcome(
            backend, seed, "error",
            detail=f"{type(exc).__name__}: {exc}"[:200], elapsed=elapsed,
        )

    run = box["run"]
    report = run.report
    outcome = RunOutcome(
        backend, seed, "ok",
        faults_injected=report.faults_injected,
        faults_recovered=report.faults_recovered,
        elapsed=elapsed,
    )
    if run.state is not None and oracle is not None:
        diff = _states_equal(oracle, run.state)
        if diff is not None:
            outcome.status, outcome.detail = "wrong-answer", diff
    if outcome.status == "ok" and backend == "simulated" and report.metrics:
        # The simulator computes no values to diff; its omniscient taint
        # counter is the wrong-answer verdict instead.
        undetected = report.metrics.get("counters", {}).get(
            "sim.undetected_corruptions", 0
        )
        if undetected:
            outcome.status = "wrong-answer"
            outcome.detail = (
                f"{int(undetected)} corrupted commits survived undetected "
                "(simulated taint)"
            )
    if outcome.status == "ok" and report.events is not None:
        from repro.check.chaos_check import check_fault_invariants
        from repro.check.integrity_check import check_integrity_invariants

        check = check_fault_invariants(report.events, aborted=False)
        check.extend(
            check_integrity_invariants(
                report.events, metrics=report.metrics, aborted=False
            )
        )
        if not check.ok:
            outcome.status = "invariant-violation"
            outcome.detail = "; ".join(
                f"[{d.code}] {d.message}" for d in check.diagnostics
            )[:300]
    if not outcome.acceptable and artifact_dir and report.events is not None:
        from repro.obs import write_trace

        os.makedirs(artifact_dir, exist_ok=True)
        path = os.path.join(artifact_dir, f"chaos-{backend}-seed{seed}.trace.json")
        write_trace(
            path, report.events, metrics=report.metrics,
            meta={"backend": backend, "seed": seed, "status": outcome.status},
        )
        outcome.trace_path = path
    return outcome


def _run_boxed(spec: CampaignSpec, name: str, fn: Callable[[], object]) -> Dict[str, object]:
    """Run ``fn`` on a watchdogged daemon thread; ``{"run": ...}`` or
    ``{"exc": ...}``, or ``{}`` on deadline (the ``hang`` outcome)."""
    box: Dict[str, object] = {}

    def target() -> None:
        try:
            box["run"] = fn()
        except BaseException as exc:  # classified by the caller
            box["exc"] = exc

    t = threading.Thread(target=target, daemon=True, name=name)
    t.start()
    t.join(timeout=spec.run_timeout)
    if t.is_alive():
        box.clear()
    return box


def _execute_kill_master(
    spec: CampaignSpec, backend: str, seed: int, oracle, artifact_dir: Optional[str]
) -> RunOutcome:
    """One kill-master run: crash at a seeded commit, resume, verify.

    Phase 1 journals the run with the kill switch armed at commit
    ``1 + U[0, P * n_tasks)`` (pure function of the seed) and expects a
    :class:`~repro.utils.errors.MasterCrash`. Phase 2 recovers the
    journal, resumes, and requires the resumed state to equal the serial
    oracle (real backends) and the resume invariants to hold over the
    resumed telemetry stream (all backends, including simulated where no
    state exists to diff).
    """
    import shutil
    import tempfile
    from dataclasses import replace

    from repro.runtime.system import EasyHPS
    from repro.utils.errors import MasterCrash

    problem = _build_problem(spec)
    config = chaos_config(backend, seed, spec)
    proc_size, _ = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)
    rng = np.random.default_rng([seed, spec.problem_seed, 0xD1E])
    ceiling = max(1, int(round(partition.n_blocks * spec.kill_master_at)))
    kill_after = 1 + int(rng.integers(0, ceiling))
    tmp = tempfile.mkdtemp(prefix=f"chaos-kill-{backend}-{seed}-")
    journal_path = os.path.join(tmp, "master.journal")
    config = replace(
        config,
        journal_path=journal_path,
        journal_fsync=False,
        journal_kill_after=kill_after,
        checkpoint_interval=max(2, kill_after // 2),
    )

    started = time.perf_counter()
    detail = f"killed at commit {kill_after}/{partition.n_blocks}"

    def fail(status: str, why: str, trace_events=None) -> RunOutcome:
        out = RunOutcome(
            backend, seed, status, detail=f"{detail}; {why}"[:300],
            elapsed=time.perf_counter() - started,
        )
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            kept = os.path.join(
                artifact_dir, f"kill-{backend}-seed{seed}.journal"
            )
            if os.path.exists(journal_path):
                shutil.copyfile(journal_path, kept)
                out.detail = f"{out.detail} [journal: {kept}]"[:300]
            if trace_events is not None:
                from repro.obs import write_trace

                path = os.path.join(
                    artifact_dir, f"kill-{backend}-seed{seed}.trace.json"
                )
                write_trace(
                    path, trace_events,
                    meta={"backend": backend, "seed": seed, "status": status},
                )
                out.trace_path = path
        shutil.rmtree(tmp, ignore_errors=True)
        return out

    # Phase 1: run until the kill switch fires at the chosen commit.
    box = _run_boxed(
        spec, f"chaos-kill-{backend}-{seed}",
        lambda: EasyHPS(config).run(problem),
    )
    if not box:
        return fail("hang", f"phase 1 exceeded {spec.run_timeout}s deadline")
    exc = box.get("exc")
    if isinstance(exc, FaultToleranceExhausted):
        # Fault pressure exhausted the budget before the kill point — an
        # allowed outcome; nothing to resume.
        shutil.rmtree(tmp, ignore_errors=True)
        return RunOutcome(
            backend, seed, "aborted", detail=f"{detail}; pre-kill abort: {exc}"[:300],
            elapsed=time.perf_counter() - started,
        )
    if not isinstance(exc, MasterCrash):
        why = (
            f"{type(exc).__name__}: {exc}" if exc is not None
            else "kill switch never fired (run finished)"
        )
        return fail("error", f"phase 1: {why}")

    # Phase 2: recover the journal and resume to completion.
    from repro.durable import recover

    try:
        rec = recover(journal_path)
    except Exception as exc2:
        return fail("error", f"recover: {type(exc2).__name__}: {exc2}")
    box = _run_boxed(
        spec, f"chaos-resume-{backend}-{seed}",
        lambda: EasyHPS(rec.config).run(rec.problem, resume=rec),
    )
    if not box:
        return fail("hang", f"resume exceeded {spec.run_timeout}s deadline")
    exc = box.get("exc")
    if isinstance(exc, FaultToleranceExhausted):
        shutil.rmtree(tmp, ignore_errors=True)
        return RunOutcome(
            backend, seed, "aborted", detail=f"{detail}; resume aborted: {exc}"[:300],
            elapsed=time.perf_counter() - started,
        )
    if exc is not None:
        return fail("error", f"resume: {type(exc).__name__}: {exc}")

    run = box["run"]
    report = run.report
    if run.state is not None and oracle is not None:
        diff = _states_equal(oracle, run.state)
        if diff is not None:
            return fail("wrong-answer", diff, trace_events=report.events)
    if report.events is not None:
        from repro.check.durable_check import check_resume_invariants

        check = check_resume_invariants(
            report.events, rec.scan.committed, pattern=partition.abstract
        )
        if not check.ok:
            why = "; ".join(f"[{d.code}] {d.message}" for d in check.diagnostics)
            return fail("invariant-violation", why, trace_events=report.events)
    shutil.rmtree(tmp, ignore_errors=True)
    return RunOutcome(
        backend, seed, "ok", detail=detail,
        faults_injected=report.faults_injected,
        faults_recovered=report.faults_recovered,
        elapsed=time.perf_counter() - started,
    )


def run_campaign(
    spec: CampaignSpec,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable[[RunOutcome], None]] = None,
) -> CampaignResult:
    """Run the campaign; failing runs dump Perfetto traces to
    ``artifact_dir`` (when set). Raises nothing — inspect the result (or
    call :meth:`CampaignResult.raise_if_failed`)."""
    oracle = _oracle_state(spec)
    if spec.kill_master_at is not None:
        execute = _execute_kill_master
    elif spec.resources:
        from repro.chaos.resources import _execute_resource

        execute = _execute_resource
    else:
        execute = _execute_one
    outcomes: List[RunOutcome] = []
    for backend in spec.backends:
        for i in range(spec.seeds):
            outcome = execute(
                spec, backend, spec.first_seed + i, oracle, artifact_dir
            )
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    return CampaignResult(spec=spec, outcomes=tuple(outcomes))
