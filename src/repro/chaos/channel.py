"""Message-fault injection at the transport boundary.

:class:`ChaosChannel` wraps one :class:`~repro.comm.transport.Channel`
endpoint (by convention the *master-side* end of a master<->slave
connection) and applies a :class:`~repro.cluster.faults.MessageFaultPlan`
to the traffic flowing through it:

- ``drop``      — the message vanishes in transit;
- ``duplicate`` — the message is delivered twice;
- ``delay``     — delivery is held back ``rule.delay`` seconds
  (receive side only; the protocol's poll loops pick it up late);
- ``corrupt``   — one payload byte is flipped and the content digest left
  stale: the receiver's integrity check
  (:func:`repro.comm.serialization.content_digest`) detects the mismatch
  and discards the message, so observably it is a drop — but the verify
  code actually runs. When the run's integrity mode is ``off`` (no
  digest stamped) the mutation flows through undetected;
- ``bitflip``   — one payload byte is flipped *and the digest restamped*
  to match (corruption upstream of the checksum): never caught at
  receive, only by semantic defenses (audit recompute / voting).

Multiple explicit rules matching the same message compose in rule order —
a duplicate+delay message is delivered twice, late.

Faults never raise into the runtime — the protocol must survive them via
timeouts, epochs, redistribution, and the integrity layer, which is
exactly what the chaos campaign asserts. Every injected fault emits a
``msg-*`` event on the endpoint's instrumented recorder and counts toward
per-endpoint ``chaos.*`` metrics.

The wrapper is deliberately protocol-agnostic: it never inspects message
semantics beyond the class name and optional ``task_id`` used for rule
matching.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import replace
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.cluster.faults import MessageFaultPlan
from repro.comm.messages import BatchAssign, BatchResult, Message, TaskAssign, TaskResult
from repro.comm.transport import Channel, ChannelTimeout, DelegatingChannel


class ChaosChannel(DelegatingChannel):
    """A channel endpoint with seeded message-fault injection."""

    def __init__(
        self,
        inner: Channel,
        plan: MessageFaultPlan,
        *,
        endpoint_index: int = 0,
    ) -> None:
        super().__init__(inner)
        self.plan = plan
        self.endpoint_index = endpoint_index
        #: Injection counters, by fault kind.
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.corrupted = 0
        self.bitflipped = 0
        self._sent_index = 0
        self._recv_index = 0
        #: Messages already received but held back by a ``delay`` fault:
        #: (ready_at, tiebreak, message).
        self._held: List[Tuple[float, int, Message]] = []
        #: Extra copies queued by a ``duplicate`` fault on the recv side.
        self._dup_queue: Deque[Message] = deque()
        self._held_seq = 0

    # -- fault bookkeeping -----------------------------------------------------

    def _note(self, kind: str, msg: Message) -> None:
        counter = {
            "drop": "dropped",
            "duplicate": "duplicated",
            "delay": "delayed",
            "corrupt": "corrupted",
            "bitflip": "bitflipped",
        }[kind]
        setattr(self, counter, getattr(self, counter) + 1)
        if self._obs.enabled:
            self._obs.emit(
                f"msg-{kind}",
                getattr(msg, "task_id", None),
                epoch=getattr(msg, "epoch", -1),
                node=getattr(self, "_obs_node", -1),
                scope="message",
                type=type(msg).__name__,
                endpoint=self.endpoint,
            )

    def publish_metrics(self, registry) -> None:
        super().publish_metrics(registry)
        label = self.endpoint or "channel"
        registry.counter("chaos.messages_dropped", endpoint=label).inc(self.dropped)
        registry.counter("chaos.messages_duplicated", endpoint=label).inc(self.duplicated)
        registry.counter("chaos.messages_delayed", endpoint=label).inc(self.delayed)
        registry.counter("chaos.messages_corrupted", endpoint=label).inc(self.corrupted)
        registry.counter("chaos.messages_bitflipped", endpoint=label).inc(self.bitflipped)

    @property
    def faults_injected(self) -> int:
        return (
            self.dropped + self.duplicated + self.delayed
            + self.corrupted + self.bitflipped
        )

    # -- payload mutation ------------------------------------------------------

    def _mutate_payload(self, msg: Message, restamp: bool) -> Optional[Message]:
        """Flip one byte of the message's first array payload.

        ``restamp`` (the ``bitflip`` kind) recomputes the content digest
        over the mutated payload so receive-side verification passes —
        corruption upstream of the checksum. Without it (``corrupt``) the
        stamped digest goes stale and the receiver detects the mismatch.
        Returns None when the message carries no array bytes to flip (a
        bare signal or an empty input set); the caller degrades the fault
        to a drop.
        """
        if isinstance(msg, (BatchAssign, BatchResult)):
            # A batch envelope corrupts like a wire frame would: one byte
            # in one element. Mutate the first element that carries array
            # bytes (its own digest goes stale / is restamped); the other
            # elements of the wave pass verification untouched.
            field_name = "assigns" if isinstance(msg, BatchAssign) else "results"
            parts = getattr(msg, field_name)
            for i, part in enumerate(parts):
                mutated_part = self._mutate_payload(part, restamp)
                if mutated_part is not None:
                    return replace(
                        msg,
                        **{field_name: parts[:i] + (mutated_part,) + parts[i + 1:]},
                    )
            return None
        if isinstance(msg, TaskAssign):
            field_name = "inputs"
        elif isinstance(msg, TaskResult):
            field_name = "outputs"
        else:
            return None
        payload = getattr(msg, field_name)
        flipped = False
        mutated = {}
        for key, value in payload.items():
            if not flipped and isinstance(value, np.ndarray) and value.size:
                raw = bytearray(np.ascontiguousarray(value).tobytes())
                raw[0] ^= 0xFF
                mutated[key] = (
                    np.frombuffer(bytes(raw), dtype=value.dtype)
                    .reshape(value.shape)
                    .copy()
                )
                flipped = True
            else:
                mutated[key] = value
        if not flipped:
            return None
        fields = {field_name: mutated}
        if restamp and msg.digest is not None:
            from repro.comm.serialization import content_digest

            fields["digest"] = content_digest(mutated)
        return replace(msg, **fields)

    # -- transport hooks -------------------------------------------------------

    def _send(self, msg: Message) -> None:
        index = self._sent_index
        self._sent_index += 1
        rules = self.plan.decide_all(
            "send", type(msg).__name__, getattr(msg, "task_id", None), index,
            endpoint=self.endpoint_index,
        )
        if not rules:
            super()._send(msg)
            return
        copies = 1
        for rule in rules:
            self._note(rule.kind, msg)
            if rule.kind == "drop":
                return  # lost in transit
            if rule.kind in ("corrupt", "bitflip"):
                mutated = self._mutate_payload(msg, restamp=rule.kind == "bitflip")
                if mutated is None:
                    return  # no payload bytes to flip: degrade to a drop
                msg = mutated
            elif rule.kind == "duplicate":
                copies += 1
            else:
                # delay: hold the sender briefly, then deliver. Send-side
                # delay stalls only this endpoint's service thread, which
                # is precisely a slow link's observable behaviour.
                time.sleep(min(rule.delay, 1.0))
        for _ in range(copies):
            super()._send(msg)

    def _recv(self, timeout: Optional[float]) -> Message:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._dup_queue:
                return self._dup_queue.popleft()
            now = time.monotonic()
            if self._held and self._held[0][0] <= now:
                return heapq.heappop(self._held)[2]
            # Wait bounded by the deadline and the next held message.
            wait: Optional[float] = None
            if deadline is not None:
                wait = deadline - now
            if self._held:
                until_held = self._held[0][0] - now
                wait = until_held if wait is None else min(wait, until_held)
            if wait is not None and wait <= 0:
                if deadline is not None and now >= deadline:
                    raise ChannelTimeout(f"no message within {timeout}s")
                continue  # a held message just became ready
            try:
                msg = super()._recv(wait)
            except ChannelTimeout:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                continue
            index = self._recv_index
            self._recv_index += 1
            rules = self.plan.decide_all(
                "recv", type(msg).__name__, getattr(msg, "task_id", None), index,
                endpoint=self.endpoint_index,
            )
            if not rules:
                return msg
            copies = 1
            hold = 0.0
            lost = False
            for rule in rules:
                self._note(rule.kind, msg)
                if rule.kind == "drop":
                    lost = True  # vanished in transit
                    break
                if rule.kind in ("corrupt", "bitflip"):
                    mutated = self._mutate_payload(
                        msg, restamp=rule.kind == "bitflip"
                    )
                    if mutated is None:
                        lost = True  # no payload bytes to flip: degrade to drop
                        break
                    msg = mutated
                elif rule.kind == "duplicate":
                    copies += 1
                else:
                    hold += rule.delay
            if lost:
                continue  # keep waiting within the deadline
            if hold > 0.0:
                # delay: park every copy and keep serving other traffic.
                for _ in range(copies):
                    self._held_seq += 1
                    heapq.heappush(self._held, (now + hold, self._held_seq, msg))
                continue
            for _ in range(copies - 1):
                self._dup_queue.append(msg)
            return msg

    def __repr__(self) -> str:
        return (
            f"ChaosChannel({self.inner!r}, faults={self.faults_injected}, "
            f"plan={self.plan!r})"
        )
