"""Message-fault injection at the transport boundary.

:class:`ChaosChannel` wraps one :class:`~repro.comm.transport.Channel`
endpoint (by convention the *master-side* end of a master<->slave
connection) and applies a :class:`~repro.cluster.faults.MessageFaultPlan`
to the traffic flowing through it:

- ``drop``      — the message vanishes in transit;
- ``duplicate`` — the message is delivered twice;
- ``delay``     — delivery is held back ``rule.delay`` seconds
  (receive side only; the protocol's poll loops pick it up late);
- ``corrupt``   — the payload is damaged *in a detected way*: the
  checksum mismatch makes the receiver discard it, so observably it is a
  drop with a distinct telemetry kind.

Faults never raise into the runtime — the protocol must survive them via
timeouts, epochs, and redistribution, which is exactly what the chaos
campaign asserts. Every injected fault emits a ``msg-*`` event on the
endpoint's instrumented recorder and counts toward per-endpoint
``chaos.*`` metrics.

The wrapper is deliberately protocol-agnostic: it never inspects message
semantics beyond the class name and optional ``task_id`` used for rule
matching.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.cluster.faults import MessageFaultPlan
from repro.comm.messages import Message
from repro.comm.transport import Channel, ChannelTimeout, DelegatingChannel


class ChaosChannel(DelegatingChannel):
    """A channel endpoint with seeded message-fault injection."""

    def __init__(
        self,
        inner: Channel,
        plan: MessageFaultPlan,
        *,
        endpoint_index: int = 0,
    ) -> None:
        super().__init__(inner)
        self.plan = plan
        self.endpoint_index = endpoint_index
        #: Injection counters, by fault kind.
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.corrupted = 0
        self._sent_index = 0
        self._recv_index = 0
        #: Messages already received but held back by a ``delay`` fault:
        #: (ready_at, tiebreak, message).
        self._held: List[Tuple[float, int, Message]] = []
        #: Extra copies queued by a ``duplicate`` fault on the recv side.
        self._dup_queue: Deque[Message] = deque()
        self._held_seq = 0

    # -- fault bookkeeping -----------------------------------------------------

    def _note(self, kind: str, msg: Message) -> None:
        counter = {
            "drop": "dropped",
            "duplicate": "duplicated",
            "delay": "delayed",
            "corrupt": "corrupted",
        }[kind]
        setattr(self, counter, getattr(self, counter) + 1)
        if self._obs.enabled:
            self._obs.emit(
                f"msg-{kind}",
                getattr(msg, "task_id", None),
                epoch=getattr(msg, "epoch", -1),
                node=getattr(self, "_obs_node", -1),
                scope="message",
                type=type(msg).__name__,
                endpoint=self.endpoint,
            )

    def publish_metrics(self, registry) -> None:
        super().publish_metrics(registry)
        label = self.endpoint or "channel"
        registry.counter("chaos.messages_dropped", endpoint=label).inc(self.dropped)
        registry.counter("chaos.messages_duplicated", endpoint=label).inc(self.duplicated)
        registry.counter("chaos.messages_delayed", endpoint=label).inc(self.delayed)
        registry.counter("chaos.messages_corrupted", endpoint=label).inc(self.corrupted)

    @property
    def faults_injected(self) -> int:
        return self.dropped + self.duplicated + self.delayed + self.corrupted

    # -- transport hooks -------------------------------------------------------

    def _send(self, msg: Message) -> None:
        index = self._sent_index
        self._sent_index += 1
        rule = self.plan.decide(
            "send", type(msg).__name__, getattr(msg, "task_id", None), index,
            endpoint=self.endpoint_index,
        )
        if rule is None:
            super()._send(msg)
            return
        self._note(rule.kind, msg)
        if rule.kind in ("drop", "corrupt"):
            return  # lost in transit / discarded by the receiver's checksum
        if rule.kind == "duplicate":
            super()._send(msg)
            super()._send(msg)
            return
        # delay: hold the sender briefly, then deliver. Send-side delay
        # stalls only this endpoint's service thread, which is precisely a
        # slow link's observable behaviour.
        time.sleep(min(rule.delay, 1.0))
        super()._send(msg)

    def _recv(self, timeout: Optional[float]) -> Message:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._dup_queue:
                return self._dup_queue.popleft()
            now = time.monotonic()
            if self._held and self._held[0][0] <= now:
                return heapq.heappop(self._held)[2]
            # Wait bounded by the deadline and the next held message.
            wait: Optional[float] = None
            if deadline is not None:
                wait = deadline - now
            if self._held:
                until_held = self._held[0][0] - now
                wait = until_held if wait is None else min(wait, until_held)
            if wait is not None and wait <= 0:
                if deadline is not None and now >= deadline:
                    raise ChannelTimeout(f"no message within {timeout}s")
                continue  # a held message just became ready
            try:
                msg = super()._recv(wait)
            except ChannelTimeout:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                continue
            index = self._recv_index
            self._recv_index += 1
            rule = self.plan.decide(
                "recv", type(msg).__name__, getattr(msg, "task_id", None), index,
                endpoint=self.endpoint_index,
            )
            if rule is None:
                return msg
            self._note(rule.kind, msg)
            if rule.kind in ("drop", "corrupt"):
                continue  # discarded; keep waiting within the deadline
            if rule.kind == "duplicate":
                self._dup_queue.append(msg)
                return msg
            # delay: park it and keep serving other traffic.
            self._held_seq += 1
            heapq.heappush(self._held, (now + rule.delay, self._held_seq, msg))

    def __repr__(self) -> str:
        return (
            f"ChaosChannel({self.inner!r}, faults={self.faults_injected}, "
            f"plan={self.plan!r})"
        )
