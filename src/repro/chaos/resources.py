"""Resource-exhaustion campaigns: seeded I/O faults, graceful degradation.

The resource tier (``repro chaos --resources``) injects *host* failures
— ENOSPC/EIO/short writes on journal appends, fsync failures, shm
allocation failures, fd exhaustion — through the seeded
:class:`~repro.cluster.faults.IoFaultPlan` threaded into the commit
journal and the zero-copy block store, then asserts the degradation
contract on every seeded run:

- the run finishes **oracle-identical** (shm park failures fall back to
  inline payloads; journal write failures retry, checkpoint-rescue, or
  degrade to unjournaled per ``journal_degrade``), **or**
- it ends in a clean, *attributed*
  :class:`~repro.utils.errors.ResourceExhausted` (job id + machine
  readable ``resource-exhausted:<resource>:<op>`` reason) — never a
  hang, never a traceback, never a wrong answer;
- whatever happened, the journal file left behind is scan-recoverable
  (a torn tail from a failed append must have been truncated back to
  the last good frame), and ``/dev/shm`` holds no segment of the run.

Each seed cycles the degrade ladder (``abort`` → ``checkpoint`` →
``memory``) so one campaign exercises every rung. Fault plans are pure
functions of the seed, so a failing seed replays exactly.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.chaos.campaign import (
    CampaignSpec,
    RunOutcome,
    _build_problem,
    _run_boxed,
    _states_equal,
    chaos_config,
)
from repro.cluster.faults import (
    IO_FAULT_KINDS,
    IO_FAULT_OPS,
    IoFaultPlan,
    IoFaultRule,
    IoPolicy,
)
from repro.utils.errors import (
    FaultToleranceExhausted,
    JournalError,
    ResourceExhausted,
)

__all__ = [
    "IO_FAULT_KINDS",
    "IO_FAULT_OPS",
    "IoFaultPlan",
    "IoFaultRule",
    "IoPolicy",
    "DEGRADE_CYCLE",
]

#: Per-seed rotation of ``journal_degrade`` — one campaign covers every
#: rung of the degradation ladder.
DEGRADE_CYCLE = ("abort", "checkpoint", "memory")


def _execute_resource(
    spec: CampaignSpec, backend: str, seed: int, oracle, artifact_dir: Optional[str]
) -> RunOutcome:
    """One resource-fault run: inject, run, verify the contract above."""
    import shutil
    import tempfile
    from dataclasses import replace

    from repro.runtime.system import EasyHPS

    problem = _build_problem(spec)
    config = chaos_config(backend, seed, spec)
    tmp = tempfile.mkdtemp(prefix=f"chaos-res-{backend}-{seed}-")
    journal_path = os.path.join(tmp, "run.journal")
    mode = DEGRADE_CYCLE[seed % len(DEGRADE_CYCLE)]
    updates = dict(
        journal_path=journal_path,
        journal_fsync=True,  # the fsync fault surface needs real fsyncs
        journal_degrade=mode,
        # Alternate the retry budget so the campaign exercises both
        # retry-absorption (an isolated fault never reaches the ladder)
        # and the ladder itself (every fault degrades immediately).
        journal_retries=seed % 2,
        checkpoint_interval=4,
        run_id=f"chaos-res-{backend}-s{seed}-p{os.getpid()}",
    )
    if backend == "processes":
        # Park payloads in shm so allocation faults have a surface; the
        # leak invariant below covers the fallback path too.
        updates["shm"] = True
    config = replace(config, **updates)
    detail = f"degrade={mode}"
    started = time.perf_counter()

    def finalize(outcome: RunOutcome, report=None) -> RunOutcome:
        # Post-run resource invariants, checked on *every* settled run:
        # the journal left behind must be scan-recoverable (missing is
        # fine — memory-degrade unlinks it) and /dev/shm must be clean.
        problems = []
        if os.path.exists(journal_path):
            from repro.durable.journal import scan_journal

            try:
                scan_journal(journal_path)
            except JournalError as exc:
                problems.append(f"journal unrecoverable: {exc}")
        if backend == "processes":
            from repro.comm.shm import leaked_segments, run_prefix, sweep_segments

            prefix = run_prefix(config.run_id)
            leaks = leaked_segments(prefix)
            if leaks:
                sweep_segments(prefix)  # don't poison later seeds
                problems.append(f"{len(leaks)} shm segments leaked: {leaks[:3]}")
        if problems and outcome.status in ("ok", "aborted"):
            outcome.status = "invariant-violation"
            outcome.detail = (f"{detail}; " + "; ".join(problems))[:300]
        if not outcome.acceptable and artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            if os.path.exists(journal_path):
                kept = os.path.join(
                    artifact_dir, f"res-{backend}-seed{seed}.journal"
                )
                shutil.copyfile(journal_path, kept)
                outcome.detail = f"{outcome.detail} [journal: {kept}]"[:300]
            if report is not None and report.events is not None:
                from repro.obs import write_trace

                path = os.path.join(
                    artifact_dir, f"res-{backend}-seed{seed}.trace.json"
                )
                write_trace(
                    path, report.events, metrics=report.metrics,
                    meta={"backend": backend, "seed": seed,
                          "status": outcome.status, "degrade": mode},
                )
                outcome.trace_path = path
        shutil.rmtree(tmp, ignore_errors=True)
        return outcome

    box = _run_boxed(
        spec, f"chaos-res-{backend}-{seed}",
        lambda: EasyHPS(config).run(problem),
    )
    elapsed = time.perf_counter() - started
    if not box:
        # Keep the tmp dir: the journal of a hung run is the evidence.
        return RunOutcome(
            backend, seed, "hang",
            detail=f"{detail}; exceeded {spec.run_timeout}s [journal: {journal_path}]",
            elapsed=elapsed,
        )
    exc = box.get("exc")
    if isinstance(exc, ResourceExhausted):
        # Allowed — but only when the abort is properly attributed.
        out = RunOutcome(
            backend, seed, "aborted",
            detail=f"{detail}; {exc.reason}: {exc}"[:300], elapsed=elapsed,
        )
        if not exc.job_id or not exc.reason.startswith("resource-exhausted"):
            out.status = "invariant-violation"
            out.detail = f"{detail}; abort without attribution: {exc!r}"[:300]
        return finalize(out)
    if isinstance(exc, FaultToleranceExhausted):
        return finalize(RunOutcome(
            backend, seed, "aborted", detail=f"{detail}; {exc}"[:300],
            elapsed=elapsed,
        ))
    if exc is not None:
        return finalize(RunOutcome(
            backend, seed, "error",
            detail=f"{detail}; {type(exc).__name__}: {exc}"[:300],
            elapsed=elapsed,
        ))

    run = box["run"]
    report = run.report
    degrades = (
        sum(1 for e in report.events if e.kind == "resource-degrade")
        if report.events is not None
        else 0
    )
    out = RunOutcome(
        backend, seed, "ok",
        detail=f"{detail}; {degrades} degradations absorbed",
        faults_injected=report.faults_injected,
        faults_recovered=report.faults_recovered,
        elapsed=elapsed,
    )
    if run.state is not None and oracle is not None:
        diff = _states_equal(oracle, run.state)
        if diff is not None:
            out.status, out.detail = "wrong-answer", f"{detail}; {diff}"[:300]
    return finalize(out, report=report)
