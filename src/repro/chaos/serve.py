"""Service-level chaos campaigns: break the daemon, not just one run.

``repro chaos --serve`` drives an in-process :class:`~repro.serve
.daemon.ServeDaemon` through a full multi-tenant workload while
attacking it on three axes at once:

- **worker kills** — every job carries a small seeded ``worker_p_die``,
  so slaves keep dying mid-run across the whole campaign;
- **one sabotaged tenant** — that tenant's jobs (and only those) get
  liar workers and bit-flipping channels; they must end in clean,
  attributed aborts or audited-clean results, and *no other tenant's
  job may be contaminated*;
- **a daemon kill mid-campaign** — after a seeded fraction of the
  submissions, the daemon is killed ``kill -9``-style (WAL abandoned
  mid-stream) and a fresh daemon resumes from the submission log; the
  remaining trace is then submitted to the resumed daemon.

The verdict applies the serving variant of the chaos invariant to every
job: **oracle-identical or a clean recorded abort — never a hang, never
a wrong answer, never cross-tenant blast damage** — plus service-level
checks: overload shed only with structured rejections, the final drain
returns clean, and the fleet leaks no threads.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.config import RunConfig
from repro.serve.daemon import ServeDaemon, build_problem
from repro.serve.job import JobSpec
from repro.utils.errors import ChaosError
from repro.workloads.arrivals import ArrivalEvent, make_trace

#: Terminal job states the serving invariant accepts.
_ACCEPTABLE = ("done", "aborted", "cancelled")


@dataclass(frozen=True)
class ServeCampaignSpec:
    """One seeded service-chaos campaign, fully determined by its fields."""

    n_jobs: int = 40
    seed: int = 0
    workers: int = 4
    queue_cap: int = 64
    policy: str = "fifo"
    #: Arrival-trace shape (see :data:`repro.workloads.TRACE_KINDS`).
    trace: str = "heavy-tail"
    tenants: Tuple[str, ...] = ("acme", "globex", "initech", "mallory")
    algo: str = "edit-distance"
    size_min: int = 16
    size_max: int = 48
    nodes: int = 3
    #: Baseline seeded worker-kill probability on *every* job.
    worker_p_die: float = 0.15
    #: The tenant whose jobs get liar workers + bit-flipping channels.
    sabotage_tenant: Optional[str] = "mallory"
    sabotage_p_lie: float = 0.8
    sabotage_message_p: float = 0.05
    #: Kill the daemon after this fraction of submissions (None = never).
    kill_daemon_at: Optional[float] = 0.5
    #: Per-job retry budget; small, so faulty jobs abort rather than grind.
    max_retries: int = 6
    #: Daemon-wide hard cap per job — the no-hang backstop.
    job_timeout: float = 60.0
    task_timeout: float = 2.0


@dataclass
class JobVerdict:
    """How one job fared against the serving invariant."""

    job_id: str
    tenant: str
    status: str
    detail: str
    ok: bool
    problem: str = ""


@dataclass
class ServeCampaignResult:
    spec: ServeCampaignSpec
    verdicts: List[JobVerdict] = field(default_factory=list)
    submitted: int = 0
    accepted: int = 0
    shed: int = 0
    resumed_jobs: int = 0
    drain_clean: bool = False
    fleet_leaked: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and all(v.ok for v in self.verdicts)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.verdicts:
            out[v.status] = out.get(v.status, 0) + 1
        return out

    def summary(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        lines = [
            f"serve chaos: {self.submitted} submitted "
            f"({self.accepted} accepted, {self.shed} shed), "
            f"{self.resumed_jobs} resumed after daemon kill",
            f"  outcomes: {counts or 'none'}",
            f"  drain clean: {self.drain_clean}, fleet leaked: {self.fleet_leaked}",
        ]
        for v in self.verdicts:
            if not v.ok:
                lines.append(f"  FAIL {v.job_id} [{v.tenant}] {v.status}: {v.problem}")
        for problem in self.problems:
            lines.append(f"  FAIL {problem}")
        lines.append("VERDICT: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _oracles_for(
    trace: Tuple[ArrivalEvent, ...]
) -> Dict[Tuple[str, int, int], Dict[str, np.ndarray]]:
    """Serial ground truth per distinct (algo, size, seed) in the trace."""
    from repro.runtime.system import EasyHPS

    oracles: Dict[Tuple[str, int, int], Dict[str, np.ndarray]] = {}
    for event in trace:
        key = (event.algo, event.size, event.seed)
        if key not in oracles:
            problem = build_problem(
                JobSpec(algo=event.algo, size=event.size, seed=event.seed)
            )
            oracles[key] = EasyHPS(RunConfig(backend="serial")).run(problem).state
    return oracles


def _states_equal(oracle: Dict[str, Any], state: Dict[str, Any]) -> Optional[str]:
    if set(oracle) != set(state):
        return f"state keys differ: {sorted(oracle)} vs {sorted(state)}"
    for key in sorted(oracle):
        if not np.array_equal(np.asarray(oracle[key]), np.asarray(state[key])):
            bad = int(np.sum(np.asarray(oracle[key]) != np.asarray(state[key])))
            return f"state[{key!r}] differs from oracle in {bad} cells"
    return None


def _make_daemon(spec: ServeCampaignSpec, tmp: str, resume: bool) -> ServeDaemon:
    return ServeDaemon(
        workers=spec.workers,
        queue_cap=spec.queue_cap,
        policy=spec.policy,
        policy_seed=spec.seed,
        wal_path=os.path.join(tmp, "serve.srvj"),
        job_journal_dir=os.path.join(tmp, "jobs"),
        resume=resume,
        keep_states=True,
        task_timeout=spec.task_timeout,
        job_timeout=spec.job_timeout,
        job_prefix="cjob",
    )


def _spec_for(spec: ServeCampaignSpec, event: ArrivalEvent) -> JobSpec:
    sabotaged = event.tenant == spec.sabotage_tenant
    chaos: Dict[str, float] = {"seed": float(spec.seed * 7919 + event.seed)}
    if spec.worker_p_die > 0:
        chaos["worker_p_die"] = spec.worker_p_die
    if sabotaged:
        chaos["worker_p_lie"] = spec.sabotage_p_lie
        if spec.sabotage_message_p > 0:
            chaos["message_p"] = spec.sabotage_message_p
    return JobSpec(
        tenant=event.tenant,
        algo=event.algo,
        size=event.size,
        seed=event.seed,
        nodes=spec.nodes,
        max_retries=spec.max_retries,
        # Lies are semantic faults: only the audit tier can convict them.
        integrity="audit" if sabotaged else "digest",
        chaos=chaos,
    )


def run_serve_campaign(
    spec: ServeCampaignSpec,
    *,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ServeCampaignResult:
    """Run one seeded service-chaos campaign; see the module docstring."""
    say = progress if progress is not None else (lambda _msg: None)
    if spec.n_jobs < 1:
        raise ChaosError(f"n_jobs must be >= 1, got {spec.n_jobs}")
    if spec.sabotage_tenant is not None and spec.sabotage_tenant not in spec.tenants:
        raise ChaosError(
            f"sabotage tenant {spec.sabotage_tenant!r} not in {spec.tenants}"
        )
    trace = make_trace(
        spec.trace, spec.n_jobs, seed=spec.seed,
        tenants=spec.tenants, algos=(spec.algo,),
        size_min=spec.size_min, size_max=spec.size_max,
    ) if spec.trace == "heavy-tail" else make_trace(
        spec.trace, spec.n_jobs, seed=spec.seed,
        tenants=spec.tenants, algos=(spec.algo,), size=spec.size_min,
    )
    say(f"trace: {spec.trace}, {len(trace)} arrivals, "
        f"{len(set(e.tenant for e in trace))} tenants")
    oracles = _oracles_for(trace)
    say(f"oracles: {len(oracles)} distinct instances solved serially")

    result = ServeCampaignResult(spec=spec)
    tmp = artifact_dir if artifact_dir is not None else tempfile.mkdtemp(
        prefix="repro-serve-chaos-"
    )
    os.makedirs(tmp, exist_ok=True)

    kill_after = (
        max(1, int(spec.n_jobs * spec.kill_daemon_at))
        if spec.kill_daemon_at is not None
        else None
    )
    daemon = _make_daemon(spec, tmp, resume=False)
    daemon.start()
    killed = False
    for i, event in enumerate(trace):
        if kill_after is not None and not killed and i == kill_after:
            # Let some of the accepted backlog reach RUNNING so the
            # resume exercises per-job commit journals, then kill.
            daemon.wait_idle(0.3)
            say(f"killing daemon after {i} submissions")
            daemon.kill()
            killed = True
            daemon = _make_daemon(spec, tmp, resume=True)
            daemon.start()
            result.resumed_jobs = daemon.resumed_jobs
            say(f"resumed daemon recovered {daemon.resumed_jobs} jobs")
        decision = daemon.submit(_spec_for(spec, event))
        result.submitted += 1
        if decision.accepted:
            result.accepted += 1
        else:
            result.shed += 1
            if decision.reason == "accepted" or not decision.reason:
                result.problems.append(
                    f"shed submission #{i} lacks a structured reason"
                )
    budget = spec.job_timeout * 3 + 0.5 * spec.n_jobs
    if not daemon.wait_idle(budget):
        result.problems.append(
            f"daemon not idle after {budget:.0f}s — the no-hang "
            "guarantee is broken"
        )
    _judge(spec, daemon, oracles, result)
    result.drain_clean = daemon.drain(timeout=30.0)
    result.fleet_leaked = daemon.fleet.stop(timeout=1.0)
    if result.fleet_leaked:
        result.problems.append(
            f"{result.fleet_leaked} fleet worker threads leaked past drain"
        )
    say(result.summary())
    return result


def _judge(
    spec: ServeCampaignSpec,
    daemon: ServeDaemon,
    oracles: Dict[Tuple[str, int, int], Dict[str, np.ndarray]],
    result: ServeCampaignResult,
) -> None:
    """Apply the serving invariant to every job the daemon saw."""
    for snap in daemon.jobs():
        job_id = str(snap["job_id"])
        record = daemon.get(job_id)
        if record is None:
            continue
        s = record.spec
        verdict = JobVerdict(job_id, s.tenant, record.status, record.detail, ok=True)
        sabotaged = s.tenant == spec.sabotage_tenant
        if record.status not in _ACCEPTABLE:
            verdict.ok = False
            verdict.problem = (
                f"unacceptable terminal state {record.status!r} ({record.detail})"
            )
        elif record.status == "done":
            oracle = oracles.get((s.algo, s.size, s.seed))
            if oracle is not None and record.state is not None:
                diff = _states_equal(oracle, record.state)
                if diff is not None:
                    verdict.ok = False
                    verdict.problem = f"wrong answer: {diff}"
        elif record.status == "aborted":
            if not record.detail:
                verdict.ok = False
                verdict.problem = "abort without a recorded reason"
            elif f"[job {job_id}]" not in record.detail and "cancelled" not in record.detail:
                verdict.ok = False
                verdict.problem = (
                    f"abort not attributed to its job: {record.detail[:80]}"
                )
            elif not sabotaged and spec.worker_p_die == 0.0:
                # With no faults injected into this tenant, an abort means
                # the sabotage leaked across the isolation boundary.
                verdict.ok = False
                verdict.problem = (
                    "clean tenant aborted — cross-tenant contamination? "
                    f"({record.detail[:80]})"
                )
        result.verdicts.append(verdict)
