"""Static and dynamic verification of the DAG Data Driven Model.

The runtime's correctness contract — a sub-task runs only after every
dependency's data landed (paper Section IV) — is *assumed* everywhere
else in this package. ``repro.check`` is the layer that verifies it:

- :mod:`repro.check.pattern_check` — static verification of DAG Pattern
  Models and partitions (acyclicity, in-bounds dependencies, view
  consistency, the Fig-7 data ⊇ topological invariant, coarse-DAG edge
  preservation);
- :mod:`repro.check.trace_check` — a happens-before validator over
  runtime/simulator scheduling traces (early commits, duplicate commits
  from fault-tolerance races, lost updates);
- :mod:`repro.check.lock_lint` — an instrumented lock layer that records
  the acquisition-order graph across runtime threads and reports cycles
  and blocking channel calls made under a lock;
- :mod:`repro.check.chaos_check` — fault-tolerance invariants over the
  telemetry stream (no commit after blacklist; every fault followed by
  reassign-or-abort), asserted by every chaos-campaign run;
- :mod:`repro.check.durable_check` — resume invariants over a resumed
  run's telemetry stream against its write-ahead journal (no
  double-commit, frontier consistent with the journal, full coverage),
  asserted by every kill-master campaign run;
- :mod:`repro.check.integrity_check` — result-integrity invariants over
  the telemetry stream (no dispatch after quarantine; every taint
  recomputed; no commit without digest verification), asserted by every
  SDC campaign run;
- :mod:`repro.check.protocol` — a machine-checked state-machine
  specification of the master/slave wire protocol, static analyses over
  it (reachability, unhandled messages, commit-without-verify), and
  trace conformance replaying observed runs against the spec;
- :mod:`repro.check.explore` — a systematic concurrency explorer that
  drives the simulated backend through every message-delivery order
  (with partial-order reduction and bounded fault injection), checking
  all of the above invariants on every interleaving;
- :mod:`repro.check.ast_lint` — source-level lints for the repo's
  concurrency and clock discipline (no raw ``threading.Lock()``, no
  direct wall-clock reads in scheduling code).

Run everything from the command line with ``python -m repro check`` (see
``docs/static_analysis.md``), or enable the trace validator for any run
by setting ``REPRO_VERIFY=1`` / ``RunConfig(verify=True)``.
"""

from repro.check.ast_lint import check_clock_discipline, check_lock_discipline
from repro.check.chaos_check import check_fault_invariants
from repro.check.diagnostics import CheckReport, Diagnostic
from repro.check.durable_check import check_resume_invariants
from repro.check.integrity_check import check_integrity_invariants
from repro.check.lock_lint import LockLint, lock_lint_session, make_condition, make_lock, note_blocking
from repro.check.pattern_check import check_partition, check_pattern
from repro.check.protocol import (
    ProtocolSpec,
    Transition,
    build_protocol_spec,
    check_protocol_conformance,
    check_protocol_spec,
)
from repro.check.trace_check import SchedEvent, TraceRecorder, check_trace

# NOTE: repro.check.explore is deliberately NOT imported here. It needs
# repro.cluster.faults at module level, which pulls repro.comm and (via
# the transport) repro.obs — and repro.obs imports back into this
# package (trace_check, lock_lint). Importing explore eagerly would
# recreate the init cycle the TYPE_CHECKING guard in trace_check broke.
# Import it as ``from repro.check.explore import ...`` at use sites.

__all__ = [
    "CheckReport",
    "Diagnostic",
    "LockLint",
    "ProtocolSpec",
    "SchedEvent",
    "TraceRecorder",
    "Transition",
    "build_protocol_spec",
    "check_clock_discipline",
    "check_fault_invariants",
    "check_integrity_invariants",
    "check_lock_discipline",
    "check_partition",
    "check_pattern",
    "check_protocol_conformance",
    "check_protocol_spec",
    "check_resume_invariants",
    "check_trace",
    "lock_lint_session",
    "make_condition",
    "make_lock",
    "note_blocking",
]
