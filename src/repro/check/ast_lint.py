"""AST lints enforcing the repo's concurrency and clock discipline.

Two project rules exist that no type checker sees:

- **Lock discipline** — locks and condition variables must come from
  :func:`repro.check.lock_lint.make_lock` / ``make_condition`` so the
  lock-order lint can observe them; a raw ``threading.Lock()`` is
  invisible to deadlock detection. Only ``lock_lint`` itself may
  construct raw primitives (it *is* the factory).
- **Clock discipline** — scheduling code under ``repro/runtime`` and
  ``repro/backends`` must read time through the injected clock
  (:mod:`repro.obs.clock`), never ``time.time()``/``time.monotonic()``
  directly: a direct read breaks the simulated backend's sim-time and
  makes timeout logic untestable. ``time.perf_counter()`` stays legal —
  it only measures wall-clock cost for reports, it never drives logic.

Both lints are source-level (``ast``), so they catch violations in
code paths tests never execute. Wired into ``repro check
--all-builtin``; the seeded fixtures in :mod:`repro.check.fixtures`
prove each rule actually fires.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.check import diagnostics as D
from repro.check.diagnostics import CheckReport

__all__ = [
    "lint_lock_discipline",
    "lint_clock_discipline",
    "check_lock_discipline",
    "check_clock_discipline",
    "source_root",
]

_BANNED_LOCK_ATTRS = ("Lock", "Condition")
_BANNED_CLOCK_ATTRS = ("time", "monotonic")


class _ImportTracker(ast.NodeVisitor):
    """Resolves which local names alias a watched module or symbol."""

    def __init__(self, module: str, symbols: Tuple[str, ...]) -> None:
        self.module = module
        self.symbols = symbols
        #: Local aliases of the module itself (``import time as _time``).
        self.module_aliases: Set[str] = set()
        #: Local alias -> watched symbol (``from time import monotonic as mono``).
        self.symbol_aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for a in node.names:
            if a.name == self.module:
                self.module_aliases.add(a.asname or a.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == self.module:
            for a in node.names:
                if a.name in self.symbols:
                    self.symbol_aliases[a.asname or a.name] = a.name
        self.generic_visit(node)

    def banned_call(self, node: ast.Call) -> Optional[str]:
        """The watched symbol this call resolves to, or None."""
        f = node.func
        if (
            isinstance(f, ast.Attribute)
            and f.attr in self.symbols
            and isinstance(f.value, ast.Name)
            and f.value.id in self.module_aliases
        ):
            return f.attr
        if isinstance(f, ast.Name) and f.id in self.symbol_aliases:
            return self.symbol_aliases[f.id]
        return None


def _lint(
    source: str,
    path: str,
    module: str,
    symbols: Tuple[str, ...],
) -> List[Tuple[int, str]]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:  # unparseable file is its own finding
        return [(exc.lineno or 0, f"cannot parse: {exc.msg}")]
    tracker = _ImportTracker(module, symbols)
    tracker.visit(tree)
    out: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            hit = tracker.banned_call(node)
            if hit is not None:
                out.append((node.lineno, f"{module}.{hit}()"))
    return out


def lint_lock_discipline(source: str, path: str = "<string>") -> List[Tuple[int, str]]:
    """(line, what) for every raw ``threading.Lock/Condition`` construction."""
    return _lint(source, path, "threading", _BANNED_LOCK_ATTRS)


def lint_clock_discipline(source: str, path: str = "<string>") -> List[Tuple[int, str]]:
    """(line, what) for every direct ``time.time/monotonic`` read."""
    return _lint(source, path, "time", _BANNED_CLOCK_ATTRS)


def source_root() -> str:
    """The installed ``repro`` package directory this lint scans."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _py_files(root: str, subdirs: Optional[Iterable[str]] = None) -> List[str]:
    roots = [root] if subdirs is None else [os.path.join(root, d) for d in subdirs]
    out: List[str] = []
    for r in roots:
        for dirpath, _dirs, files in os.walk(r):
            out.extend(
                os.path.join(dirpath, f) for f in files if f.endswith(".py")
            )
    return sorted(out)


def check_lock_discipline(
    root: Optional[str] = None, title: str = "lint:lock-discipline"
) -> CheckReport:
    """Scan the whole package for raw lock construction.

    ``repro/check/lock_lint.py`` is exempt: it is the factory the rule
    funnels everyone through.
    """
    root = root or source_root()
    exempt = os.path.join("check", "lock_lint.py")
    report = CheckReport(title=title)
    for path in _py_files(root):
        if path.endswith(exempt):
            continue
        report.checked += 1
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        rel = os.path.relpath(path, root)
        for line, what in lint_lock_discipline(source, path):
            report.add(
                D.RAW_LOCK_CONSTRUCTION,
                f"raw {what} at {rel}:{line} — use "
                f"repro.check.lock_lint.make_lock/make_condition so the "
                f"lock-order lint can see it",
                f"{rel}:{line}",
            )
    return report


def check_clock_discipline(
    root: Optional[str] = None,
    subdirs: Tuple[str, ...] = ("runtime", "backends", "serve"),
    title: str = "lint:clock-discipline",
) -> CheckReport:
    """Scan scheduling code for direct wall-clock reads."""
    root = root or source_root()
    report = CheckReport(title=title)
    for path in _py_files(root, subdirs):
        report.checked += 1
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        rel = os.path.relpath(path, root)
        for line, what in lint_clock_discipline(source, path):
            report.add(
                D.UNINJECTED_CLOCK,
                f"direct {what} at {rel}:{line} — scheduling code must read "
                f"the injected clock (repro.obs.clock) so simulated time and "
                f"tests stay deterministic",
                f"{rel}:{line}",
            )
    return report
