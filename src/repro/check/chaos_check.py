"""Fault-tolerance invariants over the telemetry event stream.

Chaos campaigns (:mod:`repro.chaos`) validate every surviving run's
:class:`~repro.obs.recorder.ObsEvent` stream against two invariants of
the hardened recovery:

- **no commit after blacklist** — once a worker is blacklisted, no
  sub-task it was dispatched to may commit; the eviction scan cancels its
  registrations, so a late result must be epoch-stale. A commit
  attributed to a blacklisted worker after the blacklist event means the
  eviction raced wrong (``commit-after-blacklist``).
- **every fault is followed by reassign-or-abort** — a ``redistribute``
  or ``speculate`` event takes the task's live dispatch away; unless the
  run aborted, a later ``assign`` of the same task must exist, or the
  task was dropped on the floor (``fault-not-reassigned``).

Both operate purely on the recorded stream (``RunConfig(observe=True)``)
so they apply identically to the real backends and the simulator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.check.diagnostics import (
    COMMIT_AFTER_BLACKLIST,
    UNHANDLED_FAULT,
    CheckReport,
)

#: Recovery-action kinds that must be followed by a re-assign (or abort).
_FAULT_KINDS = ("redistribute", "speculate")


def check_fault_invariants(
    events: Sequence[Any],
    aborted: bool = False,
    title: str = "fault-invariants",
) -> CheckReport:
    """Validate the fault/recovery invariants over one run's event stream.

    ``aborted`` marks a run that ended in a clean
    :class:`~repro.utils.errors.FaultToleranceExhausted`, which waives
    the reassign requirement for trailing faults.
    """
    report = CheckReport(title=title)
    ordered = sorted(events, key=lambda e: e.seq)

    # Attribution: worker of each task-scope dispatch. The master's own
    # commit records carry worker == -1, so the assign map is the source
    # of truth; the simulator stamps workers on commits directly.
    assigned_worker: Dict[Tuple[Any, int], int] = {}
    #: worker -> seq of its blacklist event.
    blacklisted_at: Dict[int, int] = {}
    #: (task_id, epoch, seq, kind) of each recovery action.
    pending_faults: List[Tuple[Any, int, int, str]] = []
    last_assign_seq: Dict[Any, int] = {}

    for ev in ordered:
        if ev.scope != "task":
            continue
        if ev.kind == "assign":
            assigned_worker[(ev.task_id, ev.epoch)] = ev.worker
            last_assign_seq[ev.task_id] = ev.seq
        elif ev.kind == "blacklist":
            blacklisted_at[ev.worker] = ev.seq
        elif ev.kind in _FAULT_KINDS:
            pending_faults.append((ev.task_id, ev.epoch, ev.seq, ev.kind))
        elif ev.kind == "commit":
            report.checked += 1
            worker: Optional[int] = ev.worker if ev.worker >= 0 else None
            if worker is None:
                worker = assigned_worker.get((ev.task_id, ev.epoch))
            if worker is None:
                continue
            black_seq = blacklisted_at.get(worker)
            if black_seq is not None and black_seq < ev.seq:
                report.add(
                    COMMIT_AFTER_BLACKLIST,
                    f"task {ev.task_id} epoch {ev.epoch} committed from worker "
                    f"{worker} after that worker was blacklisted "
                    f"(blacklist seq {black_seq} < commit seq {ev.seq})",
                    subject=f"worker {worker}",
                )

    for task_id, epoch, seq, kind in pending_faults:
        report.checked += 1
        reassigned = last_assign_seq.get(task_id, -1) > seq
        if not reassigned and not aborted:
            report.add(
                UNHANDLED_FAULT,
                f"{kind} of task {task_id} epoch {epoch} (seq {seq}) was "
                "never followed by a re-assign and the run did not abort",
                subject=f"task {task_id}",
            )
    return report


def blacklisted_workers(events: Sequence[Any]) -> Set[int]:
    """Workers with a ``blacklist`` event in the stream (helper for tests)."""
    return {e.worker for e in events if e.kind == "blacklist"}
