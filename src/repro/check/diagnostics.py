"""Diagnostic records shared by every ``repro.check`` pass.

Each finding is a :class:`Diagnostic` with a stable machine-readable
``code`` (tests and CI assert on codes, not message text), a
human-readable message, and the subject it concerns. A pass returns a
:class:`CheckReport`, which callers either inspect or escalate to a
:class:`~repro.utils.errors.CheckError` via :meth:`CheckReport.raise_if_failed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.utils.errors import CheckError

# -- pattern verifier codes ---------------------------------------------------
PATTERN_CYCLE = "pattern-cycle"
DEP_OUT_OF_BOUNDS = "dep-out-of-bounds"
VIEW_MISMATCH = "view-mismatch"
DATA_SUPERSET_VIOLATION = "data-superset-violation"
PARTITION_EDGE_LOST = "partition-edge-lost"
PARTITION_SIZE_MISMATCH = "partition-size-mismatch"

# -- happens-before trace codes -----------------------------------------------
EARLY_ASSIGN = "early-assign"
EARLY_COMMIT = "early-commit"
DUPLICATE_COMMIT = "duplicate-commit"
STALE_COMMIT = "stale-commit"
LOST_UPDATE = "lost-update"
UNKNOWN_TASK = "unknown-task"

# -- fault-tolerance invariant codes (chaos campaigns) --------------------------
COMMIT_AFTER_BLACKLIST = "commit-after-blacklist"
UNHANDLED_FAULT = "fault-not-reassigned"

# -- durable-resume invariant codes (kill-master campaigns) ---------------------
RESUME_DOUBLE_COMMIT = "resume-double-commit"
RESUME_FRONTIER_MISMATCH = "resume-frontier-mismatch"
RESUME_INCOMPLETE = "resume-incomplete"

# -- result-integrity invariant codes (SDC campaigns) ---------------------------
DISPATCH_AFTER_QUARANTINE = "dispatch-after-quarantine"
TAINT_NOT_RECOMPUTED = "taint-not-recomputed"
COMMIT_WITHOUT_VERIFY = "commit-without-verify"

# -- lock lint codes ----------------------------------------------------------
LOCK_CYCLE = "lock-cycle"
BLOCKING_WHILE_LOCKED = "blocking-while-locked"

# -- protocol-spec static analysis codes ----------------------------------------
PROTOCOL_UNREACHABLE_STATE = "protocol-unreachable-state"
PROTOCOL_UNHANDLED_MESSAGE = "protocol-unhandled-message"
PROTOCOL_COMMIT_WITHOUT_VERIFY = "protocol-commit-without-verify"
PROTOCOL_CONFLICT = "protocol-conflicting-transitions"
PROTOCOL_MESSAGE_MISMATCH = "protocol-message-mismatch"

# -- protocol trace-conformance codes -------------------------------------------
PROTOCOL_ILLEGAL_TRANSITION = "protocol-illegal-transition"

# -- interleaving-explorer codes ------------------------------------------------
EXPLORE_DEADLOCK = "explore-deadlock"
EXPLORE_ORACLE_MISMATCH = "explore-oracle-mismatch"

# -- AST lint codes -------------------------------------------------------------
RAW_LOCK_CONSTRUCTION = "raw-lock-construction"
UNINJECTED_CLOCK = "uninjected-clock"

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One verified finding of a check pass."""

    code: str
    message: str
    subject: str = ""
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass
class CheckReport:
    """Accumulated findings of one or more check passes."""

    title: str = "check"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Number of probes actually performed (vertices / events / acquisitions),
    #: so callers can tell "clean" from "checked nothing".
    checked: int = 0

    def add(
        self, code: str, message: str, subject: str = "", severity: str = "error"
    ) -> Diagnostic:
        diag = Diagnostic(code=code, message=message, subject=subject, severity=severity)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "CheckReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.checked += other.checked

    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity diagnostics were recorded."""
        return not self.errors()

    def raise_if_failed(self) -> None:
        """Escalate error diagnostics to a :class:`CheckError`."""
        errs = self.errors()
        if errs:
            listing = "\n".join(f"  - {d}" for d in errs)
            raise CheckError(
                f"{self.title}: {len(errs)} violation(s) after {self.checked} probes:\n{listing}"
            )

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.errors())} error(s)"
        lines = [f"{self.title}: {status} ({self.checked} probes, {len(self.diagnostics)} findings)"]
        lines.extend(f"  {d}" for d in self.diagnostics)
        return "\n".join(lines)


def merge_reports(title: str, reports: Iterable[CheckReport]) -> CheckReport:
    """Fold several pass reports into one roll-up report."""
    out = CheckReport(title=title)
    for r in reports:
        out.extend(r)
    return out
