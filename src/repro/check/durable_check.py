"""Durable-resume invariants over the telemetry event stream.

Kill-master campaigns (:mod:`repro.chaos` with ``--kill-master-at``)
validate the *resumed* run's :class:`~repro.obs.recorder.ObsEvent`
stream against the write-ahead journal it recovered from:

- **no double-commit** — a task the journal already holds must never
  produce a live ``commit`` in the resumed stream (the replay path feeds
  the DAG parser directly and emits no obs commit), and no task may
  commit twice within the stream. Either means the same merge was
  applied to the DP table twice (``resume-double-commit``).
- **frontier consistent with journal** — every ``assign`` in the
  resumed stream must have all its DAG predecessors available: either
  journaled (replayed) or committed earlier in the stream. A dispatch
  whose inputs exist nowhere means the recovered frontier disagrees
  with the journal (``resume-frontier-mismatch``).
- **completeness** — unless the resumed run itself aborted, the union
  of journaled and live commits must cover the whole DAG
  (``resume-incomplete``).

Like :mod:`repro.check.chaos_check`, this operates purely on the
recorded stream (``RunConfig(observe=True)``), so it applies identically
to the real backends and the simulator — including the simulated
backend, where no DP values exist to diff against an oracle and these
invariants *are* the resume correctness argument.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.check.diagnostics import (
    RESUME_DOUBLE_COMMIT,
    RESUME_FRONTIER_MISMATCH,
    RESUME_INCOMPLETE,
    CheckReport,
)


def check_resume_invariants(
    events: Sequence[Any],
    journaled: Mapping[Any, int],
    pattern: Optional[Any] = None,
    aborted: bool = False,
    title: str = "resume-invariants",
) -> CheckReport:
    """Validate one resumed run's event stream against its journal.

    ``journaled`` maps task id -> epoch for every commit recovered from
    the journal (the replayed prefix). ``pattern`` is the process-level
    :class:`~repro.dag.pattern.DAGPattern`; when given, the frontier and
    completeness invariants are checked too, otherwise only
    double-commit. ``aborted`` waives completeness for a resumed run
    that ended in a clean abort.
    """
    report = CheckReport(title=title)
    ordered = sorted(events, key=lambda e: e.seq)

    #: task -> seq of its live commit in the resumed stream.
    live_commits: Dict[Any, int] = {}
    for ev in ordered:
        if ev.scope != "task":
            continue
        if ev.kind == "commit":
            report.checked += 1
            if ev.task_id in journaled:
                report.add(
                    RESUME_DOUBLE_COMMIT,
                    f"task {ev.task_id} epoch {ev.epoch} committed live "
                    f"(seq {ev.seq}) but the journal already holds it at "
                    f"epoch {journaled[ev.task_id]}",
                    subject=f"task {ev.task_id}",
                )
            elif ev.task_id in live_commits:
                report.add(
                    RESUME_DOUBLE_COMMIT,
                    f"task {ev.task_id} committed twice in the resumed "
                    f"stream (seq {live_commits[ev.task_id]} and {ev.seq})",
                    subject=f"task {ev.task_id}",
                )
            else:
                live_commits[ev.task_id] = ev.seq
        elif ev.kind == "assign" and pattern is not None:
            report.checked += 1
            for pred in pattern.predecessors(ev.task_id):
                pred_seq = live_commits.get(pred)
                if pred in journaled or (pred_seq is not None and pred_seq < ev.seq):
                    continue
                report.add(
                    RESUME_FRONTIER_MISMATCH,
                    f"task {ev.task_id} assigned (seq {ev.seq}) before its "
                    f"predecessor {pred} was available — neither journaled "
                    "nor committed earlier in the resumed stream",
                    subject=f"task {ev.task_id}",
                )

    if pattern is not None and not aborted:
        report.checked += 1
        covered = set(journaled) | set(live_commits)
        missing = [t for t in pattern.vertices() if t not in covered]
        if missing:
            report.add(
                RESUME_INCOMPLETE,
                f"{len(missing)} task(s) neither journaled nor committed "
                f"in the resumed run (first: {missing[0]})",
                subject="coverage",
            )
    return report
