"""Systematic interleaving exploration of the master/slave protocol.

The simulated backend is a deterministic discrete-event program: every
protocol step (assignment arrival, result arrival, overtime check, idle
announcement) is an event on one queue. Under a *zero-cost* cluster
model — zero link latency/bandwidth cost, zero master/slave overheads,
unit compute per sub-task — every protocol event triggered by the same
wave of completions lands at the same simulated instant. Choosing which
of those simultaneous events fires next is then exactly choosing the
delivery order of concurrently in-flight messages, which is the only
nondeterminism the real distributed system has. This module enumerates
those choices.

Search strategy (stateless replay DFS):

- The run executes under a :class:`~repro.cluster.simcore.ControlledEventQueue`
  whose chooser replays a recorded *choice prefix* (a list of tie-set
  indices) and defaults to index 0 past the prefix, recording every
  decision. After the run, each un-taken alternative at each
  post-prefix decision becomes a new prefix on the DFS stack, so the
  search visits every delivery order reachable within the bounds.
- **Partial-order reduction, part 1 (forced no-ops):** a tie-set member
  that is provably behaviour-free in the current state — an overtime
  check for an epoch that already completed, an idle announcement of a
  dead node — commutes with every other event (it only *reads* state
  and returns). Such events are executed eagerly without recording a
  branch point, a persistent-set-style reduction that removes the
  factorially many orderings of dead timers.
- **Partial-order reduction, part 2 (state merging):** before every
  recorded decision past the prefix the explorer fingerprints the full
  scheduler state (master tables, node states, pending event set with
  relative times). A fingerprint seen on any earlier interleaving of
  the same scenario means every continuation from here was already
  explored — the run is cut short. Invariants are still checked on the
  truncated event trace, so pruning never hides a violation that
  happened *before* the merge point.
- **Bounded fault injection:** each *scenario* pairs the fault-free
  base run with at most one targeted message fault (drop or
  timeout-tied delay, addressed by endpoint/direction/index) and at
  most one worker death, enumerated over endpoints and early message
  indices. Faults beyond the enumeration horizon hit states the
  horizon's faults already cover (later waves repeat the same protocol
  situations with different block ids).

Every completed interleaving is checked for: clean termination (no
deadlock, no unexpected abort), an oracle-identical result (every block
committed exactly once, zero surviving taint), the happens-before trace
invariants (:mod:`repro.check.trace_check`), the chaos and integrity
invariants, and strict conformance to the protocol state machines
(:mod:`repro.check.protocol`). A violating interleaving is exported as
a replayable counterexample: the standard obs-trace JSON with the
choice prefix in its ``meta``, so ``replay_counterexample`` (or
``repro check --explore --replay``) can re-execute exactly that
delivery order under a debugger.

Everything here imports the heavy runtime lazily — ``repro.check``
must stay importable before ``repro.comm``/``repro.obs`` (see
:mod:`repro.check.trace_check`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.check import diagnostics as D
from repro.check.diagnostics import CheckReport, merge_reports
from repro.check.protocol import check_protocol_conformance
from repro.check.trace_check import check_trace
from repro.cluster.faults import (
    MessageFaultPlan,
    MessageFaultRule,
    WorkerFaultPlan,
    WorkerFaultRule,
)
from repro.cluster.network import LinkModel
from repro.cluster.simcore import ControlledEventQueue, SimulationError

__all__ = [
    "ExploreConfig",
    "Scenario",
    "Counterexample",
    "ExplorationResult",
    "TargetedFaultRule",
    "TargetedFaultPlan",
    "default_scenarios",
    "run_exploration",
    "check_exploration",
    "replay_counterexample",
    "reorder_double_commit_model",
]


# -- configuration ------------------------------------------------------------------


@dataclass(frozen=True)
class ExploreConfig:
    """Bounds of one exploration campaign.

    The defaults are the acceptance workload: a 3x3 wavefront on two
    workers with at most one injected fault, exhaustively explored.
    """

    #: Block grid of the wavefront instance (blocks, not cells).
    rows: int = 3
    cols: int = 3
    #: Cells per block edge (the instance is ``rows*block`` x ``cols*block``).
    block: int = 2
    #: Computing nodes (the master is implicit).
    workers: int = 2
    #: Problem seed (any value works — the simulator never computes cells).
    seed: int = 0
    #: Overtime threshold. Unit compute makes any value > 1.0 safe; the
    #: timeout-tied delay scenarios schedule a result at exactly this time.
    task_timeout: float = 8.0
    max_retries: int = 2
    #: Fault budget: at most this many message drops / worker deaths per
    #: scenario (the issue's "<= 1 drop, <= 1 worker death").
    max_drops: int = 1
    max_deaths: int = 1
    #: Per-endpoint message indices to target with a drop/delay fault.
    drop_indices: int = 2
    #: ``after_tasks`` values for the worker-death scenarios.
    death_points: Tuple[int, ...] = (1, 2)
    #: Include the one-drop-plus-one-death combination scenarios.
    combine_faults: bool = True
    #: Safety caps; hitting either clears ``ExplorationResult.exhaustive``.
    max_interleavings_per_scenario: int = 4000
    max_total_interleavings: int = 40000


@dataclass(frozen=True)
class Scenario:
    """One fault assignment to explore all interleavings under."""

    name: str
    message_plan: Optional[MessageFaultPlan] = None
    worker_plan: Optional[WorkerFaultPlan] = None
    #: False for scenarios *designed* to abort (fault budget exceeded by
    #: construction); a clean FaultToleranceExhausted is then not a violation.
    expect_complete: bool = True


# -- targeted fault plan -------------------------------------------------------------


@dataclass(frozen=True)
class TargetedFaultRule:
    """One fault addressed at a specific (endpoint, direction, index).

    :class:`~repro.cluster.faults.MessageFaultRule` deliberately has no
    endpoint field (chaos campaigns fault *classes* of messages); the
    explorer needs to name exactly one wire transfer, so this rule keys
    on the per-endpoint counters the simulator already maintains.
    """

    kind: str  # "drop" or "delay"
    direction: str  # "send" (TaskAssign) or "recv" (TaskResult)
    endpoint: int
    index: int
    delay: float = 0.0


class TargetedFaultPlan(MessageFaultPlan):
    """A :class:`MessageFaultPlan` that faults exactly the named transfers.

    Subclassing (rather than a new class) keeps ``RunConfig``'s
    ``check_type`` validation and the backend's ``decide(...)`` call
    sites untouched.
    """

    def __init__(self, targets: Sequence[TargetedFaultRule]) -> None:
        super().__init__(())
        self.targets = tuple(targets)

    def decide_all(
        self,
        direction: str,
        message_type: str,
        task_id: Any,
        index: int,
        endpoint: int = 0,
    ) -> Tuple[MessageFaultRule, ...]:
        out = []
        for t in self.targets:
            if t.direction == direction and t.endpoint == endpoint and t.index == index:
                out.append(MessageFaultRule(t.kind, direction=direction, delay=t.delay))
        return tuple(out)

    def __bool__(self) -> bool:
        return bool(self.targets)

    def __repr__(self) -> str:
        return f"TargetedFaultPlan({list(self.targets)!r})"


class _ZeroCostLink(LinkModel):
    """A link that moves any payload instantly (keeps LinkModel's
    positivity validation satisfied while zeroing transfer times)."""

    def transfer_time(self, nbytes: float) -> float:
        return 0.0


# -- scenario enumeration ------------------------------------------------------------


def default_scenarios(cfg: ExploreConfig) -> List[Scenario]:
    """The bounded fault matrix: fault-free, single drops, timeout-tied
    delays, single deaths, and (optionally) one drop+death pair."""
    scenarios = [Scenario("fault-free")]
    drops: List[Scenario] = []
    if cfg.max_drops >= 1:
        for k in range(cfg.workers):
            for direction, mname in (("send", "assign"), ("recv", "result")):
                for i in range(cfg.drop_indices):
                    plan = TargetedFaultPlan(
                        (TargetedFaultRule("drop", direction, k, i),)
                    )
                    drops.append(Scenario(f"drop-{mname}-n{k}-i{i}", plan))
            # A result delayed to land exactly at its overtime check: the
            # delivery race randomized chaos essentially never hits
            # (delay 0.05 vs timeout 30), but the stale-drop path's
            # correctness depends on it.
            delay = cfg.task_timeout - 1.0  # unit compute => ties the timeout
            plan = TargetedFaultPlan(
                (TargetedFaultRule("delay", "recv", k, 0, delay=delay),)
            )
            drops.append(Scenario(f"delay-result-n{k}-i0", plan))
    scenarios.extend(drops)
    if cfg.max_deaths >= 1:
        for k in range(cfg.workers):
            for after in cfg.death_points:
                plan = WorkerFaultPlan(
                    (WorkerFaultRule("die", worker_id=k, after_tasks=after),)
                )
                scenarios.append(Scenario(f"death-n{k}-after{after}", None, plan))
    if cfg.combine_faults and cfg.max_drops >= 1 and cfg.max_deaths >= 1 and cfg.workers >= 2:
        # One representative of the two-fault frontier: lose a result
        # *and* a different worker. Still within the <=1-drop/<=1-death
        # budget per category.
        mplan = TargetedFaultPlan((TargetedFaultRule("drop", "recv", 0, 0),))
        wplan = WorkerFaultPlan(
            (WorkerFaultRule("die", worker_id=1, after_tasks=cfg.death_points[0]),)
        )
        scenarios.append(Scenario("drop-result-n0+death-n1", mplan, wplan))
    return scenarios


# -- run construction ---------------------------------------------------------------


def _make_problem(cfg: ExploreConfig) -> Any:
    from repro.algorithms.edit_distance import EditDistance

    return EditDistance.random(cfg.rows * cfg.block, cfg.cols * cfg.block, seed=cfg.seed)


def _make_config(cfg: ExploreConfig, scenario: Scenario) -> Any:
    from repro.cluster.machine import NodeSpec
    from repro.cluster.topology import ClusterSpec
    from repro.runtime.config import RunConfig

    cluster = ClusterSpec(
        compute_nodes=tuple(NodeSpec(threads=1) for _ in range(cfg.workers)),
        link=_ZeroCostLink(latency=0.0, bandwidth=1.0),
        master_overhead=0.0,
        slave_overhead=0.0,
    )
    kwargs: Dict[str, Any] = {}
    if scenario.message_plan is not None:
        kwargs["message_fault_plan"] = scenario.message_plan
    if scenario.worker_plan is not None:
        kwargs["worker_fault_plan"] = scenario.worker_plan
    return RunConfig(
        nodes=cfg.workers + 1,
        threads_per_node=1,
        backend="simulated",
        scheduler="dynamic",
        process_partition=cfg.block,
        thread_partition=cfg.block,
        task_timeout=cfg.task_timeout,
        max_retries=cfg.max_retries,
        retry_backoff=0.0,
        observe=True,
        verify=False,  # the explorer runs its own (stricter) checks
        cluster=cluster,
        **kwargs,
    )


def _make_run(problem: Any, config: Any, chooser: "_ReplayChooser", model_factory: Optional[Callable[[], type[Any]]]) -> Any:
    from repro.backends.simulated import _SimulatedRun

    cls: type[Any] = model_factory() if model_factory is not None else _SimulatedRun
    run = cls(problem, config, evq=ControlledEventQueue(chooser))
    # Unit compute: every sub-task takes exactly 1.0 sim-seconds, so the
    # events of one dependency wave collide at the same instant (the tie
    # sets the chooser enumerates) while successive waves stay layered —
    # zero compute would collapse the whole run into one intractable tie.
    run._inner = lambda bid, spec: (1.0, 1.0, 1)
    chooser.bind(run)
    return run


# -- state fingerprinting ------------------------------------------------------------


def _rel(t: float, now: float) -> float:
    return round(t - now, 9)


def _fingerprint(run: Any) -> Tuple[Any, ...]:
    """Canonical digest of everything that can influence future behaviour.

    Two interleavings reaching the same fingerprint have identical
    continuations (the simulator is deterministic given the chooser), so
    the DFS only needs to extend one of them. Times are folded in
    relative to ``now`` — two states differing only by a clock shift
    behave identically. Order matters where the scheduler reads order
    (``ready`` feeds the policy's scan); sets/dicts are canonicalized.
    """
    evq = run.evq
    now = evq.now
    nodes = tuple(
        (
            n.dead,
            n.tasks_done,
            n.parked_since is not None,
            None
            if n.pending is None
            else (n.pending[0], n.pending[1], _rel(n.pending[2], now), _rel(n.pending[3], now)),
            n.sent_index,
            n.recv_index,
            _rel(n.busy_until, now) if n.busy_until > now else 0.0,
            _rel(n.nic_free, now) if n.nic_free > now else 0.0,
        )
        for n in run.nodes
    )
    pending = tuple((_rel(w, now), repr(lbl)) for w, lbl in run.evq.pending_labels())
    return (
        nodes,
        pending,
        tuple(run.ready),
        tuple(sorted(run.registered.items())),
        tuple(sorted(run.attempts.items())),
        tuple(sorted(run.committed.items())),
        tuple(sorted(run.dispatched_to.items())),
        tuple(sorted(run.live_taint.items())),
        tuple(sorted(run.tainted_commits.items())),
        tuple(run.blacklisted),
        tuple(run.quarantined),
        tuple(sorted(run.node_failures.items())),
        tuple(sorted(run.divergence.items())),
        tuple(frozenset(s) for s in run.node_done),
        _rel(run.master_nic_free, now) if run.master_nic_free > now else 0.0,
        _rel(run.master_cpu_free, now) if run.master_cpu_free > now else 0.0,
        run.failure is not None,
        run.parser.n_remaining,
    )


# -- the replaying chooser -----------------------------------------------------------


class _Pruned(Exception):
    """Internal: this interleaving merged into an already-explored state."""


class _ReplayChooser:
    """Chooser that replays a choice prefix, then walks first-alternative.

    Records every *branchable* decision (its chosen index and tie-set
    width) so the driver can enumerate the untaken alternatives, and the
    state fingerprint before each decision so convergent interleavings
    merge. Forced no-op events — see the module docstring — are executed
    eagerly without recording.
    """

    def __init__(self, prefix: Sequence[int], visited: Set[Tuple[Any, ...]]) -> None:
        self.prefix = tuple(prefix)
        self.visited = visited
        self.choices: List[int] = []
        self.widths: List[int] = []
        self.fingerprints: List[Tuple[Any, ...]] = []
        self.pruned = False
        self.run: Any = None

    def bind(self, run: Any) -> None:
        self.run = run

    def _is_noop(self, label: object) -> bool:
        run = self.run
        if not isinstance(label, tuple) or not label:
            return False
        if label[0] == "timeout":
            # Overtime check of an epoch that already completed (or was
            # already redistributed): reads the register table, returns.
            return run.registered.get(label[1]) != label[2]
        if label[0] == "idle":
            # Idle announcement of a dead node: returns immediately.
            return bool(run.nodes[label[1]].dead)
        return False

    def choose(self, ties: Sequence[Tuple[int, object]]) -> int:
        for i, (_h, label) in enumerate(ties):
            if self._is_noop(label):
                return i
        depth = len(self.choices)
        fp = _fingerprint(self.run)
        self.fingerprints.append(fp)
        if depth < len(self.prefix):
            idx = self.prefix[depth]
            if not 0 <= idx < len(ties):
                raise SimulationError(
                    f"replay diverged: prefix[{depth}]={idx} for a tie set of {len(ties)}"
                )
        else:
            if fp in self.visited:
                self.pruned = True
                raise _Pruned()
            idx = 0
        self.choices.append(idx)
        self.widths.append(len(ties))
        return idx


# -- invariant checking --------------------------------------------------------------


def _check_interleaving(
    run: Any,
    scenario: Scenario,
    error: Optional[BaseException],
    *,
    partial: bool = False,
) -> CheckReport:
    """All per-interleaving invariants on one (possibly truncated) run."""
    from repro.obs.export import to_sched_events
    from repro.utils.errors import FaultToleranceExhausted

    report = CheckReport(title=f"explore:{scenario.name}")
    clean_abort = isinstance(error, FaultToleranceExhausted) and not scenario.expect_complete
    aborted = error is not None or partial
    if error is not None and not clean_abort:
        report.add(
            D.EXPLORE_DEADLOCK,
            f"interleaving ended in {type(error).__name__}: {error}",
            scenario.name,
        )
    complete = error is None and not partial
    if complete:
        report.checked += 1
        missing = run.partition.n_blocks - len(run.committed)
        if missing:
            report.add(
                D.EXPLORE_ORACLE_MISMATCH,
                f"{missing} of {run.partition.n_blocks} blocks never committed",
                scenario.name,
            )
        if run.tainted_commits:
            report.add(
                D.EXPLORE_ORACLE_MISMATCH,
                f"result differs from the oracle: tainted commits {sorted(run.tainted_commits)}",
                scenario.name,
            )
    events = run.obs.events() if run.obs is not None else ()
    sched = to_sched_events(events)
    report.extend(
        check_trace(
            sched,
            run.partition.abstract,
            require_complete=complete,
            title=f"explore-trace:{scenario.name}",
        )
    )
    from repro.check.chaos_check import check_fault_invariants
    from repro.check.integrity_check import check_integrity_invariants

    report.extend(check_fault_invariants(events, aborted=aborted))
    report.extend(check_integrity_invariants(events, None, aborted=aborted))
    report.extend(check_protocol_conformance(events, strict=True))
    return report


# -- results -------------------------------------------------------------------------


@dataclass
class Counterexample:
    """One violating interleaving, replayable from its choice prefix."""

    scenario: str
    choices: Tuple[int, ...]
    codes: Tuple[str, ...]
    report: CheckReport
    trace_path: Optional[str] = None


@dataclass
class ExplorationResult:
    """Outcome of one exploration campaign."""

    scenarios: int = 0
    interleavings: int = 0
    pruned: int = 0
    violations: List[Counterexample] = field(default_factory=list)
    #: True when every scenario's DFS drained within the caps.
    exhaustive: bool = True
    per_scenario: Dict[str, int] = field(default_factory=dict)

    def report(self, title: str = "explore") -> CheckReport:
        out = merge_reports(title, [ce.report for ce in self.violations])
        out.title = title
        # "checked" counts explored interleavings, not sub-diagnostic
        # probes: callers read it as "how much was actually searched".
        out.checked = self.interleavings
        return out

    def summary(self) -> str:
        status = "OK" if not self.violations else f"{len(self.violations)} violating"
        tail = "exhaustive" if self.exhaustive else "CAPPED"
        return (
            f"{self.scenarios} scenarios, {self.interleavings} interleavings "
            f"({self.pruned} merged, {tail}): {status}"
        )


# -- driver --------------------------------------------------------------------------


def _export_counterexample(
    artifact_dir: str,
    cfg: ExploreConfig,
    scenario: Scenario,
    choices: Sequence[int],
    run: Any,
    report: CheckReport,
    n: int,
) -> str:
    import os

    from repro.obs.export import write_trace

    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(artifact_dir, f"counterexample-{n:03d}-{scenario.name}.json")
    events = run.obs.events() if run.obs is not None else ()
    write_trace(
        path,
        events,
        meta={
            "kind": "explore-counterexample",
            "scenario": scenario.name,
            "choices": list(choices),
            "diagnostics": [str(d) for d in report.errors()],
            "explore_config": {
                "rows": cfg.rows,
                "cols": cfg.cols,
                "block": cfg.block,
                "workers": cfg.workers,
                "seed": cfg.seed,
                "task_timeout": cfg.task_timeout,
                "max_retries": cfg.max_retries,
            },
        },
    )
    return path


def _run_once(
    problem: Any,
    config: Any,
    scenario: Scenario,
    prefix: Sequence[int],
    visited: Set[Tuple[Any, ...]],
    model_factory: Optional[Callable[[], type[Any]]],
) -> Tuple[Any, _ReplayChooser, Optional[BaseException]]:
    from repro.utils.errors import FaultToleranceExhausted, SchedulerError

    chooser = _ReplayChooser(prefix, visited)
    run = _make_run(problem, config, chooser, model_factory)
    error: Optional[BaseException] = None
    try:
        run.execute()
    except _Pruned:
        pass
    except (FaultToleranceExhausted, SchedulerError, SimulationError) as exc:
        error = exc
    return run, chooser, error


def run_exploration(
    cfg: Optional[ExploreConfig] = None,
    *,
    scenarios: Optional[Sequence[Scenario]] = None,
    model_factory: Optional[Callable[[], type[Any]]] = None,
    artifact_dir: Optional[str] = None,
    max_counterexamples_per_scenario: int = 1,
) -> ExplorationResult:
    """Explore every delivery order of every scenario within the bounds.

    ``model_factory`` swaps the simulated-run class, which is how the
    seeded-defect fixtures check the explorer actually *catches* the
    bugs it exists for (see :func:`reorder_double_commit_model`).
    Violations stop that scenario's DFS after
    ``max_counterexamples_per_scenario`` counterexamples — one witness
    per defect is what a person debugs, and a broken protocol tends to
    break *every* remaining interleaving.
    """
    cfg = cfg or ExploreConfig()
    problem = _make_problem(cfg)
    scens = list(scenarios) if scenarios is not None else default_scenarios(cfg)
    result = ExplorationResult(scenarios=len(scens))
    for scenario in scens:
        config = _make_config(cfg, scenario)
        visited: Set[Tuple[Any, ...]] = set()
        stack: List[Tuple[int, ...]] = [()]
        explored = 0
        found = 0
        while stack:
            if (
                explored >= cfg.max_interleavings_per_scenario
                or result.interleavings >= cfg.max_total_interleavings
            ):
                result.exhaustive = False
                break
            prefix = stack.pop()
            run, chooser, error = _run_once(
                problem, config, scenario, prefix, visited, model_factory
            )
            explored += 1
            result.interleavings += 1
            if chooser.pruned:
                result.pruned += 1
            # Untaken alternatives at every decision this run made beyond
            # its replayed prefix become new DFS roots.
            for depth in range(len(prefix), len(chooser.choices)):
                base = tuple(chooser.choices[:depth])
                for alt in range(1, chooser.widths[depth]):
                    stack.append(base + (alt,))
            visited.update(chooser.fingerprints)
            report = _check_interleaving(
                run, scenario, error, partial=chooser.pruned
            )
            if not report.ok:
                ce = Counterexample(
                    scenario=scenario.name,
                    choices=tuple(chooser.choices),
                    codes=report.codes(),
                    report=report,
                )
                if artifact_dir is not None:
                    ce.trace_path = _export_counterexample(
                        artifact_dir, cfg, scenario, chooser.choices, run,
                        report, len(result.violations),
                    )
                result.violations.append(ce)
                found += 1
                if found >= max_counterexamples_per_scenario:
                    break
        result.per_scenario[scenario.name] = explored
    return result


def replay_counterexample(
    cfg: ExploreConfig,
    scenario: Scenario,
    choices: Sequence[int],
    *,
    model_factory: Optional[Callable[[], type[Any]]] = None,
) -> CheckReport:
    """Re-execute one recorded interleaving and re-check its invariants.

    Determinism guarantee: the same (config, scenario, choices) triple
    always reproduces the same event trace, which is what makes exported
    counterexamples debuggable artifacts rather than one-off logs.
    """
    problem = _make_problem(cfg)
    config = _make_config(cfg, scenario)
    # An over-long prefix (e.g. a hand-edited file) diverges loudly via
    # the chooser's bounds check rather than silently exploring.
    run, chooser, error = _run_once(
        problem, config, scenario, choices, set(), model_factory
    )
    return _check_interleaving(run, scenario, error, partial=chooser.pruned)


def scenario_by_name(cfg: ExploreConfig, name: str) -> Scenario:
    """Look one of the default scenarios up by name (replay entry point)."""
    for s in default_scenarios(cfg):
        if s.name == name:
            return s
    raise KeyError(f"unknown scenario {name!r}")


def check_exploration(
    cfg: Optional[ExploreConfig] = None,
    *,
    artifact_dir: Optional[str] = None,
    model_factory: Optional[Callable[[], type[Any]]] = None,
    title: str = "protocol-explore",
) -> Tuple[CheckReport, ExplorationResult]:
    """CLI-facing wrapper: run the campaign, fold it into a CheckReport."""
    result = run_exploration(
        cfg, artifact_dir=artifact_dir, model_factory=model_factory
    )
    report = result.report(title)
    if not result.exhaustive:
        report.add(
            "explore-capped",
            "exploration hit its interleaving cap before draining "
            f"({result.summary()})",
            severity="warning",
        )
    return report, result


# -- seeded defect models ------------------------------------------------------------


def reorder_double_commit_model() -> type[Any]:
    """A simulated run with a reordering-dependent double-commit defect.

    The broken master merges a result whose epoch went stale — but only
    when the overtime check fired *before* the (delayed) result arrived.
    If the result is delivered first, the run is flawless. Randomized
    chaos campaigns essentially never tie a result's arrival to its own
    overtime check (delay 0.05 s against a 30 s timeout), so only
    systematic delivery-order enumeration exposes the bug; the
    ``delay-result-*`` scenarios construct exactly that tie.
    """
    from repro.backends.simulated import _SimulatedRun

    class _ReorderDoubleCommitRun(_SimulatedRun):
        def _result(self, bid: Any, epoch: int, k: int) -> None:
            stale = self.registered.get(bid) != epoch
            if stale and bid in self.attempts and self.committed.get(bid) != epoch:
                # Defect: merge the stale result instead of dropping it.
                self._account()
                self.committed.setdefault(bid, epoch)
                if self.sched.enabled:
                    self.sched.record("commit", bid, epoch, k)
                self._node_idle(k)
                return
            super()._result(bid, epoch, k)

    return _ReorderDoubleCommitRun
