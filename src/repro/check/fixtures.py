"""Seeded defect fixtures — known-bad inputs every check pass must catch.

Sixteen fixtures, one per diagnostic family the verifier exists for:

1.  a cyclic "pattern"                          -> ``pattern-cycle``
2.  a pattern with an out-of-bounds dependency  -> ``dep-out-of-bounds``
3.  a pattern whose data deps drop a topo dep   -> ``data-superset-violation``
4.  a trace committing a block too early        -> ``early-commit``
5.  a trace committing a block twice            -> ``duplicate-commit``
6.  a deliberate ABBA lock inversion            -> ``lock-cycle``
7.  a liar worker re-dispatched after its
    quarantine                                  -> ``dispatch-after-quarantine``
8.  a tainted commit never recomputed           -> ``taint-not-recomputed``
9.  more worker commits than digest checks      -> ``commit-without-verify``
10. a protocol spec that forgot to handle
    TaskAssign                                  -> ``protocol-unhandled-message``
11. a spec whose compute path was disconnected  -> ``protocol-unreachable-state``
12. a spec with digest verification removed     -> ``protocol-commit-without-verify``
13. an event stream committing a cancelled
    dispatch                                    -> ``protocol-illegal-transition``
14. a master that merges reordering-delayed
    stale results — caught only by systematic
    interleaving exploration                    -> ``duplicate-commit``
15. a raw ``threading.Lock()`` construction     -> ``raw-lock-construction``
16. a direct ``time.monotonic()`` read in
    scheduling code                             -> ``uninjected-clock``

They serve two purposes: negative-path tests (each must be *rejected*,
with the named diagnostic), and the ``repro check --selftest`` CLI verb,
which proves in CI that the verifier still has teeth. The broken
patterns subclass :class:`DAGPattern` directly because the public
constructors (by design) refuse to build them; the broken protocol
specs are built by the surgery helpers in :mod:`repro.check.protocol`;
fixture 14 re-runs the bounded explorer against a seeded-defect master
(:func:`repro.check.explore.reorder_double_commit_model`) whose bug a
randomized chaos campaign provably cannot time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from repro.check import diagnostics as D
from repro.check.ast_lint import lint_clock_discipline, lint_lock_discipline
from repro.check.diagnostics import CheckReport
from repro.check.integrity_check import check_integrity_invariants
from repro.check.lock_lint import lock_lint_session, make_lock
from repro.check.pattern_check import check_pattern
from repro.check.protocol import (
    build_protocol_spec,
    check_protocol_conformance,
    check_protocol_spec,
    drop_transitions,
    strip_guard,
)
from repro.check.trace_check import SchedEvent, check_trace
from repro.dag.library import WavefrontPattern
from repro.dag.pattern import DAGPattern, VertexId


class _ListPattern(DAGPattern):
    """Minimal adjacency-backed pattern that skips all validation."""

    def __init__(self, preds: Dict[VertexId, Tuple[VertexId, ...]]) -> None:
        self._preds = {k: tuple(v) for k, v in preds.items()}
        self._succs: Dict[VertexId, List[VertexId]] = {k: [] for k in self._preds}
        for v, ps in self._preds.items():
            for p in ps:
                if p in self._succs:
                    self._succs[p].append(v)

    def vertices(self) -> Iterator[VertexId]:
        return iter(sorted(self._preds))

    def n_vertices(self) -> int:
        return len(self._preds)

    def contains(self, vid: VertexId) -> bool:
        return tuple(vid) in self._preds

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return self._preds[tuple(vid)]

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return tuple(self._succs[tuple(vid)])


def cyclic_pattern() -> DAGPattern:
    """Three vertices chasing each other: (0,) -> (1,) -> (2,) -> (0,)."""
    return _ListPattern({(0,): [(2,)], (1,): [(0,)], (2,): [(1,)]})


def out_of_bounds_pattern() -> DAGPattern:
    """A 2-chain whose head also 'depends' on a vertex that does not exist."""
    return _ListPattern({(0,): [(9, 9)], (1,): [(0,)]})


class _DataGapPattern(_ListPattern):
    """Chain whose data-communication level forgets the topological edge."""

    def __init__(self) -> None:
        super().__init__({(0,): [], (1,): [(0,)]})

    def data_predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return ()  # violates the Fig 7 containment invariant


def data_gap_pattern() -> DAGPattern:
    return _DataGapPattern()


def early_commit_trace() -> Tuple[List[SchedEvent], DAGPattern]:
    """A 2x2 wavefront trace where (1, 1) commits before (0, 1)/(1, 0)."""
    pattern = WavefrontPattern(2, 2)

    def ev(seq: int, kind: str, task: Tuple[int, int]) -> SchedEvent:
        return SchedEvent(kind=kind, task_id=task, epoch=0, worker=0, seq=seq)

    events = [
        ev(0, "assign", (0, 0)),
        ev(1, "commit", (0, 0)),
        ev(2, "assign", (0, 1)),
        ev(3, "assign", (1, 0)),
        ev(4, "commit", (1, 1)),  # neither (0, 1) nor (1, 0) landed yet
        ev(5, "commit", (0, 1)),
        ev(6, "commit", (1, 0)),
    ]
    return events, pattern


def duplicate_commit_trace() -> Tuple[List[SchedEvent], DAGPattern]:
    """A fault-tolerance race: both epochs of (0, 1) commit."""
    pattern = WavefrontPattern(1, 2)
    events = [
        SchedEvent(kind="assign", task_id=(0, 0), epoch=0, worker=0, seq=0),
        SchedEvent(kind="commit", task_id=(0, 0), epoch=0, worker=0, seq=1),
        SchedEvent(kind="assign", task_id=(0, 1), epoch=0, worker=0, seq=2),
        SchedEvent(kind="redistribute", task_id=(0, 1), epoch=0, seq=3),
        SchedEvent(kind="assign", task_id=(0, 1), epoch=1, worker=1, seq=4),
        SchedEvent(kind="commit", task_id=(0, 1), epoch=1, worker=1, seq=5),
        # The timed-out epoch-0 result lands anyway and is wrongly merged:
        SchedEvent(kind="commit", task_id=(0, 1), epoch=0, worker=0, seq=6),
    ]
    return events, pattern


def abba_lock_report() -> CheckReport:
    """Two threads acquiring the same pair of locks in opposite orders."""
    with lock_lint_session() as lint:
        lock_a = make_lock("fixture.A")
        lock_b = make_lock("fixture.B")

        def a_then_b() -> None:
            with lock_a:
                with lock_b:
                    pass

        def b_then_a() -> None:
            with lock_b:
                with lock_a:
                    pass

        # Run sequentially on two threads: the *order* graph still records
        # the inversion, without risking an actual deadlock in the fixture.
        for fn in (a_then_b, b_then_a):
            t = threading.Thread(target=fn, name=f"fixture-{fn.__name__}")
            t.start()
            t.join()
        return lint.report()


@dataclass(frozen=True)
class _ObsLike:
    """Minimal stand-in for :class:`~repro.obs.recorder.ObsEvent` — the
    integrity checker consumes the *telemetry* stream, whose kinds
    (``quarantine``, ``taint-invalidate``, ...) the stricter
    :class:`SchedEvent` schema rejects by design."""

    kind: str
    task_id: object
    epoch: int
    worker: int
    seq: int


def liar_quarantine_trace() -> List[_ObsLike]:
    """A liar worker convicted, quarantined — then wrongly re-dispatched.

    Worker 1 lies about (0, 1); the audit convicts it, the taint
    recompute lands on worker 0, and the quarantine retires worker 1.
    The defect: the master assigns (0, 3) to the quarantined worker
    anyway (an eligibility check that forgot the quarantine set).
    """

    def ev(seq: int, kind: str, task: object, worker: int, epoch: int = 0) -> _ObsLike:
        return _ObsLike(kind=kind, task_id=task, epoch=epoch, worker=worker, seq=seq)

    return [
        ev(0, "assign", (0, 0), 0),
        ev(1, "commit", (0, 0), 0),
        ev(2, "assign", (0, 1), 1),
        ev(3, "commit", (0, 1), 1),
        ev(4, "audit-convict", (0, 1), 1),
        ev(5, "taint-invalidate", (0, 1), -1),
        ev(6, "quarantine", None, 1),
        ev(7, "assign", (0, 1), 0, epoch=1),
        ev(8, "commit", (0, 1), 0, epoch=1),
        ev(9, "assign", (0, 2), 0),
        ev(10, "commit", (0, 2), 0),
        ev(11, "assign", (0, 3), 1),  # the defect: worker 1 is quarantined
        ev(12, "commit", (0, 3), 1),
    ]


def taint_without_recompute_trace() -> List[_ObsLike]:
    """A conviction whose invalidated block is never recomputed: the run
    'finishes' with the tainted region simply missing from the state."""

    def ev(seq: int, kind: str, task: object, worker: int, epoch: int = 0) -> _ObsLike:
        return _ObsLike(kind=kind, task_id=task, epoch=epoch, worker=worker, seq=seq)

    return [
        ev(0, "assign", (0, 0), 0),
        ev(1, "commit", (0, 0), 0),
        ev(2, "audit-convict", (0, 0), 0),
        ev(3, "taint-invalidate", (0, 0), -1),
        # No later commit of (0, 0): the frontier push was dropped.
    ]


def unverified_commit_case() -> Tuple[List[_ObsLike], Dict[str, Dict[str, int]]]:
    """Three worker commits but only two receive-side digest checks."""

    def ev(seq: int, kind: str, task: object, worker: int) -> _ObsLike:
        return _ObsLike(kind=kind, task_id=task, epoch=0, worker=worker, seq=seq)

    events = [
        ev(0, "assign", (0, 0), 0),
        ev(1, "commit", (0, 0), 0),
        ev(2, "assign", (0, 1), 1),
        ev(3, "commit", (0, 1), 1),
        ev(4, "assign", (0, 2), 0),
        ev(5, "commit", (0, 2), 0),
    ]
    metrics = {"counters": {"integrity.digests_verified": 2}}
    return events, metrics


def unhandled_taskassign_spec_report() -> CheckReport:
    """A slave that forgot its TaskAssign handler: the receivable
    declaration survives, the transitions are gone."""
    spec = drop_transitions(build_protocol_spec(), "slave", "awaiting", "TaskAssign")
    return check_protocol_spec(spec, title="fixture:unhandled-taskassign")


def disconnected_compute_spec_report() -> CheckReport:
    """Dropping compute-done strands the slave's ``reporting`` state."""
    spec = drop_transitions(build_protocol_spec(), "slave", "computing", "compute-done")
    return check_protocol_spec(spec, title="fixture:disconnected-compute")


def unverified_commit_spec_report() -> CheckReport:
    """The digest-verified guard deleted everywhere: commits become
    reachable on unverified payloads."""
    spec = strip_guard(build_protocol_spec(), "digest-verified")
    return check_protocol_spec(spec, title="fixture:unverified-commit-spec")


def cancelled_commit_stream_report() -> CheckReport:
    """An observed stream that commits an epoch fault tolerance already
    cancelled — illegal in the master-dispatch machine."""

    def ev(seq: int, kind: str, epoch: int, worker: int) -> _ObsLike:
        return _ObsLike(kind=kind, task_id=(0, 0), epoch=epoch, worker=worker, seq=seq)

    stream = [
        ev(0, "assign", 0, 0),
        ev(1, "redistribute", 0, -1),
        ev(2, "commit", 0, 0),  # the cancelled dispatch lands anyway
    ]
    return check_protocol_conformance(stream, title="fixture:cancelled-commit")


def reorder_double_commit_report() -> CheckReport:
    """Exhaustively explore a 1x1 instance under a result delayed onto
    its own overtime check, against the seeded broken master. One of the
    two delivery orders double-commits; randomized chaos (delay 0.05 s
    vs. a 30 s timeout) can essentially never construct the tie."""
    from repro.check.explore import (
        ExploreConfig,
        Scenario,
        TargetedFaultPlan,
        TargetedFaultRule,
        reorder_double_commit_model,
        run_exploration,
    )

    cfg = ExploreConfig(rows=1, cols=1, workers=1)
    scenario = Scenario(
        "delay-result-n0-i0",
        TargetedFaultPlan(
            (TargetedFaultRule("delay", "recv", 0, 0, delay=cfg.task_timeout - 1.0),)
        ),
    )
    result = run_exploration(
        cfg, scenarios=[scenario], model_factory=reorder_double_commit_model
    )
    return result.report("fixture:reorder-double-commit")


_RAW_LOCK_SNIPPET = """\
import threading

class Recorder:
    def __init__(self):
        self._lock = threading.Lock()  # invisible to the lock-order lint
"""

_RAW_CLOCK_SNIPPET = """\
import time

def overtime(deadline):
    return time.monotonic() > deadline  # breaks under simulated time
"""


def raw_lock_snippet_report() -> CheckReport:
    report = CheckReport(title="fixture:raw-lock")
    for line, what in lint_lock_discipline(_RAW_LOCK_SNIPPET, "<fixture>"):
        report.checked += 1
        report.add(D.RAW_LOCK_CONSTRUCTION, f"raw {what} at <fixture>:{line}")
    return report


def raw_clock_snippet_report() -> CheckReport:
    report = CheckReport(title="fixture:raw-clock")
    for line, what in lint_clock_discipline(_RAW_CLOCK_SNIPPET, "<fixture>"):
        report.checked += 1
        report.add(D.UNINJECTED_CLOCK, f"direct {what} at <fixture>:{line}")
    return report


#: name -> (expected diagnostic code, runner returning the CheckReport).
SELFTEST: Dict[str, Tuple[str, Callable[[], CheckReport]]] = {
    "cyclic-pattern": (D.PATTERN_CYCLE, lambda: check_pattern(cyclic_pattern())),
    "out-of-bounds-dep": (D.DEP_OUT_OF_BOUNDS, lambda: check_pattern(out_of_bounds_pattern())),
    "data-deps-gap": (D.DATA_SUPERSET_VIOLATION, lambda: check_pattern(data_gap_pattern())),
    "early-commit-trace": (
        D.EARLY_COMMIT,
        lambda: check_trace(*early_commit_trace(), require_complete=False),
    ),
    "duplicate-commit-trace": (
        D.DUPLICATE_COMMIT,
        lambda: check_trace(*duplicate_commit_trace(), require_complete=False),
    ),
    "abba-lock-cycle": (D.LOCK_CYCLE, abba_lock_report),
    "liar-quarantine-dispatch": (
        D.DISPATCH_AFTER_QUARANTINE,
        lambda: check_integrity_invariants(liar_quarantine_trace()),
    ),
    "taint-never-recomputed": (
        D.TAINT_NOT_RECOMPUTED,
        lambda: check_integrity_invariants(taint_without_recompute_trace()),
    ),
    "commit-without-verify": (
        D.COMMIT_WITHOUT_VERIFY,
        lambda: check_integrity_invariants(*unverified_commit_case()),
    ),
    "protocol-unhandled-taskassign": (
        D.PROTOCOL_UNHANDLED_MESSAGE,
        unhandled_taskassign_spec_report,
    ),
    "protocol-disconnected-compute": (
        D.PROTOCOL_UNREACHABLE_STATE,
        disconnected_compute_spec_report,
    ),
    "protocol-unverified-commit": (
        D.PROTOCOL_COMMIT_WITHOUT_VERIFY,
        unverified_commit_spec_report,
    ),
    "protocol-cancelled-commit-stream": (
        D.PROTOCOL_ILLEGAL_TRANSITION,
        cancelled_commit_stream_report,
    ),
    "explore-reorder-double-commit": (
        D.DUPLICATE_COMMIT,
        reorder_double_commit_report,
    ),
    "raw-lock-construction": (D.RAW_LOCK_CONSTRUCTION, raw_lock_snippet_report),
    "uninjected-clock": (D.UNINJECTED_CLOCK, raw_clock_snippet_report),
}


def run_selftest() -> List[Tuple[str, str, bool]]:
    """Run every seeded defect; returns (name, expected code, detected)."""
    results: List[Tuple[str, str, bool]] = []
    for name, (code, runner) in SELFTEST.items():
        report = runner()
        results.append((name, code, report.has(code)))
    return results
