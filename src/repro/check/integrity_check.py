"""Result-integrity invariants over the telemetry event stream.

SDC chaos campaigns (:mod:`repro.chaos`) validate every surviving run's
:class:`~repro.obs.recorder.ObsEvent` stream against three invariants of
the integrity layer (digests / audit / vote / quarantine, PR 5):

- **no dispatch after quarantine** — once a worker is quarantined for
  divergent results, the master must never assign it another sub-task; a
  later ``assign`` to that worker means the eligibility checks raced
  wrong (``dispatch-after-quarantine``).
- **every taint is recomputed** — a ``taint-invalidate`` event revokes a
  committed block; unless the run aborted, a *later* ``commit`` of the
  same sub-task must exist, or the taint recompute dropped the block on
  the floor (``taint-not-recomputed``).
- **no commit without verification** — when the run's metrics carry
  ``integrity.digests_verified``, every worker-attributed commit must be
  backed by a receive-side digest verification: the number of distinct
  ``(task, epoch)`` commits from workers may not exceed the verified
  count (``commit-without-verify``). Master-side commits (serial oracle,
  journal replay, arbiter recomputes at ``worker == -1`` with no assign
  record) are exempt — the master needs no wire check on itself.

Like :mod:`repro.check.chaos_check`, the pass operates purely on the
recorded stream (``RunConfig(observe=True)``) so it applies identically
to the real backends and the simulator.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Set, Tuple

from repro.check.diagnostics import (
    COMMIT_WITHOUT_VERIFY,
    DISPATCH_AFTER_QUARANTINE,
    TAINT_NOT_RECOMPUTED,
    CheckReport,
)


def _counter(metrics: Optional[Mapping[str, Any]], name: str) -> Optional[float]:
    """Look up an unlabeled counter in a MetricsRegistry snapshot."""
    if not metrics:
        return None
    counters = metrics.get("counters", metrics)
    value = counters.get(name)
    return None if value is None else float(value)


def check_integrity_invariants(
    events: Sequence[Any],
    metrics: Optional[Mapping[str, Any]] = None,
    aborted: bool = False,
    title: str = "integrity-invariants",
) -> CheckReport:
    """Validate the result-integrity invariants over one run's events.

    ``metrics`` is the run's MetricsRegistry snapshot (or None); the
    commit-without-verify rule only fires when it carries the
    ``integrity.digests_verified`` counter. ``aborted`` marks a clean
    :class:`~repro.utils.errors.FaultToleranceExhausted`, which waives
    the recompute requirement for trailing taints.
    """
    report = CheckReport(title=title)
    ordered = sorted(events, key=lambda e: e.seq)

    quarantined_at: Dict[int, int] = {}  # worker -> seq of its quarantine
    assigned: Set[Tuple[Any, int]] = set()  # (task, epoch) wire dispatches
    worker_commits: Set[Tuple[Any, int]] = set()
    #: task -> seq of its most recent taint-invalidate / commit.
    tainted_at: Dict[Any, Tuple[int, int]] = {}  # task -> (seq, epoch)
    last_commit_seq: Dict[Any, int] = {}

    for ev in ordered:
        if getattr(ev, "scope", "task") != "task":
            # Thread-level (subtask) and message-scope events reuse the
            # task id space for their local block ids; only task-scope
            # events describe the wire commits this pass audits.
            continue
        if ev.kind == "quarantine":
            quarantined_at[ev.worker] = ev.seq
        elif ev.kind == "assign":
            assigned.add((ev.task_id, ev.epoch))
            q_seq = quarantined_at.get(ev.worker)
            report.checked += 1
            if q_seq is not None and q_seq < ev.seq:
                report.add(
                    DISPATCH_AFTER_QUARANTINE,
                    f"task {ev.task_id} epoch {ev.epoch} assigned to worker "
                    f"{ev.worker} after that worker was quarantined "
                    f"(quarantine seq {q_seq} < assign seq {ev.seq})",
                    subject=f"worker {ev.worker}",
                )
        elif ev.kind == "taint-invalidate":
            tainted_at[ev.task_id] = (ev.seq, ev.epoch)
        elif ev.kind == "commit":
            last_commit_seq[ev.task_id] = ev.seq
            if (ev.task_id, ev.epoch) in assigned:
                worker_commits.add((ev.task_id, ev.epoch))

    for task_id, (seq, epoch) in tainted_at.items():
        report.checked += 1
        if last_commit_seq.get(task_id, -1) <= seq and not aborted:
            report.add(
                TAINT_NOT_RECOMPUTED,
                f"taint-invalidate of task {task_id} epoch {epoch} "
                f"(seq {seq}) was never followed by a recompute commit "
                "and the run did not abort",
                subject=f"task {task_id}",
            )

    verified = _counter(metrics, "integrity.digests_verified")
    if verified is not None:
        report.checked += 1
        if len(worker_commits) > verified:
            report.add(
                COMMIT_WITHOUT_VERIFY,
                f"{len(worker_commits)} distinct worker commits but only "
                f"{int(verified)} results passed digest verification — "
                "some result was committed without a receive-side check",
            )
    return report


def quarantined_workers(events: Sequence[Any]) -> Set[int]:
    """Workers with a ``quarantine`` event in the stream (test helper)."""
    return {e.worker for e in events if e.kind == "quarantine"}
