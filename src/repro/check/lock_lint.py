"""Lock-order lint: deadlock-potential detection for the runtime's threads.

The real runtime runs at least three thread roles concurrently — the
master scheduling thread, one worker thread per slave channel, and the
fault-tolerance thread — sharing the worker-pool structures and the
master state lock. A cycle in the lock *acquisition-order* graph across
those roles is a potential deadlock even if no run has hung yet; a
blocking channel call made while holding a lock is a latency (and, with
an unlucky peer, liveness) hazard.

Instrumentation is opt-in and zero-cost when off: the runtime creates
all its locks through :func:`make_lock` / :func:`make_condition`, which
return plain ``threading`` primitives unless a :func:`lock_lint_session`
is active. Inside a session, locks are wrapped so every acquisition
records held-before edges into the session's graph, and
:func:`note_blocking` (called by the channel layer) flags blocking calls
made under a lock. ``LockLint.report()`` then lints the recorded graph.

Lock *names* identify roles, not instances: every ``ComputableStack``
shares one node in the graph, which is exactly the granularity at which
an ABBA inversion between two code paths is a bug.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.check import diagnostics as D
from repro.check.diagnostics import CheckReport

_ACTIVE: Optional["LockLint"] = None

#: Lock role -> blocking-call descriptions that role exists to serialize.
#: A lock declared with ``make_lock(name, guards=("channel.send",))`` is a
#: *guard lock*: holding it across exactly the call it guards is the
#: lock's entire purpose (e.g. making a non-atomic pipe send atomic), so
#: the blocking-while-locked lint exempts that pairing. Any other lock
#: held at the same time still flags.
_GUARDS: Dict[str, frozenset[str]] = {}


class LockLint:
    """One lint session: the acquisition graph plus blocking-call records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (held_name, acquired_name) -> witness thread name.
        self._edges: Dict[Tuple[str, str], str] = {}
        #: (call description, held locks, thread name) per flagged call.
        self._blocking: List[Tuple[str, Tuple[str, ...], str]] = []
        self._held = threading.local()
        self._acquisitions = 0

    # -- instrumentation callbacks (called by _TracedLock) ----------------------

    def _held_stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquire_attempt(self, name: str) -> None:
        held = self._held_stack()
        if held:
            thread = threading.current_thread().name
            with self._lock:
                for h in held:
                    if h != name:
                        self._edges.setdefault((h, name), thread)

    def on_acquired(self, name: str) -> None:
        self._held_stack().append(name)
        with self._lock:
            self._acquisitions += 1

    def on_released(self, name: str) -> None:
        held = self._held_stack()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    def note_blocking(self, description: str) -> None:
        """Record a potentially blocking call if made while holding a lock.

        Guard locks declared for ``description`` (see ``make_lock``'s
        ``guards``) don't count as held — serializing that call is what
        they are for.
        """
        held = [
            h for h in self._held_stack()
            if description not in _GUARDS.get(h, frozenset())
        ]
        if held:
            with self._lock:
                self._blocking.append(
                    (description, tuple(held), threading.current_thread().name)
                )

    # -- lint ------------------------------------------------------------------

    def edges(self) -> Dict[Tuple[str, str], str]:
        with self._lock:
            return dict(self._edges)

    def report(self) -> CheckReport:
        """Lint the recorded graph: cycles and blocking-under-lock calls."""
        report = CheckReport(title="lock-lint")
        with self._lock:
            edges = dict(self._edges)
            blocking = list(self._blocking)
            report.checked = self._acquisitions
        adjacency: Dict[str, Set[str]] = {}
        for (a, b) in edges:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set())
        for cycle in _find_cycles(adjacency):
            witness = " -> ".join(cycle + [cycle[0]])
            threads = sorted(
                {edges[e] for e in zip(cycle, cycle[1:] + [cycle[0]]) if e in edges}
            )
            report.add(
                D.LOCK_CYCLE,
                f"lock acquisition order contains a cycle: {witness} "
                f"(witness threads: {', '.join(threads)})",
                cycle[0],
            )
        for description, held, thread in blocking:
            report.add(
                D.BLOCKING_WHILE_LOCKED,
                f"{description} called while holding {list(held)} (thread {thread})",
                description,
            )
        return report


def _find_cycles(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles of a small digraph, deduplicated by node set."""
    cycles: List[List[str]] = []
    seen_sets: Set[frozenset[str]] = set()
    for start in sorted(adjacency):
        stack: List[Tuple[str, Iterator[str]]] = [(start, iter(sorted(adjacency[start])))]
        path = [start]
        on_path = {start}
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt == start and len(path) > 0:
                    key = frozenset(path)
                    if key not in seen_sets:
                        seen_sets.add(key)
                        cycles.append(list(path))
                elif nxt not in on_path and nxt > start:
                    # Only explore nodes > start so each cycle is found once,
                    # rooted at its smallest node.
                    stack.append((nxt, iter(sorted(adjacency[nxt]))))
                    path.append(nxt)
                    on_path.add(nxt)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.discard(path.pop())
    return cycles


class _TracedLock:
    """A ``threading.Lock`` wrapper feeding a :class:`LockLint` session."""

    def __init__(self, name: str, lint: LockLint) -> None:
        self.name = name
        self._lint = lint
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._lint.on_acquire_attempt(self.name)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._lint.on_acquired(self.name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._lint.on_released(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"_TracedLock({self.name!r})"


@contextmanager
def lock_lint_session() -> Iterator[LockLint]:
    """Activate lock instrumentation for the dynamic extent of the block.

    Locks created by :func:`make_lock` / :func:`make_condition` while the
    session is active are instrumented; locks created outside stay plain.
    Sessions nest (the innermost wins).
    """
    global _ACTIVE
    lint = LockLint()
    previous = _ACTIVE
    _ACTIVE = lint
    try:
        yield lint
    finally:
        _ACTIVE = previous


def active_session() -> Optional[LockLint]:
    return _ACTIVE


def make_lock(name: str, guards: Tuple[str, ...] = ()) -> threading.Lock | _TracedLock:
    """A lock for role ``name``: plain, or instrumented inside a session.

    ``guards`` declares blocking-call descriptions this lock exists to
    serialize (e.g. ``("channel.send",)`` for a per-channel send guard);
    the blocking-while-locked lint exempts exactly those pairings.
    """
    if guards:
        _GUARDS[name] = _GUARDS.get(name, frozenset()) | frozenset(guards)
    lint = _ACTIVE
    if lint is None:
        return threading.Lock()
    return _TracedLock(name, lint)


def make_condition(name: str) -> threading.Condition:
    """A condition variable whose underlying lock is role-named."""
    lint = _ACTIVE
    if lint is None:
        return threading.Condition()
    return threading.Condition(_TracedLock(name, lint))


def note_blocking(description: str) -> None:
    """Hook for blocking calls (channel send/recv); no-op outside a session."""
    lint = _ACTIVE
    if lint is not None:
        lint.note_blocking(description)
