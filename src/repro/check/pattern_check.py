"""Static verification of DAG Pattern Models and partitions.

The verifier answers two questions the runtime otherwise takes on faith:

1. *Is the pattern a legal DAG Data Driven Model?* Every declared
   dependency must point at a real vertex, the ``predecessors`` /
   ``successors`` views must describe the same edge set, the
   data-communication level must contain the topological level (paper
   Fig 7), and the graph must be acyclic.
2. *Does partitioning preserve the dependencies?* Every cell-level data
   edge that crosses a block boundary must be covered by ancestry in the
   coarse (abstract) DAG — otherwise the master could ship a block whose
   inputs were never computed (paper Fig 6).

Small patterns are checked exhaustively; large ones by randomized probing
(vertex reservoir sampling plus bounded backward random walks for cycle
detection), so the verifier is usable on cell-level grids too.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Set

from repro.check import diagnostics as D
from repro.check.diagnostics import CheckReport
from repro.dag.partition import Partition
from repro.dag.pattern import DAGPattern, VertexId

#: Patterns at or below this vertex count are verified exhaustively.
DEFAULT_MAX_EXHAUSTIVE = 20_000

#: Partition kinds whose vertices are cells of the partition's BlockGrid,
#: for which the cell-edge preservation probe applies.
_GRID_KINDS = frozenset({"wavefront", "rowcol", "full2d", "independent", "chain", "triangular"})


def _sample_vertices(pattern: DAGPattern, k: int, rng: random.Random) -> List[VertexId]:
    """Reservoir-sample ``k`` vertices in one pass over ``vertices()``."""
    reservoir: List[VertexId] = []
    for n, vid in enumerate(pattern.vertices()):
        if n < k:
            reservoir.append(vid)
        else:
            j = rng.randint(0, n)
            if j < k:
                reservoir[j] = vid
    return reservoir


def _check_vertex(pattern: DAGPattern, vid: VertexId, report: CheckReport) -> None:
    """Local neighborhood checks of one vertex (all but acyclicity)."""
    subject = repr(vid)
    if not pattern.contains(vid):
        report.add(D.VIEW_MISMATCH, "vertices() yielded an id contains() rejects", subject)
        return
    preds = pattern.predecessors(vid)
    data_preds = set(pattern.data_predecessors(vid))
    for p in preds:
        if not pattern.contains(p):
            report.add(
                D.DEP_OUT_OF_BOUNDS, f"predecessor {p!r} is not a vertex of the pattern", subject
            )
            continue
        if vid not in pattern.successors(p):
            report.add(
                D.VIEW_MISMATCH, f"edge {p!r}->{vid!r} missing from the successors view", subject
            )
        if p not in data_preds:
            report.add(
                D.DATA_SUPERSET_VIOLATION,
                f"topological predecessor {p!r} absent from data dependencies (Fig 7)",
                subject,
            )
    for d in data_preds:
        if not pattern.contains(d):
            report.add(
                D.DEP_OUT_OF_BOUNDS, f"data dependency {d!r} is not a vertex of the pattern", subject
            )
    for s in pattern.successors(vid):
        if not pattern.contains(s):
            report.add(
                D.DEP_OUT_OF_BOUNDS, f"successor {s!r} is not a vertex of the pattern", subject
            )
        elif vid not in pattern.predecessors(s):
            report.add(
                D.VIEW_MISMATCH, f"edge {vid!r}->{s!r} missing from the predecessors view", subject
            )


def _check_acyclic_exhaustive(pattern: DAGPattern, report: CheckReport) -> None:
    """Kahn's peel over the whole pattern; a stall proves a cycle."""
    indegree: Dict[VertexId, int] = {}
    for vid in pattern.vertices():
        indegree[vid] = len(pattern.predecessors(vid))
    frontier = [v for v, d in indegree.items() if d == 0]
    seen = 0
    while frontier:
        v = frontier.pop()
        seen += 1
        for s in pattern.successors(v):
            if s not in indegree:
                continue  # out-of-bounds successor, reported per-vertex
            indegree[s] -= 1
            if indegree[s] == 0:
                frontier.append(s)
    if seen != len(indegree):
        report.add(
            D.PATTERN_CYCLE,
            f"only {seen} of {len(indegree)} vertices are topologically sortable",
        )


def _probe_cycles(
    pattern: DAGPattern,
    starts: List[VertexId],
    walk_depth: int,
    rng: random.Random,
    report: CheckReport,
) -> None:
    """Randomized backward walks: revisiting a vertex on the walk path
    proves a cycle (every backward path of a finite DAG terminates)."""
    for start in starts:
        path = [start]
        on_path = {start}
        cursor = start
        for _ in range(walk_depth):
            preds = [p for p in pattern.predecessors(cursor) if pattern.contains(p)]
            if not preds:
                break
            cursor = preds[rng.randrange(len(preds))]
            if cursor in on_path:
                loop = path[path.index(cursor):] + [cursor]
                report.add(
                    D.PATTERN_CYCLE,
                    "backward walk revisited "
                    f"{cursor!r} (cycle witness: {' <- '.join(map(repr, loop))})",
                    repr(start),
                )
                return
            path.append(cursor)
            on_path.add(cursor)


def check_pattern(
    pattern: DAGPattern,
    *,
    max_exhaustive: int = DEFAULT_MAX_EXHAUSTIVE,
    samples: int = 512,
    walk_depth: int = 512,
    seed: int = 0,
) -> CheckReport:
    """Verify one DAG Pattern Model; returns a :class:`CheckReport`.

    Patterns with at most ``max_exhaustive`` vertices are checked
    exhaustively (every vertex neighborhood plus a full topological
    peel). Larger patterns are probed: ``samples`` reservoir-sampled
    vertices get the neighborhood checks, and cycle detection degrades to
    randomized backward walks of ``walk_depth`` steps.
    """
    report = CheckReport(title=f"pattern-check({pattern!r})")
    rng = random.Random(seed)
    n = pattern.n_vertices()
    if n <= max_exhaustive:
        for vid in pattern.vertices():
            _check_vertex(pattern, vid, report)
            report.checked += 1
        _check_acyclic_exhaustive(pattern, report)
    else:
        sampled = _sample_vertices(pattern, samples, rng)
        for vid in sampled:
            _check_vertex(pattern, vid, report)
            report.checked += 1
        _probe_cycles(pattern, sampled, walk_depth, rng, report)
    return report


def _cell_owner(partition: Partition, cell: VertexId) -> VertexId:
    """Block id owning ``cell`` under a grid-family partition."""
    if partition.kind == "chain":
        return (cell[0] // partition.grid.block_shape[0],)
    return partition.grid.block_of(*cell)


def _ancestors(
    pattern: DAGPattern, vid: VertexId, cache: Dict[VertexId, FrozenSet[VertexId]]
) -> FrozenSet[VertexId]:
    """All strict topological ancestors of ``vid`` (memoized DFS)."""
    cached = cache.get(vid)
    if cached is not None:
        return cached
    out: Set[VertexId] = set()
    stack = list(pattern.predecessors(vid))
    while stack:
        p = stack.pop()
        if p in out:
            continue
        out.add(p)
        hit = cache.get(p)
        if hit is not None:
            out.update(hit)
        else:
            stack.extend(pattern.predecessors(p))
    frozen = frozenset(out)
    cache[vid] = frozen
    return frozen


def check_partition(
    partition: Partition,
    *,
    max_exhaustive: int = DEFAULT_MAX_EXHAUSTIVE,
    samples: int = 512,
    seed: int = 0,
) -> CheckReport:
    """Verify a partitioned DAG Pattern Model.

    Checks, in order: the abstract (block-level) pattern itself; that
    every block's intra-block pattern covers exactly the block's cells;
    and — for grid-family partitions — that every cell-level *data* edge
    crossing a block boundary is covered by block ancestry in the
    abstract DAG, so the master never dispatches a block before its
    inputs exist. Cell edges are checked exhaustively for small base
    patterns and by reservoir sampling for large ones.
    """
    report = CheckReport(title=f"partition-check({partition.kind!r})")
    report.extend(check_pattern(partition.abstract, max_exhaustive=max_exhaustive, seed=seed))

    rng = random.Random(seed)
    blocks = list(partition.block_ids())
    block_sample = blocks if len(blocks) <= samples else rng.sample(blocks, samples)
    for bid in block_sample:
        inner = partition.block_pattern(bid)
        if inner.n_vertices() != partition.cell_count(bid):
            report.add(
                D.PARTITION_SIZE_MISMATCH,
                f"block pattern has {inner.n_vertices()} vertices but the block "
                f"owns {partition.cell_count(bid)} cells",
                repr(bid),
            )
        report.checked += 1

    if partition.kind not in _GRID_KINDS:
        return report

    base = partition.base
    abstract = partition.abstract
    anc_cache: Dict[VertexId, FrozenSet[VertexId]] = {}
    if base.n_vertices() <= max_exhaustive:
        cells: List[VertexId] = list(base.vertices())
    else:
        cells = _sample_vertices(base, samples, rng)
    for cell in cells:
        owner = _cell_owner(partition, cell)
        rows, cols = partition.block_ranges(owner)
        in_rows = cell[0] in rows
        in_cols = True if partition.kind == "chain" else cell[1] in cols
        if not (in_rows and in_cols):
            report.add(
                D.PARTITION_SIZE_MISMATCH,
                f"cell maps to block {owner!r} whose ranges do not contain it",
                repr(cell),
            )
            continue
        for dep in base.data_predecessors(cell):
            if not base.contains(dep):
                continue  # reported by check_pattern on the base, if run
            dep_owner = _cell_owner(partition, dep)
            if dep_owner == owner:
                continue
            if dep_owner not in _ancestors(abstract, owner, anc_cache):
                report.add(
                    D.PARTITION_EDGE_LOST,
                    f"cell edge {dep!r}->{cell!r} crosses blocks {dep_owner!r}->{owner!r} "
                    "but the coarse DAG has no such ancestry",
                    repr(cell),
                )
        report.checked += 1
    return report
