"""Machine-checked specification of the EasyHPS wire protocol.

The master↔slave protocol (paper Figs 9-12) is specified here as typed
state machines — data, not prose — and then used in two directions:

- **static analysis** (:func:`check_protocol_spec`): the spec itself is
  checked for unreachable states, (state, message) pairs with no handler
  and no explicit ignore, commit transitions reachable without a digest
  verification, conflicting (nondeterministic) transitions — the
  lease-expiry × quarantine class of bug, where two recovery paths race
  to cancel the same dispatch — and drift between the spec's message
  vocabulary and the real message classes in
  :mod:`repro.comm.messages`;
- **trace conformance** (:func:`check_protocol_conformance`): recorded
  ``repro.obs`` event streams are replayed against the master's
  per-dispatch machine, so a run that *observably* violated the protocol
  (commit of a cancelled epoch, double register, dispatch to a retired
  worker, ...) fails ``repro check`` even if its final answer happened
  to be right.

Roles:

``slave``
    The slave service loop: announce idle, await an assignment, compute,
    report, repeat (heartbeats emitted from the side thread in every
    serving state).
``master-control``
    The master's session machine: serve protocol messages, drain with
    ``EndSignal`` once the DAG completes, stop.
``master-dispatch``
    One machine *per register-table entry* — a (task, epoch) dispatch:
    queued → registered → committed, with cancellation by the
    fault-tolerance thread (overtime, lease expiry, worker retirement)
    and re-queue on taint invalidation. This is the machine trace
    conformance replays.
``master-worker``
    The master's per-worker availability view: active until blacklisted
    (timeout threshold), quarantined (divergence threshold), or departed
    (``WorkerLeave``); all retirements are absorbing.
``ft``
    The fault-tolerance thread's scan loop, whose guarded actions feed
    the ``master-dispatch`` and ``master-worker`` machines.

The spec deliberately lives in ``repro.check`` (no ``repro.obs`` import:
conformance events are duck-typed) so checking the protocol never drags
in the runtime it describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.check import diagnostics as D
from repro.check.diagnostics import CheckReport

#: Guard atoms the conformance engine can evaluate against a live trace.
#: Anything else (``digest-verified``, fault-tolerance scan conditions)
#: is declared for the static analyses and assumed true during replay —
#: those conditions are checked by dedicated passes
#: (:mod:`repro.check.integrity_check`) from metrics, not event order.
EVALUABLE_GUARDS = ("fresh-epoch", "epoch-match", "epoch-stale")


@dataclass(frozen=True)
class Transition:
    """One guarded edge of a role's state machine.

    ``event`` is a role-local event name: a received message kind, an
    observable trace kind (``assign``, ``commit``, ...), or an internal
    occurrence (``compute-done``). ``message`` names the wire message
    whose send/receipt the event corresponds to, if any — this is what
    ties the spec back to :mod:`repro.comm.messages`. ``guard`` is a
    comma-separated conjunction of guard atoms; empty means
    unconditional. ``action`` is a free-form effect tag the analyses
    match on (``commit``, ``requeue``, ``send:EndSignal``).
    """

    role: str
    source: str
    event: str
    target: str
    guard: str = ""
    action: str = ""
    message: Optional[str] = None

    def guard_atoms(self) -> Tuple[str, ...]:
        return tuple(a.strip() for a in self.guard.split(",") if a.strip())


@dataclass(frozen=True)
class RoleSpec:
    """States of one protocol role.

    ``receivable`` maps each state to the wire message kinds that can
    physically arrive while the role sits in it; every such pair must be
    handled by a transition or listed in ``ignores`` (an explicit,
    audited no-op), or :func:`check_protocol_spec` flags it.
    """

    name: str
    initial: str
    states: Tuple[str, ...]
    receivable: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    ignores: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ProtocolSpec:
    """The full multi-role protocol: roles + transitions + messages."""

    roles: Tuple[RoleSpec, ...]
    transitions: Tuple[Transition, ...]
    #: Wire message vocabulary the spec claims to cover (checked against
    #: the real :class:`~repro.comm.messages.Message` subclasses).
    messages: Tuple[str, ...]

    def role(self, name: str) -> RoleSpec:
        for r in self.roles:
            if r.name == name:
                return r
        raise KeyError(f"no role {name!r} in protocol spec")

    def transitions_for(self, role: str) -> Tuple[Transition, ...]:
        return tuple(t for t in self.transitions if t.role == role)


def wire_message_kinds() -> Tuple[str, ...]:
    """The real wire vocabulary: every concrete ``Message`` subclass."""
    from repro.comm import messages as M

    found: List[str] = []
    stack = list(M.Message.__subclasses__())
    while stack:
        cls = stack.pop()
        found.append(cls.__name__)
        stack.extend(cls.__subclasses__())
    return tuple(sorted(found))


def build_protocol_spec() -> ProtocolSpec:
    """The protocol as implemented by ``runtime/master.py``,
    ``runtime/slave.py`` and mirrored by ``backends/simulated.py``."""
    slave = RoleSpec(
        name="slave",
        initial="announcing",
        states=("announcing", "awaiting", "computing", "reporting", "stopped"),
        receivable=(("awaiting", ("TaskAssign", "BatchAssign", "EndSignal")),),
    )
    master_control = RoleSpec(
        name="master-control",
        initial="serving",
        states=("serving", "draining", "stopped"),
        receivable=(
            ("serving", ("IdleSignal", "TaskResult", "BatchResult",
                         "Heartbeat", "WorkerLeave")),
            ("draining", ("IdleSignal", "TaskResult", "BatchResult",
                          "Heartbeat", "WorkerLeave")),
        ),
        ignores=(
            # Shutdown tail: late results/heartbeats after the DAG is done
            # are dropped on the floor by design (the journal has ended).
            ("draining", "TaskResult"),
            ("draining", "BatchResult"),
            ("draining", "Heartbeat"),
        ),
    )
    master_dispatch = RoleSpec(
        name="master-dispatch",
        initial="queued",
        states=("queued", "registered", "committed", "cancelled"),
        receivable=(
            ("registered", ("TaskResult", "Heartbeat")),
            ("cancelled", ("TaskResult", "Heartbeat")),
            ("committed", ("TaskResult", "Heartbeat")),
        ),
        ignores=(
            # Heartbeats for settled dispatches renew nothing.
            ("cancelled", "Heartbeat"),
            ("committed", "Heartbeat"),
        ),
    )
    master_worker = RoleSpec(
        name="master-worker",
        initial="active",
        states=("active", "blacklisted", "quarantined", "departed"),
        receivable=(
            ("active", ("Heartbeat", "WorkerLeave")),
            ("blacklisted", ("Heartbeat", "WorkerLeave")),
            ("quarantined", ("Heartbeat", "WorkerLeave")),
            ("departed", ("Heartbeat",)),
        ),
        ignores=(
            # A retired worker's liveness chatter changes nothing: the
            # retirement states are absorbing.
            ("blacklisted", "Heartbeat"),
            ("blacklisted", "WorkerLeave"),
            ("quarantined", "Heartbeat"),
            ("quarantined", "WorkerLeave"),
            ("departed", "Heartbeat"),
        ),
    )
    ft = RoleSpec(
        name="ft",
        initial="watching",
        states=("watching",),
    )
    transitions = (
        # -- slave service loop (Fig 9/11) --------------------------------
        Transition("slave", "announcing", "announce", "awaiting",
                   action="send:IdleSignal", message="IdleSignal"),
        Transition("slave", "awaiting", "TaskAssign", "computing",
                   guard="digest-ok", message="TaskAssign"),
        Transition("slave", "awaiting", "TaskAssign", "announcing",
                   guard="digest-mismatch", action="reject", message="TaskAssign"),
        # Batched wavefront dispatch (``batch_wave``): one envelope holds
        # a whole anti-diagonal wave. Digest verification is per-element —
        # a mismatched element is rejected individually while the rest of
        # the wave still computes, so both guards lead to ``computing``.
        Transition("slave", "awaiting", "BatchAssign", "computing",
                   guard="digest-ok", message="BatchAssign"),
        Transition("slave", "awaiting", "BatchAssign", "computing",
                   guard="digest-mismatch", action="reject-element",
                   message="BatchAssign"),
        Transition("slave", "awaiting", "EndSignal", "stopped",
                   message="EndSignal"),
        Transition("slave", "awaiting", "leave-point", "stopped",
                   action="send:WorkerLeave", message="WorkerLeave"),
        Transition("slave", "computing", "compute-done", "reporting"),
        Transition("slave", "reporting", "report", "announcing",
                   action="send:TaskResult", message="TaskResult"),
        Transition("slave", "reporting", "report-batch", "announcing",
                   action="send:BatchResult", message="BatchResult"),
        # Heartbeat side thread: emits in every serving state.
        Transition("slave", "awaiting", "heartbeat-tick", "awaiting",
                   action="send:Heartbeat", message="Heartbeat"),
        Transition("slave", "computing", "heartbeat-tick", "computing",
                   action="send:Heartbeat", message="Heartbeat"),
        # -- master session loop ------------------------------------------
        Transition("master-control", "serving", "IdleSignal", "serving",
                   action="dispatch-or-park", message="IdleSignal"),
        Transition("master-control", "serving", "TaskResult", "serving",
                   action="route-to-dispatch", message="TaskResult"),
        Transition("master-control", "serving", "BatchResult", "serving",
                   action="route-each-to-dispatch", message="BatchResult"),
        Transition("master-control", "serving", "Heartbeat", "serving",
                   action="renew-leases", message="Heartbeat"),
        Transition("master-control", "serving", "WorkerLeave", "serving",
                   action="retire-worker", message="WorkerLeave"),
        Transition("master-control", "serving", "dag-complete", "draining",
                   action="send:EndSignal", message="EndSignal"),
        Transition("master-control", "serving", "fault-budget-exhausted",
                   "stopped", action="abort"),
        Transition("master-control", "draining", "IdleSignal", "draining",
                   action="send:EndSignal", message="IdleSignal"),
        Transition("master-control", "draining", "WorkerLeave", "draining",
                   message="WorkerLeave"),
        Transition("master-control", "draining", "all-workers-released",
                   "stopped"),
        # -- per-dispatch register-table machine (Fig 10/12) ---------------
        # The machine trace conformance replays: events are the obs trace
        # kinds (`assign`, `commit`, ...), guards the epoch discipline.
        Transition("master-dispatch", "queued", "assign", "registered",
                   guard="fresh-epoch", action="register+send",
                   message="TaskAssign"),
        Transition("master-dispatch", "registered", "result", "registered",
                   guard="epoch-match,digest-verified", action="verify",
                   message="TaskResult"),
        Transition("master-dispatch", "registered", "commit", "committed",
                   guard="epoch-match,digest-verified", action="commit"),
        Transition("master-dispatch", "registered", "redistribute",
                   "cancelled", guard="epoch-match", action="requeue"),
        Transition("master-dispatch", "registered", "stale-drop",
                   "registered", guard="epoch-stale", action="drop",
                   message="TaskResult"),
        Transition("master-dispatch", "registered", "Heartbeat",
                   "registered", guard="epoch-match", action="renew-lease",
                   message="Heartbeat"),
        Transition("master-dispatch", "cancelled", "assign", "registered",
                   guard="fresh-epoch", action="register+send",
                   message="TaskAssign"),
        Transition("master-dispatch", "cancelled", "stale-drop", "cancelled",
                   guard="epoch-stale", action="drop", message="TaskResult"),
        Transition("master-dispatch", "committed", "stale-drop", "committed",
                   guard="epoch-stale", action="drop", message="TaskResult"),
        Transition("master-dispatch", "committed", "taint-invalidate",
                   "queued", action="invalidate-closure"),
        # Taint recompute: only the closure *root* gets an explicit
        # invalidate event; the rest of the invalidated closure re-enters
        # dispatch straight from `committed` — legal only at a strictly
        # fresher epoch, so a same-epoch double dispatch stays illegal.
        Transition("master-dispatch", "committed", "assign", "registered",
                   guard="fresh-epoch", action="recompute+send",
                   message="TaskAssign"),
        # -- per-worker availability machine -------------------------------
        Transition("master-worker", "active", "Heartbeat", "active",
                   action="renew-lease", message="Heartbeat"),
        Transition("master-worker", "active", "lease-expired", "active",
                   action="requeue"),
        Transition("master-worker", "active", "timeout-threshold",
                   "blacklisted", guard="not-last-worker",
                   action="blacklist+requeue"),
        Transition("master-worker", "active", "divergence-threshold",
                   "quarantined", action="quarantine+requeue"),
        Transition("master-worker", "active", "WorkerLeave", "departed",
                   action="requeue-live", message="WorkerLeave"),
        # -- fault-tolerance thread scan loop ------------------------------
        Transition("ft", "watching", "overtime-scan", "watching",
                   guard="deadline-passed", action="cancel+requeue"),
        Transition("ft", "watching", "lease-scan", "watching",
                   guard="lease-expired", action="cancel+requeue"),
        Transition("ft", "watching", "speculate-scan", "watching",
                   guard="straggler", action="speculate"),
        Transition("ft", "watching", "stall-scan", "watching",
                   guard="no-progress", action="abort"),
    )
    return ProtocolSpec(
        roles=(slave, master_control, master_dispatch, master_worker, ft),
        transitions=transitions,
        messages=wire_message_kinds(),
    )


# -- spec surgery (seeded-defect fixtures) --------------------------------------


def drop_transitions(
    spec: ProtocolSpec, role: str, source: str, event: str
) -> ProtocolSpec:
    """A copy of ``spec`` without the matching transitions (a 'forgot to
    handle it' defect for the selftest fixtures)."""
    kept = tuple(
        t
        for t in spec.transitions
        if not (t.role == role and t.source == source and t.event == event)
    )
    return replace(spec, transitions=kept)


def strip_guard(spec: ProtocolSpec, atom: str) -> ProtocolSpec:
    """A copy of ``spec`` with guard atom ``atom`` deleted everywhere (a
    'verification check removed' defect for the selftest fixtures)."""
    out: List[Transition] = []
    for t in spec.transitions:
        atoms = tuple(a for a in t.guard_atoms() if a != atom)
        out.append(replace(t, guard=",".join(atoms)))
    return replace(spec, transitions=tuple(out))


# -- static analyses over the spec ----------------------------------------------


def check_protocol_spec(
    spec: Optional[ProtocolSpec] = None, title: str = "protocol-spec"
) -> CheckReport:
    """Static verification of the protocol spec itself."""
    if spec is None:
        spec = build_protocol_spec()
    report = CheckReport(title=title)
    real_messages = set(wire_message_kinds())
    declared = set(spec.messages)

    # 1. Message vocabulary ⟷ real message classes.
    for missing in sorted(real_messages - declared):
        report.add(
            D.PROTOCOL_MESSAGE_MISMATCH,
            f"wire message {missing!r} exists in repro.comm.messages but the "
            "spec does not declare it",
            subject=missing,
        )
    for phantom in sorted(declared - real_messages):
        report.add(
            D.PROTOCOL_MESSAGE_MISMATCH,
            f"spec declares message {phantom!r} but no such Message class exists",
            subject=phantom,
        )
    referenced: Set[str] = set()
    for t in spec.transitions:
        report.checked += 1
        if t.message is not None:
            referenced.add(t.message)
            if t.message not in real_messages:
                report.add(
                    D.PROTOCOL_MESSAGE_MISMATCH,
                    f"transition {t.role}/{t.source} --{t.event}--> {t.target} "
                    f"references unknown message {t.message!r}",
                    subject=t.message,
                )
    for unused in sorted(declared & real_messages - referenced):
        report.add(
            D.PROTOCOL_MESSAGE_MISMATCH,
            f"message {unused!r} is declared but no transition sends or "
            "receives it — dead vocabulary or missing handler",
            subject=unused,
        )

    for role in spec.roles:
        trans = spec.transitions_for(role.name)
        # 2. Reachability: every declared state must be reachable from the
        # initial state along transitions.
        succs: Dict[str, Set[str]] = {s: set() for s in role.states}
        for t in trans:
            if t.source not in succs or t.target not in role.states:
                report.add(
                    D.PROTOCOL_UNREACHABLE_STATE,
                    f"transition {t.source} --{t.event}--> {t.target} uses a "
                    f"state not declared by role {role.name!r}",
                    subject=role.name,
                )
                continue
            succs[t.source].add(t.target)
        seen = {role.initial}
        frontier = [role.initial]
        while frontier:
            s = frontier.pop()
            for nxt in succs.get(s, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        for state in role.states:
            report.checked += 1
            if state not in seen:
                report.add(
                    D.PROTOCOL_UNREACHABLE_STATE,
                    f"state {state!r} of role {role.name!r} is unreachable "
                    f"from {role.initial!r}",
                    subject=f"{role.name}/{state}",
                )

        # 3. Unhandled (state, message) pairs: everything receivable must
        # be matched by a transition or an explicit ignore.
        ignores = set(role.ignores)
        handled: Set[Tuple[str, str]] = set()
        for t in trans:
            if t.message is not None:
                handled.add((t.source, t.message))
        for state, kinds in role.receivable:
            for kind in kinds:
                report.checked += 1
                if (state, kind) in handled or (state, kind) in ignores:
                    continue
                report.add(
                    D.PROTOCOL_UNHANDLED_MESSAGE,
                    f"role {role.name!r} can receive {kind!r} in state "
                    f"{state!r} but has neither a transition nor an "
                    "explicit ignore for it",
                    subject=f"{role.name}/{state}/{kind}",
                )

        # 4. Conflicting transitions: two enabled edges for the same
        # (state, event) whose guards are not mutually exclusive — the
        # lease-expiry × quarantine race class. Declared guards count as
        # exclusive only when every pair differs and none is empty.
        by_key: Dict[Tuple[str, str], List[Transition]] = {}
        for t in trans:
            by_key.setdefault((t.source, t.event), []).append(t)
        for (source, event), group in sorted(by_key.items()):
            report.checked += 1
            if len(group) < 2:
                continue
            guards = [t.guard for t in group]
            if "" in guards or len(set(guards)) < len(guards):
                targets = ", ".join(sorted({t.target for t in group}))
                report.add(
                    D.PROTOCOL_CONFLICT,
                    f"role {role.name!r} has {len(group)} transitions for "
                    f"({source!r}, {event!r}) with non-exclusive guards "
                    f"(targets: {targets}) — delivery order decides the "
                    "outcome",
                    subject=f"{role.name}/{source}/{event}",
                )

    # 5. Commit reachable without verification: walk each role from its
    # initial state over edges that perform no verification; a
    # commit-action edge leaving such a state must itself carry the
    # digest-verified guard.
    for role in spec.roles:
        trans = spec.transitions_for(role.name)
        unverified = {role.initial}
        frontier = [role.initial]
        while frontier:
            s = frontier.pop()
            for t in trans:
                if t.source != s:
                    continue
                if "digest-verified" in t.guard_atoms() or "verify" in t.action:
                    continue
                if t.target not in unverified:
                    unverified.add(t.target)
                    frontier.append(t.target)
        for t in trans:
            if "commit" not in t.action:
                continue
            report.checked += 1
            if t.source in unverified and "digest-verified" not in t.guard_atoms():
                report.add(
                    D.PROTOCOL_COMMIT_WITHOUT_VERIFY,
                    f"role {role.name!r} can reach commit transition "
                    f"{t.source} --{t.event}--> {t.target} without any "
                    "digest verification on the path or the edge",
                    subject=f"{role.name}/{t.source}/{t.event}",
                )
    return report


# -- trace conformance ----------------------------------------------------------

#: Obs-event kinds the per-dispatch machine consumes (everything else in
#: a telemetry stream is ignored here — other passes own those kinds).
_DISPATCH_KINDS = frozenset(
    ("assign", "result", "commit", "redistribute", "stale-drop", "taint-invalidate")
)
#: Kinds that permanently retire a worker.
_RETIRE_KINDS = frozenset(("blacklist", "quarantine", "worker-death", "worker-leave"))


@dataclass
class _DispatchState:
    """Replay state of one task's master-dispatch machine."""

    state: str = "queued"
    #: Epoch of the current/last registration (-1 before any assign).
    epoch: int = -1
    #: Highest epoch ever assigned (fresh-epoch guard).
    max_epoch: int = -1


def _guard_holds(guard: str, ev_epoch: int, mstate: _DispatchState) -> bool:
    for atom in (a.strip() for a in guard.split(",") if a.strip()):
        if atom == "fresh-epoch":
            if ev_epoch <= mstate.max_epoch:
                return False
        elif atom == "epoch-match":
            if ev_epoch != mstate.epoch:
                return False
        elif atom == "epoch-stale":
            if mstate.state == "registered":
                if ev_epoch >= mstate.epoch:
                    return False
            elif ev_epoch > mstate.epoch:
                return False
        # Non-evaluable atoms (digest-verified, scan conditions) are
        # assumed true: dedicated passes check them from metrics.
    return True


def check_protocol_conformance(
    events: Iterable[object],
    spec: Optional[ProtocolSpec] = None,
    *,
    strict: bool = True,
    title: str = "protocol-conformance",
) -> CheckReport:
    """Replay an obs event stream against the master-dispatch machine.

    ``events`` are duck-typed (``kind``, ``task_id``, ``epoch``,
    ``worker``, ``seq`` — :class:`~repro.obs.recorder.ObsEvent` or any
    stand-in). ``strict`` demands the stream's *order* respects the
    machine exactly — right for the simulated backend and the explorer,
    where a single-threaded event loop makes record order the true
    order. Real multi-threaded backends record some pairs racily (an FT
    thread's ``redistribute`` can be logged before the service thread's
    ``assign`` it chased), so ``strict=False`` checks only the
    order-insensitive core: no commit of a redistributed epoch, no
    double commit without an intervening taint invalidation, no commit
    of a never-assigned epoch.
    """
    if spec is None:
        spec = build_protocol_spec()
    report = CheckReport(title=title)
    # The spec models the *task-level* wire protocol; the same kinds
    # recur at subtask scope (the thread level inside one slave), which
    # is a different machine. Stand-ins without a scope default to task.
    stream = sorted(
        (
            e
            for e in events
            if getattr(e, "kind", None) is not None
            and getattr(e, "scope", "task") == "task"
        ),
        key=lambda e: getattr(e, "seq", 0),
    )
    if strict:
        _conform_strict(stream, spec, report)
    else:
        _conform_relaxed(stream, report)
    return report


def _conform_strict(
    stream: Sequence[object], spec: ProtocolSpec, report: CheckReport
) -> None:
    trans = spec.transitions_for("master-dispatch")
    machines: Dict[object, _DispatchState] = {}
    retired: Dict[int, str] = {}
    for ev in stream:
        kind = str(getattr(ev, "kind"))
        _w = getattr(ev, "worker", -1)
        worker = -1 if _w is None else int(_w)
        if kind in _RETIRE_KINDS:
            if worker >= 0:
                retired.setdefault(worker, kind)
            continue
        if kind not in _DISPATCH_KINDS:
            continue
        task = getattr(ev, "task_id", None)
        if task is None:
            continue
        epoch = int(getattr(ev, "epoch", -1))
        key = tuple(task) if isinstance(task, (list, tuple)) else task
        m = machines.setdefault(key, _DispatchState())
        report.checked += 1
        if kind == "assign" and worker in retired:
            report.add(
                D.PROTOCOL_ILLEGAL_TRANSITION,
                f"task {key} epoch {epoch} assigned to worker {worker} after "
                f"its {retired[worker]} (seq {getattr(ev, 'seq', '?')})",
                subject=f"worker:{worker}",
            )
        chosen: Optional[Transition] = None
        for t in trans:
            if t.source != m.state or t.event != kind:
                continue
            if _guard_holds(t.guard, epoch, m):
                chosen = t
                break
        if chosen is None:
            report.add(
                D.PROTOCOL_ILLEGAL_TRANSITION,
                f"no legal transition for event {kind!r} (epoch {epoch}) in "
                f"state {m.state!r} of task {key} (machine epoch {m.epoch}, "
                f"seq {getattr(ev, 'seq', '?')})",
                subject=f"task:{key}",
            )
            continue
        m.state = chosen.target
        if kind == "assign":
            m.epoch = epoch
            m.max_epoch = max(m.max_epoch, epoch)


def _conform_relaxed(stream: Sequence[object], report: CheckReport) -> None:
    assigned: Set[Tuple[object, int]] = set()
    redistributed: Set[Tuple[object, int]] = set()
    committed_at: Dict[object, int] = {}
    invalidated_after: Set[object] = set()
    for ev in stream:
        kind = str(getattr(ev, "kind"))
        task = getattr(ev, "task_id", None)
        if task is None:
            continue
        key = tuple(task) if isinstance(task, (list, tuple)) else task
        epoch = int(getattr(ev, "epoch", -1))
        if kind == "assign":
            assigned.add((key, epoch))
        elif kind == "redistribute":
            redistributed.add((key, epoch))
        elif kind == "taint-invalidate":
            invalidated_after.add(key)
    for ev in stream:
        kind = str(getattr(ev, "kind"))
        task = getattr(ev, "task_id", None)
        if kind == "taint-invalidate" and task is not None:
            committed_at.pop(
                tuple(task) if isinstance(task, (list, tuple)) else task, None
            )
            continue
        if kind != "commit" or task is None:
            continue
        key = tuple(task) if isinstance(task, (list, tuple)) else task
        epoch = int(getattr(ev, "epoch", -1))
        _w = getattr(ev, "worker", -1)
        worker = -1 if _w is None else int(_w)
        report.checked += 1
        if worker >= 0 and (key, epoch) not in assigned:
            report.add(
                D.PROTOCOL_ILLEGAL_TRANSITION,
                f"task {key} epoch {epoch} committed by worker {worker} but "
                "was never assigned at that epoch",
                subject=f"task:{key}",
            )
        if (key, epoch) in redistributed:
            report.add(
                D.PROTOCOL_ILLEGAL_TRANSITION,
                f"task {key} epoch {epoch} committed after the same epoch "
                "was redistributed — the register-table cancel/finish "
                "exclusivity was violated",
                subject=f"task:{key}",
            )
        if key in committed_at:
            report.add(
                D.PROTOCOL_ILLEGAL_TRANSITION,
                f"task {key} committed twice (epochs {committed_at[key]} and "
                f"{epoch}) with no taint invalidation between",
                subject=f"task:{key}",
            )
        committed_at[key] = epoch


# -- conformance of real observed runs -------------------------------------------


def conformance_cases(size: int = 24, seed: int = 0) -> List[Tuple[str, CheckReport]]:
    """Run small observed instances and replay their streams at the spec.

    The simulated backend is single-threaded, so its record order is the
    true event order and the full strict machine applies; the threads
    backend records some pairs racily across service/FT threads, so it
    gets the order-insensitive relaxed rules. Both on one wavefront
    instance sized for seconds, not minutes. ``repro check --protocol``
    runs these after the static spec analyses.
    """
    from repro import EasyHPS
    from repro.algorithms.edit_distance import EditDistance
    from repro.runtime.config import RunConfig

    problem = EditDistance.random(size, seed=seed)
    block = max(2, size // 4)
    out: List[Tuple[str, CheckReport]] = []
    for backend, strict in (("simulated", True), ("threads", False)):
        config = RunConfig(
            nodes=3,
            threads_per_node=2,
            backend=backend,
            process_partition=block,
            observe=True,
        )
        run = EasyHPS(config).run(problem)
        events = run.report.events or ()
        out.append(
            (
                f"protocol:conformance:{backend}",
                check_protocol_conformance(
                    events,
                    strict=strict,
                    title=f"conformance:{backend}",
                ),
            )
        )
    return out
