"""Batch verification of everything this package ships.

``run_builtin_checks`` sweeps the whole built-in surface — every library
pattern at several shapes (including the reversed-row and diagonal
variants the triangular partition relies on), every bundled algorithm's
cell-level pattern, its process-level partition, and one thread-level
sub-partition — through the static verifier. This is what
``repro check --all-builtin`` and the parametrized test suite run; a new
pattern or algorithm is covered automatically once registered.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.check.diagnostics import CheckReport, merge_reports
from repro.check.pattern_check import check_partition, check_pattern
from repro.dag.partition import Partition
from repro.dag.pattern import DAGPattern

#: name -> zero-arg factory for every built-in pattern variant checked.
def builtin_pattern_cases() -> Dict[str, Callable[[], DAGPattern]]:
    from repro.algorithms.floyd_warshall import FloydWarshallPattern
    from repro.dag.library import (
        ChainPattern,
        Full2DPattern,
        IndependentGridPattern,
        RowColPrefixPattern,
        TriangularPattern,
        WavefrontPattern,
    )

    return {
        "wavefront-6x9": lambda: WavefrontPattern(6, 9),
        "wavefront-1x1": lambda: WavefrontPattern(1, 1),
        "wavefront-reversed-7x5": lambda: WavefrontPattern(7, 5, row_reversed=True),
        "wavefront-no-diag-5x5": lambda: WavefrontPattern(5, 5, diagonal_data_dep=False),
        "rowcol-prefix-6x8": lambda: RowColPrefixPattern(6, 8),
        "rowcol-prefix-reversed-8x6": lambda: RowColPrefixPattern(8, 6, row_reversed=True),
        "triangular-9": lambda: TriangularPattern(9),
        "triangular-1": lambda: TriangularPattern(1),
        "full-2d-5x7": lambda: Full2DPattern(5, 7),
        "independent-4x6": lambda: IndependentGridPattern(4, 6),
        "chain-12": lambda: ChainPattern(12),
        "floyd-warshall-4": lambda: FloydWarshallPattern(4),
        # Large enough to exercise the sampled (non-exhaustive) path.
        "wavefront-large-600x600": lambda: WavefrontPattern(600, 600),
    }


def builtin_algorithm_cases(size: int = 24, seed: int = 0) -> Dict[str, Callable[[], object]]:
    """name -> factory for a small instance of every bundled algorithm."""
    from repro.cli import ALGORITHMS, _register_algorithms

    _register_algorithms()
    return {
        name: (lambda factory=factory: factory(size, seed))
        for name, factory in sorted(ALGORITHMS.items())
    }


def check_algorithm(problem: Any, *, block: int = 7, thread_block: int = 3) -> CheckReport:
    """Verify one algorithm's pattern, partition, and a sub-partition."""
    reports: List[CheckReport] = []
    pattern = problem.pattern()
    reports.append(check_pattern(pattern))
    partition: Partition = problem.build_partition(block)
    reports.append(check_partition(partition))
    # One thread-level sub-partition: the first schedulable block.
    first = next(iter(partition.block_ids()))
    reports.append(check_partition(partition.sub_partition(first, thread_block)))
    merged = merge_reports(f"algorithm-check({problem.name})", reports)
    return merged


def run_builtin_checks(*, algo_size: int = 24, seed: int = 0) -> List[Tuple[str, CheckReport]]:
    """Verify every built-in pattern and algorithm; returns (name, report)."""
    from repro.check.ast_lint import check_clock_discipline, check_lock_discipline
    from repro.check.protocol import check_protocol_spec

    results: List[Tuple[str, CheckReport]] = []
    for name, factory in builtin_pattern_cases().items():
        results.append((f"pattern:{name}", check_pattern(factory(), samples=128)))
    for name, factory in builtin_algorithm_cases(algo_size, seed).items():
        results.append((f"algorithm:{name}", check_algorithm(factory())))
    # Source-level discipline lints and the wire-protocol spec analyses
    # ride every --all-builtin sweep: they are static (no run needed) and
    # cheap next to the pattern checks above.
    results.append(("lint:lock-discipline", check_lock_discipline()))
    results.append(("lint:clock-discipline", check_clock_discipline()))
    results.append(("protocol:spec", check_protocol_spec()))
    return results
