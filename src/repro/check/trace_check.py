"""Happens-before validation of runtime scheduling traces.

The master/slave protocol promises (paper Figs 9-10): a sub-task is
*assigned* only after every data dependency's result was *committed* to
master state; each sub-task's result is committed exactly once; results
from cancelled (timed-out) dispatches are dropped, never committed. This
module checks those promises against an event trace.

Event schema (``SchedEvent``): ``kind`` is one of

- ``assign``       — a sub-task dispatch (register-table registration);
- ``commit``       — the master merged the sub-task's result into state;
- ``redistribute`` — fault tolerance cancelled an epoch and re-queued;
- ``stale-drop``   — a result from a cancelled epoch arrived and was dropped.

Events carry ``(task_id, epoch, worker, seq, time)``. ``seq`` is a
per-recorder monotone counter assigned under the recorder's lock; because
every producer records *inside* the runtime's own critical sections, the
``seq`` order is a linearization consistent with the real happens-before
order established by the runtime's locks — which is what makes the
single-log vector-clock check below sound.

:class:`TraceRecorder` is the cheap thread-safe collector the runtime and
the simulator both feed; :func:`check_trace` is the validator. Enable end
to end with ``RunConfig(verify=True)`` or ``REPRO_VERIFY=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from repro.check import diagnostics as D
from repro.check.diagnostics import CheckReport
from repro.check.lock_lint import make_lock
from repro.dag.pattern import DAGPattern

if TYPE_CHECKING:
    # Type-only: importing repro.comm at runtime would cycle through
    # repro.obs right back into this module when ``repro.check`` is the
    # first package imported.
    from repro.comm.messages import TaskId

EVENT_KINDS = ("assign", "commit", "redistribute", "stale-drop")


@dataclass(frozen=True)
class SchedEvent:
    """One scheduling event observed by a :class:`TraceRecorder`."""

    kind: str
    task_id: TaskId
    epoch: int
    worker: int = -1
    seq: int = 0
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"event kind must be one of {EVENT_KINDS}, got {self.kind!r}")

    def __str__(self) -> str:
        return (
            f"#{self.seq} {self.kind} task={self.task_id} epoch={self.epoch} "
            f"worker={self.worker} t={self.time:.6f}"
        )


class TraceRecorder:
    """Thread-safe append-only scheduling trace.

    Recording happens inside the runtime's own critical sections, so the
    sequence numbers this class assigns form a linearization of the run.
    The recorder is cheap enough to leave on in tests: one lock
    acquisition and a tuple append per scheduling event.
    """

    def __init__(self) -> None:
        self._events: List[SchedEvent] = []
        self._lock = make_lock("check.trace_recorder")

    def record(
        self, kind: str, task_id: TaskId, epoch: int, worker: int = -1, time: float = 0.0
    ) -> SchedEvent:
        with self._lock:
            ev = SchedEvent(
                kind=kind, task_id=task_id, epoch=epoch, worker=worker,
                seq=len(self._events), time=time,
            )
            self._events.append(ev)
            return ev

    def events(self) -> Tuple[SchedEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def check_trace(
    events: Iterable[SchedEvent],
    pattern: DAGPattern,
    *,
    require_complete: bool = True,
    title: str = "trace-check",
) -> CheckReport:
    """Validate a scheduling trace against the DAG it claims to execute.

    Violations reported (all ``error`` severity):

    - ``early-assign``     — a task dispatched before some *data*
      dependency's result was committed (the race that corrupts cells);
    - ``early-commit``     — a result committed before a topological
      predecessor's commit;
    - ``duplicate-commit`` — a second commit for the same task
      (fault-tolerance race: two epochs both landed);
    - ``stale-commit``     — a commit from an epoch that fault tolerance
      had already cancelled;
    - ``lost-update``      — with ``require_complete``, a task of the
      pattern that was never committed (or never even assigned);
    - ``unknown-task``     — an event naming a vertex outside the pattern.
    """
    report = CheckReport(title=title)
    committed: Dict[TaskId, int] = {}  # task -> seq of first commit
    assigned: Set[Tuple[TaskId, int]] = set()
    cancelled: Set[Tuple[TaskId, int]] = set()
    data_deps: Dict[TaskId, Tuple[TaskId, ...]] = {}
    topo_deps: Dict[TaskId, Tuple[TaskId, ...]] = {}

    def deps(task: TaskId) -> Optional[Tuple[Tuple[TaskId, ...], Tuple[TaskId, ...]]]:
        if task not in data_deps:
            if not pattern.contains(task):
                return None
            data_deps[task] = tuple(pattern.data_predecessors(task))
            topo_deps[task] = tuple(pattern.predecessors(task))
        return data_deps[task], topo_deps[task]

    for ev in events:
        report.checked += 1
        resolved = deps(ev.task_id)
        if resolved is None:
            report.add(D.UNKNOWN_TASK, f"event names a vertex outside the pattern: {ev}")
            continue
        dd, td = resolved
        if ev.kind == "assign":
            assigned.add((ev.task_id, ev.epoch))
            missing = [p for p in dd if p not in committed]
            if missing:
                report.add(
                    D.EARLY_ASSIGN,
                    f"assigned before data dependencies committed: {ev} "
                    f"(missing {missing[:4]}{'...' if len(missing) > 4 else ''})",
                    repr(ev.task_id),
                )
        elif ev.kind == "commit":
            if ev.task_id in committed:
                report.add(
                    D.DUPLICATE_COMMIT,
                    f"second commit for an already-committed task: {ev}",
                    repr(ev.task_id),
                )
                continue
            if (ev.task_id, ev.epoch) in cancelled:
                report.add(
                    D.STALE_COMMIT,
                    f"commit from an epoch fault tolerance cancelled: {ev}",
                    repr(ev.task_id),
                )
            missing = [p for p in td if p not in committed]
            if missing:
                report.add(
                    D.EARLY_COMMIT,
                    f"committed before predecessors committed: {ev} "
                    f"(missing {missing[:4]}{'...' if len(missing) > 4 else ''})",
                    repr(ev.task_id),
                )
            committed[ev.task_id] = ev.seq
        elif ev.kind == "redistribute":
            cancelled.add((ev.task_id, ev.epoch))
        elif ev.kind == "stale-drop":
            pass  # informational: a drop is the *correct* outcome

    if require_complete:
        for vid in pattern.vertices():
            if vid not in committed:
                ever_assigned = any(t == vid for t, _ in assigned)
                detail = "assigned but its result never committed" if ever_assigned else (
                    "never assigned at all"
                )
                report.add(D.LOST_UPDATE, f"task {vid!r} {detail}", repr(vid))
    return report
