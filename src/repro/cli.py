"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``      — version, pattern library, bundled algorithms, backends;
- ``run``       — execute one algorithm on a real backend and print the
                  result plus the run report;
- ``simulate``  — replay an Experiment_X_Y on the simulated cluster,
                  optionally rendering the schedule as a Gantt chart;
- ``stats``     — digest a telemetry trace file (``--trace-out``):
                  per-worker busy/idle, bytes on wire, fault counts;
- ``perf``      — profile trace files (critical path, scheduling
                  efficiency, per-lane time attribution, link-model
                  calibration, what-if replay) and/or gate a fresh
                  measurement against ``BENCH_BASELINE.json``
                  (``--against ... --check`` exits 3 on regression);
- ``check``     — run the static verifier (:mod:`repro.check`) over
                  built-in patterns/algorithms, one pattern, or one
                  algorithm; ``--selftest`` proves the checkers catch
                  seeded defects. Exit code 1 on any diagnostic;
- ``chaos``     — seeded fault campaign (:mod:`repro.chaos`): N runs per
                  backend under message/worker/task faults, each
                  asserting oracle-equal-or-clean-abort plus the trace
                  invariants. Exit code 1 when the invariant breaks;
                  ``--artifact-dir`` saves failing runs' Perfetto traces.
                  ``--kill-master-at P`` switches to kill-master mode:
                  crash the journaling master at a seeded commit within
                  the first P fraction of the run, resume the journal,
                  and assert oracle-match plus the resume invariants.
                  ``--sdc`` switches to silent-data-corruption mode:
                  lying workers and digest-evading bitflips under the
                  ``--integrity`` defense (default ``audit``), asserting
                  the run still converges oracle-identical or aborts
                  cleanly — with ``--integrity off`` the same seeds
                  demonstrate the wrong answers the defenses prevent;
- ``resume``    — reconstruct master state from a write-ahead commit
                  journal (``repro run --journal run.journal``) and
                  continue the run to completion (:mod:`repro.durable`).

Exit codes: 0 success; 1 failed checks / campaign violations; 2 argparse
usage errors; **3** a run that ended in
:class:`~repro.utils.errors.FaultToleranceExhausted` (the retry budget or
every worker was exhausted — a clean, reported abort, not a traceback).
Resumed runs use the same contract: ``repro resume`` exits 0 when the
continued run completes (including a journal that was already complete)
and 3 when the continuation itself exhausts fault tolerance. A
truncated or corrupted journal tail is reported as a diagnostic and the
resume falls back to the last intact record — never a traceback.

``run`` and ``simulate`` accept ``--trace-out out.json``: the run records
the full task-lifecycle telemetry (:mod:`repro.obs`) and exports it as
Chrome/Perfetto trace-event JSON — open https://ui.perfetto.dev and drop
the file in, or feed it back to ``repro stats``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro import EasyHPS, RunConfig, __version__
from repro.algorithms.problem import DPProblem
from repro.utils.errors import FaultToleranceExhausted

#: Exit code of ``run``/``simulate``/``chaos`` runs that ended in a clean
#: :class:`FaultToleranceExhausted` abort (documented above).
EXIT_FAULT_EXHAUSTED = 3

#: Exit code of ``repro submit`` when the daemon shed the job (bounded
#: queue full, daemon draining, or invalid spec) — the structured
#: rejection is printed; retrying later is the client's call.
EXIT_SHED = 4

#: name -> factory(size, seed) for CLI-runnable algorithm instances.
ALGORITHMS: Dict[str, Callable[[int, int], DPProblem]] = {}


def _register_algorithms() -> None:
    from repro.algorithms import (
        CYKParsing,
        EditDistance,
        FloydWarshall,
        Knapsack,
        LongestCommonSubsequence,
        MatrixChainOrder,
        NeedlemanWunsch,
        Nussinov,
        OptimalBST,
        SmithWatermanGG,
        ViterbiDecoding,
    )

    ALGORITHMS.update(
        {
            "edit-distance": lambda size, seed: EditDistance.random(size, size, seed=seed),
            "lcs": lambda size, seed: LongestCommonSubsequence.random(size, size, seed=seed),
            "needleman-wunsch": lambda size, seed: NeedlemanWunsch.random(size, size, seed=seed),
            "swgg": lambda size, seed: SmithWatermanGG.random(size, seed=seed),
            "nussinov": lambda size, seed: Nussinov.random(size, seed=seed),
            "matrix-chain": lambda size, seed: MatrixChainOrder.random(size, seed=seed),
            "cyk": lambda size, seed: CYKParsing.random(size, seed=seed),
            "viterbi": lambda size, seed: ViterbiDecoding.random(size, seed=seed),
            "floyd-warshall": lambda size, seed: FloydWarshall.random(size, seed=seed),
            "optimal-bst": lambda size, seed: OptimalBST.random(size, seed=seed),
            "knapsack": lambda size, seed: Knapsack.random(size, seed=seed),
        }
    )


def cmd_info(_args: argparse.Namespace) -> int:
    from repro.dag.library import PATTERN_LIBRARY
    from repro.runtime.config import BACKENDS
    from repro.schedulers.policy import POLICIES

    _register_algorithms()
    print(f"repro {__version__} — EasyHPS reproduction (IPPS 2013)")
    print(f"  backends   : {', '.join(BACKENDS)}")
    print(f"  schedulers : {', '.join(POLICIES)}")
    print(f"  patterns   : {', '.join(sorted(PATTERN_LIBRARY))}")
    print(f"  algorithms : {', '.join(sorted(ALGORITHMS))}")
    return 0


def _build_problem(args: argparse.Namespace) -> DPProblem:
    _register_algorithms()
    try:
        factory = ALGORITHMS[args.algo]
    except KeyError:
        raise SystemExit(
            f"unknown algorithm {args.algo!r}; choose from {', '.join(sorted(ALGORITHMS))}"
        )
    return factory(args.size, args.seed)


def _export_trace(report, trace_out: str | None, extra_meta: dict | None = None) -> None:
    """Write the report's telemetry to a Perfetto-loadable trace file.

    ``extra_meta`` carries the workload coordinates (size, seed,
    partition) that let ``repro perf`` rebuild the DP DAG from the trace
    file alone for critical-path analysis.
    """
    if not trace_out:
        return
    if report.events is None:
        print("no telemetry recorded; nothing written", file=sys.stderr)
        return
    from repro.obs import write_trace

    meta = {
        "backend": report.backend,
        "algorithm": report.algorithm,
        "scheduler": report.scheduler,
        "nodes": report.nodes,
    }
    if extra_meta:
        meta.update(extra_meta)
    write_trace(trace_out, report.events, metrics=report.metrics, meta=meta)
    print(f"trace written: {trace_out} ({len(report.events)} events; "
          f"open at https://ui.perfetto.dev or `repro stats {trace_out}`)")


def _workload_meta(args: argparse.Namespace, config: RunConfig, problem: DPProblem) -> dict:
    """The workload coordinates ``repro perf`` needs to rebuild the DAG."""
    proc, thread = config.partitions_for(problem)
    return {
        "size": args.size,
        "seed": args.seed,
        "process_partition": list(proc),
        "thread_partition": list(thread),
    }


def cmd_run(args: argparse.Namespace) -> int:
    problem = _build_problem(args)
    overrides = {}
    if args.integrity is not None:
        overrides["integrity"] = args.integrity
    if args.audit_fraction is not None:
        overrides["audit_fraction"] = args.audit_fraction
    config = RunConfig(
        nodes=args.nodes,
        threads_per_node=args.threads,
        backend=args.backend,
        scheduler=args.scheduler,
        verify=args.verify,
        observe=args.observe or bool(args.trace_out),
        journal_path=args.journal,
        **overrides,
    )
    run = EasyHPS(config).run(problem)
    print(run.report.summary())
    print(f"result: {run.value!r}"[:500])
    if args.journal:
        print(f"journal written: {args.journal} (continue with `repro resume {args.journal}`)")
    _export_trace(run.report, args.trace_out, _workload_meta(args, config, problem))
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue a journaled run: ``repro resume run.journal``.

    Exits 0 when the continued run completes (a journal that already
    covers the whole DAG short-circuits to the recovered result) and 3
    when the continuation exhausts fault tolerance — the same contract
    as ``repro run``.
    """
    from dataclasses import replace

    from repro.durable import recover
    from repro.utils.errors import JournalError

    try:
        rec = recover(args.journal)
    except JournalError as exc:
        raise SystemExit(f"cannot resume {args.journal!r}: {exc}") from exc
    print(rec.summary())
    if rec.truncated:
        # A torn tail (master died mid-append) is expected after a hard
        # kill; the scan already fell back to the last intact record.
        print(f"note: {rec.diagnostic}", file=sys.stderr)
    overrides = {}
    if args.backend:
        overrides["backend"] = args.backend
    if args.observe or args.trace_out:
        overrides["observe"] = True
    config = replace(rec.config, **overrides) if overrides else rec.config
    run = EasyHPS(config).run(rec.problem, resume=rec)
    print(run.report.summary())
    print(f"result: {run.value!r}"[:500])
    if args.check_oracle:
        if run.state is None:
            print("oracle check skipped: backend computes no state", file=sys.stderr)
        else:
            # The oracle must reuse the journaled run's partition and
            # integrity mode: the state diff is decomposition-agnostic,
            # but the run-digest fold is over per-*block* boundary
            # digests, so a different process_partition folds different
            # payloads even for an identical final state.
            oracle = EasyHPS(
                RunConfig(
                    backend="serial",
                    process_partition=rec.config.process_partition,
                    thread_partition=rec.config.thread_partition,
                    integrity=rec.config.integrity,
                )
            ).run(rec.problem)
            import numpy as np

            mismatch = [
                key for key in sorted(oracle.state)
                if not np.array_equal(oracle.state[key], run.state[key])
            ]
            if mismatch:
                print(f"ORACLE MISMATCH in state keys {mismatch}", file=sys.stderr)
                return 1
            print("oracle check: resumed state identical to serial oracle")
            # The rolling run digest is epoch-free and order-independent,
            # so the resumed fold (journal prefix + live commits) must
            # equal a fresh serial fold of the same instance bit-for-bit.
            ours, theirs = run.report.run_digest, oracle.report.run_digest
            if ours is not None and theirs is not None:
                if ours != theirs:
                    print(
                        f"RUN DIGEST MISMATCH: resumed {ours} != oracle {theirs}",
                        file=sys.stderr,
                    )
                    return 1
                print(f"oracle check: run digest matches ({ours})")
    _export_trace(run.report, args.trace_out)
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Fit the simulator's node rate to this machine's real kernels."""
    from repro.analysis.calibration import calibrate_node, calibration_report

    problem = _build_problem(args)
    proc, thread = problem.default_partition_sizes()
    spec, samples = calibrate_node(problem, proc, thread, repeats=args.repeats)
    print(calibration_report(samples))
    print(f"calibrated NodeSpec: flops_per_second={spec.flops_per_second:.4g}")
    print("use it via RunConfig(cluster=ClusterSpec(compute_nodes=(spec, ...)))")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    problem = _build_problem(args)
    config = RunConfig.experiment(
        args.nodes,
        args.cores,
        scheduler=args.scheduler,
        trace=args.gantt,
        verify=args.verify,
        observe=args.observe or bool(args.trace_out),
    )
    run = EasyHPS(config).run(problem)
    print(run.report.summary())
    if args.gantt and run.report.trace:
        from repro.analysis.gantt import render_gantt

        print(render_gantt(run.report.trace, width=72, makespan=run.report.makespan))
    _export_trace(run.report, args.trace_out, _workload_meta(args, config, problem))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Digest a saved telemetry trace: ``repro stats trace.json``."""
    from repro.obs import read_trace, text_summary

    try:
        events, metrics, meta = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read trace {args.trace!r}: {exc}") from exc
    title = "run stats"
    if meta:
        bits = [str(meta.get(k)) for k in ("algorithm", "backend", "scheduler") if meta.get(k)]
        if bits:
            title = "/".join(bits)
    print(text_summary(events, metrics, title=title))
    return 0


def _pattern_from_meta(meta: dict | None):
    """Rebuild the trace's process-level DAG pattern from its workload
    metadata, or None when the trace predates the metadata (the profile
    then skips critical-path analysis instead of failing)."""
    if not meta:
        return None
    algo = meta.get("algorithm")
    size = meta.get("size")
    pp = meta.get("process_partition")
    if algo is None or size is None or pp is None:
        return None
    _register_algorithms()
    factory = ALGORITHMS.get(str(algo))
    if factory is None:
        return None
    try:
        problem = factory(int(size), int(meta.get("seed", 0)))
        shape = tuple(int(v) for v in pp) if isinstance(pp, (list, tuple)) else int(pp)
        return problem.build_partition(shape).abstract
    except Exception as exc:  # noqa: BLE001 - diagnostics beat a traceback here
        print(f"cannot rebuild DAG from trace metadata: {exc}", file=sys.stderr)
        return None


def cmd_perf(args: argparse.Namespace) -> int:
    """Profile traces and/or gate against the performance trajectory.

    ``repro perf trace.json ...`` prints, per trace: the critical path
    and scheduling efficiency, the per-lane time-attribution table, the
    queue-wait distribution, a link-model fit vs the simulator's
    default, and what-if replay bounds.

    ``repro perf --against BENCH_BASELINE.json [--check] [--write]``
    measures the standard workload and compares; ``--check`` exits
    3 on regression (0 when clean), ``--write`` appends the measurement
    as a new trajectory entry.
    """
    from repro.analysis.calibration import fit_link, link_fit_report, link_samples_from_events
    from repro.cluster.network import INFINIBAND_QDR
    from repro.obs import read_trace
    from repro.obs.prof import build_profile, format_perf_report
    from repro.utils.errors import ConfigError

    if not args.traces and not args.against:
        raise SystemExit("nothing to do: give trace files and/or --against BASELINE")

    for path in args.traces:
        try:
            events, _metrics, meta = read_trace(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read trace {path!r}: {exc}") from exc
        pattern = _pattern_from_meta(meta)
        title = f"perf {path}"
        if meta:
            bits = [str(meta.get(k)) for k in ("algorithm", "backend") if meta.get(k)]
            if bits:
                title = f"perf {path} [{'/'.join(bits)}]"
        prof = build_profile(events, pattern)
        print(format_perf_report(prof, title=title, pattern=pattern))
        samples = link_samples_from_events(events)
        try:
            fit_link(samples)
        except ConfigError:
            pass  # too few / degenerate samples; skip the link section
        else:
            print(link_fit_report(samples, reference=INFINIBAND_QDR))
            print("  (reference = the simulator's default InfiniBand QDR link)")
        print()

    if args.against:
        from repro.analysis import trajectory

        measured = trajectory.measure()
        print(trajectory.format_measurement(measured))
        if args.write:
            entry = trajectory.append_entry(args.against, label=args.label, measured=measured)
            print(f"recorded entry {entry['label']!r} -> {args.against}")
        max_ms = (
            args.max_makespan_regress
            if args.max_makespan_regress is not None
            else trajectory.DEFAULT_MAKESPAN_REGRESS
        )
        max_b = (
            args.max_bytes_regress
            if args.max_bytes_regress is not None
            else trajectory.DEFAULT_BYTES_REGRESS
        )
        try:
            result = trajectory.check_against(
                args.against,
                max_makespan_regress=max_ms,
                max_bytes_regress=max_b,
                measured=measured,
            )
        except ConfigError as exc:
            raise SystemExit(str(exc)) from exc
        print(result.describe())
        if args.check and not result.ok:
            return EXIT_FAULT_EXHAUSTED
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Static verification; exit 0 iff everything checked out clean."""
    from repro.check.runner import (
        builtin_algorithm_cases,
        check_algorithm,
        run_builtin_checks,
    )

    failed = 0
    checked = 0

    def show(name: str, report) -> None:
        nonlocal failed, checked
        checked += 1
        status = "ok" if report.ok else "FAIL"
        print(f"  {status:4s} {name}  ({report.checked} checks)")
        if not report.ok:
            failed += 1
            for d in report.diagnostics:
                print(f"       [{d.code}] {d.subject}: {d.message}"[:200])

    if args.selftest:
        from repro.check.fixtures import run_selftest

        print("checker self-test (seeded defects must be detected):")
        for name, code, detected in run_selftest():
            checked += 1
            status = "ok" if detected else "MISS"
            print(f"  {status:4s} {name}  (expects [{code}])")
            if not detected:
                failed += 1
    elif args.pattern is not None:
        from repro.dag.library import PATTERN_LIBRARY, get_pattern

        from repro.utils.errors import PatternError

        if args.pattern not in PATTERN_LIBRARY:
            raise SystemExit(
                f"unknown pattern {args.pattern!r}; library has {sorted(PATTERN_LIBRARY)}"
            )
        try:
            if args.pattern in ("triangular", "chain"):
                pattern = get_pattern(args.pattern, args.size)
            else:
                pattern = get_pattern(args.pattern, args.size, args.size)
        except PatternError as exc:
            raise SystemExit(f"cannot build pattern {args.pattern!r}: {exc}") from exc
        show(f"pattern:{args.pattern}-{args.size}", pattern.check())
    elif args.algo is not None:
        cases = builtin_algorithm_cases(args.size, args.seed)
        if args.algo not in cases:
            raise SystemExit(
                f"unknown algorithm {args.algo!r}; choose from {', '.join(sorted(cases))}"
            )
        show(f"algorithm:{args.algo}", check_algorithm(cases[args.algo]()))
    elif args.protocol:
        from repro.check.protocol import check_protocol_spec, conformance_cases

        show("protocol:spec", check_protocol_spec())
        for name, report in conformance_cases(size=args.size, seed=args.seed):
            show(name, report)
    elif args.explore or args.replay is not None:
        from repro.check.explore import (
            ExploreConfig,
            check_exploration,
            replay_counterexample,
            scenario_by_name,
        )

        rows, cols = args.explore_grid
        cfg = ExploreConfig(rows=rows, cols=cols, workers=args.explore_workers)
        if args.replay is not None:
            from repro.obs.export import read_trace

            try:
                _events, _metrics, meta = read_trace(args.replay)
                scenario = scenario_by_name(cfg, str(meta["scenario"]))
                choices = [int(c) for c in meta["choices"]]
            except (OSError, ValueError, KeyError) as exc:
                raise SystemExit(
                    f"cannot replay {args.replay!r}: {exc}"
                ) from exc
            show(
                f"explore:replay:{scenario.name}",
                replay_counterexample(cfg, scenario, choices),
            )
        else:
            report, result = check_exploration(cfg, artifact_dir=args.artifact_dir)
            print(f"  exploration: {result.summary()}")
            for ce in result.violations:
                where = f" -> {ce.trace_path}" if ce.trace_path else ""
                print(f"       counterexample {ce.scenario} choices={list(ce.choices)}{where}")
            show("protocol:explore", report)
    else:  # --all-builtin (the default)
        for name, report in run_builtin_checks(algo_size=args.size, seed=args.seed):
            show(name, report)

    print(f"{checked} targets checked, {failed} failed")
    return 0 if failed == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant scheduler daemon until SIGTERM drains it."""
    import signal
    import threading

    from repro.serve.daemon import ServeDaemon
    from repro.serve.ipc import ServeServer
    from repro.serve.pressure import ResourceWatermarks

    import os as _os

    wal_dir = _os.path.dirname(args.journal) if args.journal else "."
    watermarks = ResourceWatermarks(
        min_disk_bytes=int(args.min_disk_mb * 1024 * 1024),
        min_memory_bytes=int(args.min_memory_mb * 1024 * 1024),
        max_fd_fraction=args.max_fd_fraction,
        path=wal_dir or ".",
    )
    daemon = ServeDaemon(
        workers=args.workers,
        queue_cap=args.queue_cap,
        policy=args.policy,
        policy_seed=args.policy_seed,
        wal_path=args.journal,
        job_journal_dir=args.job_journal_dir,
        resume=args.resume,
        fsync=args.fsync,
        grow_running=args.grow,
        threads_per_node=args.threads,
        task_timeout=args.task_timeout,
        job_timeout=args.job_timeout,
        keep_states=False,
        watermarks=watermarks,
        wal_compact_interval=args.wal_compact_interval,
        wal_keep_history=args.wal_keep_history,
    )
    daemon.start()
    server = ServeServer(daemon, args.socket)
    server.start()
    if daemon.resumed_jobs:
        print(f"resumed {daemon.resumed_jobs} unfinished jobs from {args.journal}")
    print(f"repro serve: listening on {args.socket} "
          f"({args.workers} workers, queue cap {args.queue_cap}, "
          f"policy {args.policy})", flush=True)

    stop = threading.Event()

    def _drain_signal(_signum: int, _frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _drain_signal)
    signal.signal(signal.SIGINT, _drain_signal)
    while not stop.wait(0.2):
        pass
    print("repro serve: draining (admission closed, finishing running jobs)",
          flush=True)
    clean = daemon.drain(timeout=args.drain_timeout)
    server.stop()
    print(f"repro serve: drained {'cleanly' if clean else 'WITH STRAGGLERS'}",
          flush=True)
    return 0 if clean else 1


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running daemon; exit 0 accepted, 4 shed."""
    import json as _json

    from repro.serve.ipc import submit_job

    spec = {
        "tenant": args.tenant,
        "algo": args.algo,
        "size": args.size,
        "seed": args.seed,
        "nodes": args.nodes,
        "scheduler": args.scheduler,
        "max_retries": args.max_retries,
    }
    if args.deadline is not None:
        spec["deadline"] = args.deadline
    if args.integrity is not None:
        spec["integrity"] = args.integrity
    decision = submit_job(args.socket, spec)
    print(_json.dumps(decision))
    return 0 if decision.get("accepted") else EXIT_SHED


def cmd_jobs(args: argparse.Namespace) -> int:
    """List a running daemon's jobs (or ``--stats`` per-tenant metrics)."""
    import json as _json

    from repro.serve.ipc import daemon_stats, list_jobs

    if args.stats:
        print(_json.dumps(daemon_stats(args.socket), indent=2, default=str))
        return 0
    jobs = list_jobs(args.socket)
    if args.json:
        print(_json.dumps(jobs, indent=2))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    print(f"{'JOB':12s} {'TENANT':10s} {'ALGO':16s} {'SIZE':>5s} "
          f"{'STATUS':10s} DETAIL")
    for job in jobs:
        print(f"{job['job_id']:12s} {job['tenant']:10s} {job['algo']:16s} "
              f"{job['size']:5d} {job['status']:10s} {job['detail'][:60]}")
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    """Cancel a queued or running job by id."""
    from repro.serve.ipc import cancel_job

    outcome = cancel_job(args.socket, args.job_id)
    print(f"{args.job_id}: {outcome}")
    return 0 if outcome in ("cancelled", "aborting") else 1


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    """Service-level campaign: ``repro chaos --serve --jobs 200``."""
    from repro.chaos.serve import ServeCampaignSpec, run_serve_campaign

    spec = ServeCampaignSpec(
        n_jobs=args.jobs,
        seed=args.first_seed,
        workers=args.serve_workers,
        policy=args.serve_policy,
        trace=args.trace,
        algo=args.algo,
        size_min=16,
        size_max=max(16, args.size),
        kill_daemon_at=args.kill_daemon_at if args.kill_daemon_at >= 0 else None,
        job_timeout=args.run_timeout,
    )
    result = run_serve_campaign(
        spec,
        artifact_dir=args.artifact_dir,
        progress=None if args.quiet else (lambda msg: print(f"  {msg}", flush=True)),
    )
    if args.quiet:
        print(result.summary())
    return 0 if result.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded fault campaign: ``repro chaos --seeds 20 --backend threads``."""
    from repro.chaos import CampaignSpec, run_campaign

    if args.serve:
        return _cmd_chaos_serve(args)
    kwargs = {}
    if args.kill_master_at is not None:
        kwargs["kill_master_at"] = args.kill_master_at
        if not args.keep_pressure:
            # Kill-master mode isolates the crash/resume path by default;
            # --keep-pressure layers the usual fault plans on top.
            kwargs.update(
                message_p=0.0, worker_p_die=0.0, worker_p_slow=0.0, task_fault_p=0.0
            )
    if args.sdc:
        kwargs["sdc"] = True
        if not args.keep_pressure:
            # SDC mode isolates the silent tier by default: no deaths or
            # crashes competing for the retry budget, modest message
            # pressure so corrupt/bitflip still fire.
            kwargs.update(
                message_p=0.05, worker_p_die=0.0, worker_p_slow=0.0, task_fault_p=0.0
            )
    if args.resources:
        kwargs["resources"] = True
        kwargs.update(
            io_p_write=args.io_p_write,
            io_p_fsync=args.io_p_fsync,
            io_p_shm=args.io_p_shm,
        )
        if not args.keep_pressure:
            # Resource mode isolates the I/O fault tier by default so an
            # abort is attributable to resources, not to worker deaths
            # racing the retry budget.
            kwargs.update(
                message_p=0.0, worker_p_die=0.0, worker_p_slow=0.0, task_fault_p=0.0
            )
    if args.integrity is not None:
        if not args.sdc:
            raise SystemExit("--integrity requires --sdc")
        kwargs["integrity"] = args.integrity
    spec = CampaignSpec(
        backends=tuple(args.backend) if args.backend else ("simulated", "threads"),
        seeds=args.seeds,
        first_seed=args.first_seed,
        algo=args.algo,
        size=args.size,
        problem_seed=args.seed,
        run_timeout=args.run_timeout,
        **kwargs,
    )

    def progress(o) -> None:
        print(
            f"  {o.backend:10s} seed {o.seed:3d}: {o.status:10s} "
            f"({o.faults_injected} faults injected, {o.elapsed:.2f}s)",
            flush=True,
        )

    result = run_campaign(
        spec,
        artifact_dir=args.artifact_dir,
        progress=None if args.quiet else progress,
    )
    print(result.summary())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show what this build provides").set_defaults(fn=cmd_info)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--algo", default="edit-distance", help="algorithm name (see `info`)")
        p.add_argument("--size", type=int, default=200, help="instance size")
        p.add_argument("--seed", type=int, default=0, help="instance seed")
        p.add_argument("--scheduler", default="dynamic", help="dynamic | dynamic-lcf | bcw | cw")

    def _add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--observe", action="store_true",
            help="record task-lifecycle telemetry (repro.obs) into the report",
        )
        p.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="write the telemetry as Perfetto trace JSON (implies --observe)",
        )

    run_p = sub.add_parser("run", help="run on a real backend")
    common(run_p)
    run_p.add_argument("--backend", default="threads", help="serial | threads | processes")
    run_p.add_argument("--nodes", type=int, default=3, help="total nodes incl. master")
    run_p.add_argument("--threads", type=int, default=2, help="computing threads per node")
    run_p.add_argument(
        "--verify", action="store_true", help="validate the schedule with the trace checker"
    )
    run_p.add_argument(
        "--journal", metavar="PATH", default=None,
        help="write-ahead commit journal; a killed run continues via `repro resume PATH`",
    )
    run_p.add_argument(
        "--integrity", default=None,
        choices=("off", "digest", "audit", "vote"),
        help="result-integrity mode (default: digest, or REPRO_INTEGRITY)",
    )
    run_p.add_argument(
        "--audit-fraction", type=float, default=None, metavar="F",
        help="with --integrity audit: fraction of commits recomputed (default 0.125)",
    )
    _add_obs_args(run_p)
    run_p.set_defaults(fn=cmd_run)

    res_p = sub.add_parser(
        "resume",
        help="continue a journaled run after a master crash (exit 0 on "
             "completion, 3 on fault-tolerance exhaustion)",
    )
    res_p.add_argument("journal", help="journal written by `repro run --journal`")
    res_p.add_argument(
        "--backend", default=None,
        help="override the journaled backend (serial | threads | processes | simulated)",
    )
    res_p.add_argument(
        "--check-oracle", action="store_true",
        help="diff the resumed state against a fresh serial run (exit 1 on mismatch)",
    )
    _add_obs_args(res_p)
    res_p.set_defaults(fn=cmd_resume)

    sim_p = sub.add_parser("simulate", help="replay Experiment_X_Y on the simulated cluster")
    common(sim_p)
    sim_p.add_argument("--nodes", type=int, default=4, help="X: total nodes")
    sim_p.add_argument("--cores", type=int, default=22, help="Y: total cores")
    sim_p.add_argument("--gantt", action="store_true", help="render the schedule")
    sim_p.add_argument(
        "--verify", action="store_true", help="validate the schedule with the trace checker"
    )
    _add_obs_args(sim_p)
    sim_p.set_defaults(fn=cmd_simulate)

    stats_p = sub.add_parser("stats", help="digest a telemetry trace file")
    stats_p.add_argument("trace", help="trace JSON written by --trace-out")
    stats_p.set_defaults(fn=cmd_stats)

    perf_p = sub.add_parser(
        "perf",
        help="profile traces (critical path, attribution, calibration) "
             "and gate against the performance trajectory",
    )
    perf_p.add_argument(
        "traces", nargs="*",
        help="trace JSON files written by --trace-out; each gets a full profile",
    )
    perf_p.add_argument(
        "--against", metavar="BASELINE", default=None,
        help="measure the standard workload and compare to the latest "
             "entry of this trajectory file (BENCH_BASELINE.json)",
    )
    perf_p.add_argument(
        "--check", action="store_true",
        help="with --against: exit 3 when the measurement regresses "
             "beyond the tolerances",
    )
    perf_p.add_argument(
        "--write", action="store_true",
        help="with --against: append the measurement as a new trajectory entry",
    )
    perf_p.add_argument(
        "--label", default=None,
        help="entry label for --write (defaults to `git describe` output)",
    )
    perf_p.add_argument(
        "--max-makespan-regress", type=float, metavar="FRAC",
        default=None,
        help="allowed fractional makespan regression (default 0.75; "
             "real backends compare as ratios to serial)",
    )
    perf_p.add_argument(
        "--max-bytes-regress", type=float, metavar="FRAC", default=None,
        help="allowed fractional increase of deterministic wire counters "
             "(default 0: none)",
    )
    perf_p.set_defaults(fn=cmd_perf)

    chk_p = sub.add_parser("check", help="statically verify patterns/partitions")
    target = chk_p.add_mutually_exclusive_group()
    target.add_argument(
        "--all-builtin",
        action="store_true",
        help="verify every built-in pattern and algorithm (the default)",
    )
    target.add_argument("--pattern", help="verify one library pattern by name")
    target.add_argument("--algo", help="verify one bundled algorithm by name")
    target.add_argument(
        "--selftest",
        action="store_true",
        help="prove the checkers catch seeded defects",
    )
    target.add_argument(
        "--protocol",
        action="store_true",
        help="check the wire-protocol spec and replay observed runs against it",
    )
    target.add_argument(
        "--explore",
        action="store_true",
        help="systematically explore message-delivery orders of the simulated protocol",
    )
    chk_p.add_argument("--size", type=int, default=24, help="instance / pattern size")
    chk_p.add_argument("--seed", type=int, default=0, help="instance seed")
    chk_p.add_argument(
        "--artifact-dir",
        default=None,
        help="--explore: write violating interleavings here as replayable trace JSON",
    )
    chk_p.add_argument(
        "--replay",
        default=None,
        metavar="TRACE",
        help="--explore: re-execute one exported counterexample trace",
    )
    chk_p.add_argument(
        "--explore-grid",
        type=int,
        nargs=2,
        default=(3, 3),
        metavar=("ROWS", "COLS"),
        help="--explore: block grid of the explored wavefront (default 3 3)",
    )
    chk_p.add_argument(
        "--explore-workers",
        type=int,
        default=2,
        help="--explore: computing nodes of the explored cluster (default 2)",
    )
    chk_p.set_defaults(fn=cmd_check)

    cal_p = sub.add_parser("calibrate", help="fit the simulator to this machine")
    common(cal_p)
    cal_p.add_argument("--repeats", type=int, default=2, help="timing repeats per block")
    cal_p.set_defaults(fn=cmd_calibrate)

    chaos_p = sub.add_parser(
        "chaos", help="seeded fault campaign: oracle-or-clean-abort, never a hang"
    )
    chaos_p.add_argument("--seeds", type=int, default=10, help="seeded runs per backend")
    chaos_p.add_argument("--first-seed", type=int, default=0, help="first campaign seed")
    chaos_p.add_argument(
        "--backend",
        action="append",
        choices=("simulated", "threads", "processes"),
        help="repeatable; default: simulated + threads",
    )
    chaos_p.add_argument("--algo", default="edit-distance", help="algorithm under test")
    chaos_p.add_argument("--size", type=int, default=48, help="instance size")
    chaos_p.add_argument("--seed", type=int, default=0, help="instance seed")
    chaos_p.add_argument(
        "--run-timeout", type=float, default=60.0,
        help="per-run wall-clock deadline; exceeding it counts as a hang",
    )
    chaos_p.add_argument(
        "--kill-master-at", type=float, default=None, metavar="P",
        help="kill-master mode: crash the journaling master at a seeded "
             "commit within the first P (0<P<=1) fraction of the run, "
             "resume the journal, and assert oracle-match + resume invariants",
    )
    chaos_p.add_argument(
        "--keep-pressure", action="store_true",
        help="with --kill-master-at or --sdc: keep the usual "
             "message/worker/task fault pressure instead of isolating "
             "the mode's own fault tier",
    )
    chaos_p.add_argument(
        "--sdc", action="store_true",
        help="silent-data-corruption mode: lying workers + digest-evading "
             "bitflips, defended by --integrity; asserts "
             "oracle-identical-or-clean-abort",
    )
    chaos_p.add_argument(
        "--resources", action="store_true",
        help="resource-exhaustion mode: seeded ENOSPC/EIO/short-write/"
             "fsync faults on the journal and shm allocation failures, "
             "cycling the degrade ladder; asserts oracle-match or a clean "
             "attributed ResourceExhausted abort, a recoverable journal, "
             "and a clean /dev/shm",
    )
    chaos_p.add_argument(
        "--io-p-write", type=float, default=0.08, metavar="P",
        help="with --resources: per-append journal write-fault probability",
    )
    chaos_p.add_argument(
        "--io-p-fsync", type=float, default=0.04, metavar="P",
        help="with --resources: per-append fsync-fault probability",
    )
    chaos_p.add_argument(
        "--io-p-shm", type=float, default=0.15, metavar="P",
        help="with --resources: per-park shm allocation-fault probability",
    )
    chaos_p.add_argument(
        "--integrity", default=None,
        choices=("off", "digest", "audit", "vote"),
        help="with --sdc: integrity mode under test (default audit); "
             "'off' demonstrates the wrong answers the defenses prevent",
    )
    chaos_p.add_argument(
        "--artifact-dir", default=None,
        help="write failing runs' telemetry (and kill-mode journals) here",
    )
    chaos_p.add_argument("--quiet", action="store_true", help="suppress per-run lines")
    chaos_p.add_argument(
        "--serve", action="store_true",
        help="service-level campaign: multi-tenant jobs against an "
             "in-process serve daemon with worker kills, one sabotaged "
             "tenant, and a mid-campaign daemon kill + WAL resume",
    )
    chaos_p.add_argument("--jobs", type=int, default=40,
                         help="with --serve: jobs in the campaign trace")
    chaos_p.add_argument("--serve-workers", type=int, default=4,
                         help="with --serve: shared fleet size")
    chaos_p.add_argument("--serve-policy", default="fifo",
                         help="with --serve: queue ordering policy")
    chaos_p.add_argument("--trace", default="heavy-tail",
                         choices=("poisson-burst", "diurnal", "heavy-tail"),
                         help="with --serve: arrival-trace shape")
    chaos_p.add_argument(
        "--kill-daemon-at", type=float, default=0.5, metavar="P",
        help="with --serve: kill + resume the daemon after fraction P of "
             "submissions (negative disables)",
    )
    chaos_p.set_defaults(fn=cmd_chaos)

    def _socket_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--socket", default="/tmp/repro-serve.sock",
            help="unix socket the daemon listens on",
        )

    serve_p = sub.add_parser(
        "serve", help="multi-tenant scheduler daemon over a shared worker fleet"
    )
    _socket_arg(serve_p)
    serve_p.add_argument("--workers", type=int, default=4, help="shared fleet size")
    serve_p.add_argument("--queue-cap", type=int, default=32,
                         help="bounded admission queue depth (overload sheds)")
    serve_p.add_argument("--policy", default="fifo",
                         choices=("fifo", "sjf", "hrrn", "fair", "lottery"),
                         help="queue ordering policy")
    serve_p.add_argument("--policy-seed", type=int, default=0,
                         help="seed for the lottery policy")
    serve_p.add_argument("--journal", metavar="PATH", default=None,
                         help="submission write-ahead log; enables --resume")
    serve_p.add_argument("--job-journal-dir", metavar="DIR", default=None,
                         help="per-job commit journals for mid-run resume")
    serve_p.add_argument("--resume", action="store_true",
                         help="replay the submission log after a daemon kill")
    serve_p.add_argument("--fsync", action="store_true",
                         help="fsync every journal record (OS-crash durable)")
    serve_p.add_argument("--grow", action="store_true",
                         help="attach idle workers to running jobs "
                              "(elastic membership)")
    serve_p.add_argument("--threads", type=int, default=2,
                         help="computing threads per fleet worker")
    serve_p.add_argument("--task-timeout", type=float, default=10.0,
                         help="per-task timeout inside each job")
    serve_p.add_argument("--job-timeout", type=float, default=None,
                         help="daemon-wide hard cap per job (clean abort past it)")
    serve_p.add_argument("--drain-timeout", type=float, default=60.0,
                         help="SIGTERM drain budget before aborting stragglers")
    serve_p.add_argument("--min-disk-mb", type=float, default=0.0,
                         help="shed admissions when free disk under the WAL "
                              "falls below this floor (0 disables)")
    serve_p.add_argument("--min-memory-mb", type=float, default=0.0,
                         help="shed admissions when available memory falls "
                              "below this floor (0 disables)")
    serve_p.add_argument("--max-fd-fraction", type=float, default=1.0,
                         help="shed admissions past this fraction of "
                              "RLIMIT_NOFILE (1.0 disables)")
    serve_p.add_argument("--wal-compact-interval", type=int, default=64,
                         help="compact the submission WAL every N finished "
                              "jobs (0 disables)")
    serve_p.add_argument("--wal-keep-history", type=int, default=64,
                         help="finished jobs kept across a WAL compaction")
    serve_p.set_defaults(fn=cmd_serve)

    submit_p = sub.add_parser("submit", help="submit one job to a running daemon")
    _socket_arg(submit_p)
    common(submit_p)
    submit_p.add_argument("--tenant", default="default", help="tenant the job bills to")
    submit_p.add_argument("--nodes", type=int, default=3,
                          help="requested cluster shape (master + nodes-1 workers)")
    submit_p.add_argument("--deadline", type=float, default=None,
                          help="seconds from start before a clean cancel")
    submit_p.add_argument("--max-retries", type=int, default=8,
                          help="per-job retry budget")
    submit_p.add_argument("--integrity", default=None,
                          choices=("off", "digest", "audit", "vote"),
                          help="integrity mode for this job")
    submit_p.set_defaults(fn=cmd_submit)

    jobs_p = sub.add_parser("jobs", help="list a running daemon's jobs")
    _socket_arg(jobs_p)
    jobs_p.add_argument("--json", action="store_true", help="machine-readable output")
    jobs_p.add_argument("--stats", action="store_true",
                        help="per-tenant wait/slowdown/shed metrics instead")
    jobs_p.set_defaults(fn=cmd_jobs)

    cancel_p = sub.add_parser("cancel", help="cancel a queued or running job")
    _socket_arg(cancel_p)
    cancel_p.add_argument("job_id", help="job id as shown by `repro jobs`")
    cancel_p.set_defaults(fn=cmd_cancel)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except FaultToleranceExhausted as exc:
        # A clean, designed abort — report it and exit with the documented
        # code instead of dumping a traceback.
        print(f"fault tolerance exhausted: {exc}", file=sys.stderr)
        return EXIT_FAULT_EXHAUSTED


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
