"""Simulated multilevel cluster — the Tianhe-1A stand-in.

The paper's experiments ran on dual-socket 6-core Xeon nodes over
Infiniband QDR. This package models exactly the pieces those results
depend on: per-node compute threads with a memory-contention efficiency
curve, per-node NICs and a master NIC with latency+bandwidth links, and a
deterministic discrete-event clock. See DESIGN.md's substitution table.
"""

from repro.cluster.simcore import EventQueue
from repro.cluster.network import LinkModel, INFINIBAND_QDR
from repro.cluster.machine import NodeSpec
from repro.cluster.topology import ClusterSpec, experiment_layout
from repro.cluster.faults import FaultPlan, FaultRule

__all__ = [
    "EventQueue",
    "LinkModel",
    "INFINIBAND_QDR",
    "NodeSpec",
    "ClusterSpec",
    "experiment_layout",
    "FaultPlan",
    "FaultRule",
]
