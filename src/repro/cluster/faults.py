"""Fault injection for exercising the hierarchical fault tolerance.

EasyHPS detects faults purely by timeout (Section V): a sub-task that does
not finish within the configured duration is assumed dead, unregistered,
and redistributed; a sub-sub-task timeout restarts the computing thread.
The injector produces exactly the observable behaviours that mechanism
reacts to:

- ``crash`` — the computation dies immediately (the worker raises / the
  simulated slave goes silent);
- ``hang``  — the computation starts but never completes.

Rules are keyed by dispatch attempt so recovery paths are testable: a rule
with ``attempt=0`` fails only the first execution, and the retry succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.comm.messages import TaskId
from repro.utils.validate import check_in, check_nonnegative, check_probability

KINDS = ("crash", "hang")


@dataclass(frozen=True)
class FaultRule:
    """One injected failure.

    ``task_id=None`` matches every task; ``attempt`` is the 0-based
    dispatch count at which the fault fires.
    """

    kind: str
    task_id: Optional[TaskId] = None
    attempt: int = 0

    def __post_init__(self) -> None:
        check_in("fault kind", self.kind, KINDS)
        check_nonnegative("attempt", self.attempt)

    def matches(self, task_id: TaskId, attempt: int) -> bool:
        return attempt == self.attempt and (self.task_id is None or self.task_id == task_id)


class FaultPlan:
    """A queryable collection of fault rules."""

    def __init__(self, rules: Iterable[FaultRule] = ()) -> None:
        self.rules = tuple(rules)
        self._random_p = 0.0
        self._rng: Optional[np.random.Generator] = None
        self._random_decisions: Dict[Tuple[TaskId, int], Optional[FaultRule]] = {}

    @classmethod
    def none(cls) -> "FaultPlan":
        """No injected faults (the default)."""
        return cls(())

    @classmethod
    def random(cls, p: float, seed: int = 0, kind: str = "crash") -> "FaultPlan":
        """Each first execution of a task crashes/hangs with probability ``p``.

        Decisions are drawn lazily per task and memoized, so a plan is
        deterministic for a given seed regardless of query order ties.
        """
        check_probability("p", p)
        plan = cls(())
        plan._random_p = p
        plan._rng = np.random.default_rng(seed)
        plan._random_kind = kind
        return plan

    def lookup(self, task_id: TaskId, attempt: int) -> Optional[FaultRule]:
        """The fault (if any) that execution ``attempt`` of ``task_id`` hits."""
        for rule in self.rules:
            if rule.matches(task_id, attempt):
                return rule
        if self._rng is not None and attempt == 0:
            key = (task_id, attempt)
            if key not in self._random_decisions:
                hit = self._rng.random() < self._random_p
                self._random_decisions[key] = (
                    FaultRule(self._random_kind, task_id, attempt) if hit else None
                )
            return self._random_decisions[key]
        return None

    def __bool__(self) -> bool:
        return bool(self.rules) or self._rng is not None

    def __repr__(self) -> str:
        if self._rng is not None:
            return f"FaultPlan(random p={self._random_p})"
        return f"FaultPlan({len(self.rules)} rules)"
