"""Fault injection for exercising the hierarchical fault tolerance.

EasyHPS detects faults purely by timeout (Section V): a sub-task that does
not finish within the configured duration is assumed dead, unregistered,
and redistributed; a sub-sub-task timeout restarts the computing thread.
The injectors here produce the observable behaviours that mechanism (and
the hardened recovery layered on top of it) reacts to, at three levels:

- **task level** (:class:`FaultPlan`) — a dispatched computation ``crash``\\ es
  (dies without replying) or ``hang``\\ s (answers late, past the deadline);
- **message level** (:class:`MessageFaultPlan`) — an individual protocol
  message is ``drop``\\ ped, ``duplicate``\\ d, ``delay``\\ ed, ``corrupt``\\ ed
  in a detected way (payload mutated, digest left stale: the receiver's
  integrity check discards it), or ``bitflip``\\ ped in an *undetected*
  way (payload mutated and the digest restamped to match — models
  corruption upstream of the checksum, which only semantic defenses like
  audit/vote can catch), injected at the
  :class:`~repro.comm.transport.Channel` boundary;
- **worker level** (:class:`WorkerFaultPlan`) — a whole slave ``die``\\ s
  mid-run (serves a few tasks, then goes permanently silent), runs
  ``slow`` (a straggler node whose computations take a multiple of their
  normal time), or turns ``liar`` (silent data corruption: after N tasks
  it returns plausible-but-wrong blocks with self-consistent digests —
  only catchable semantically, by audit recompute or voting).

Rules are keyed by dispatch attempt / message index / worker id so
recovery paths are testable; the ``random`` constructors draw every
decision from an RNG derived *per key* from the plan seed, so a plan is a
pure function of ``(seed, key)`` — the same seed produces the same
decisions regardless of query order or thread interleaving. All plans are
picklable (they carry only scalars and rules), so they cross the process
boundary to slave processes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.comm.messages import TaskId
from repro.utils.validate import (
    check_in,
    check_nonnegative,
    check_positive,
    check_probability,
)

KINDS = ("crash", "hang")

#: Message-level fault kinds (injected at the Channel boundary).
#: ``corrupt`` is detected (stale digest); ``bitflip`` is the undetected
#: tier (digest restamped over the mutated payload).
MESSAGE_FAULT_KINDS = ("drop", "duplicate", "delay", "corrupt", "bitflip")

#: Kinds :meth:`MessageFaultPlan.random` draws by default — the tier the
#: baseline recovery (timeouts + digests) detects on its own. ``bitflip``
#: evades digests *by design*, so it is opt-in: SDC campaigns pair it
#: with the ``audit``/``vote`` integrity modes that can actually catch it.
DETECTABLE_MESSAGE_KINDS = ("drop", "duplicate", "delay", "corrupt")

#: Worker-level fault kinds. ``liar`` is the silent-data-corruption tier.
WORKER_FAULT_KINDS = ("die", "slow", "liar")

#: Resource-exhaustion fault kinds injected at the file-I/O boundary
#: (:class:`IoFaultPlan`): ``enospc`` (disk full), ``eio`` (device
#: error), ``partial`` (a write that lands only a prefix before
#: failing — the torn-frame generator), ``fsync-fail`` (data reached the
#: page cache but durability is refused), ``emfile`` (fd exhaustion).
IO_FAULT_KINDS = ("enospc", "eio", "partial", "fsync-fail", "emfile")

#: I/O operations :class:`IoFaultPlan` can target: journal/WAL record
#: writes, their fsyncs, and shared-memory segment allocation.
IO_FAULT_OPS = ("write", "fsync", "shm")

#: Per-plan-type salt mixed into derived RNG keys so the plan families
#: never reuse a stream even under the same seed.
_SALT_TASK, _SALT_MESSAGE, _SALT_WORKER, _SALT_IO = 11, 13, 17, 23


def _key_ints(value: object) -> Tuple[int, ...]:
    """Flatten a rule key (task id tuple, index, ...) into non-negative ints."""
    if value is None:
        return (0,)
    if isinstance(value, (tuple, list)):
        out: Tuple[int, ...] = ()
        for v in value:
            out += _key_ints(v)
        return out
    if isinstance(value, (int, np.integer)):
        return (int(value) & 0x7FFFFFFF,)
    # Stable fallback for exotic vertex ids: hash of the repr.
    import zlib

    return (zlib.crc32(repr(value).encode()) & 0x7FFFFFFF,)


def derived_rng(seed: int, salt: int, *key: object) -> np.random.Generator:
    """An RNG that is a pure function of ``(seed, salt, key)``.

    This is what makes every ``random`` plan order-independent: each
    decision gets its own generator derived from the decision's identity,
    never from how many decisions were made before it.
    """
    entropy: Tuple[int, ...] = (int(seed) & 0x7FFFFFFF, salt)
    for k in key:
        entropy += _key_ints(k)
    return np.random.default_rng(np.random.SeedSequence(entropy))


# -- task-level faults (crash / hang) -------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One injected failure.

    ``task_id=None`` matches every task; ``attempt`` is the 0-based
    dispatch count at which the fault fires.
    """

    kind: str
    task_id: Optional[TaskId] = None
    attempt: int = 0

    def __post_init__(self) -> None:
        check_in("fault kind", self.kind, KINDS)
        check_nonnegative("attempt", self.attempt)

    def matches(self, task_id: TaskId, attempt: int) -> bool:
        return attempt == self.attempt and (self.task_id is None or self.task_id == task_id)


class FaultPlan:
    """A queryable collection of task-level fault rules."""

    def __init__(self, rules: Iterable[FaultRule] = ()) -> None:
        self.rules = tuple(rules)
        self._random_p = 0.0
        self._seed = 0
        self._random_kinds: Tuple[str, ...] = ("crash",)
        self._random_decisions: Dict[Tuple[TaskId, int], Optional[FaultRule]] = {}

    @classmethod
    def none(cls) -> "FaultPlan":
        """No injected faults (the default)."""
        return cls(())

    @classmethod
    def random(
        cls, p: float, seed: int = 0, kind: Union[str, Sequence[str]] = "crash"
    ) -> "FaultPlan":
        """Each first execution of a task crashes/hangs with probability ``p``.

        Decisions are a pure function of ``(seed, task_id)``: the same
        seed yields the same fault set no matter in which order tasks are
        queried, which is what makes chaos campaigns replayable. ``kind``
        may be a single kind or a sequence to draw from uniformly.
        """
        check_probability("p", p)
        kinds = (kind,) if isinstance(kind, str) else tuple(kind)
        for k in kinds:
            check_in("fault kind", k, KINDS)
        plan = cls(())
        plan._random_p = p
        plan._seed = seed
        plan._random_kinds = kinds
        return plan

    def lookup(self, task_id: TaskId, attempt: int) -> Optional[FaultRule]:
        """The fault (if any) that execution ``attempt`` of ``task_id`` hits."""
        for rule in self.rules:
            if rule.matches(task_id, attempt):
                return rule
        if self._random_p > 0.0 and attempt == 0:
            key = (task_id, attempt)
            cached = self._random_decisions.get(key, _UNSET)
            if cached is not _UNSET:
                return cached  # type: ignore[return-value]
            rng = derived_rng(self._seed, _SALT_TASK, task_id)
            decision: Optional[FaultRule] = None
            if rng.random() < self._random_p:
                kind = self._random_kinds[int(rng.integers(len(self._random_kinds)))]
                decision = FaultRule(kind, task_id, attempt)
            self._random_decisions[key] = decision
            return decision
        return None

    def __bool__(self) -> bool:
        return bool(self.rules) or self._random_p > 0.0

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_random_decisions"] = {}  # derived, not state
        return state

    def __repr__(self) -> str:
        if self._random_p > 0.0:
            return f"FaultPlan(random p={self._random_p})"
        return f"FaultPlan({len(self.rules)} rules)"


#: Sentinel distinguishing "memoized None" from "not yet decided".
_UNSET = object()


# -- message-level faults (channel boundary) ------------------------------------------


@dataclass(frozen=True)
class MessageFaultRule:
    """One injected message-level fault.

    ``direction`` is as seen from the wrapped endpoint (the master side):
    ``"send"`` = master → slave, ``"recv"`` = slave → master, ``None`` =
    both. ``message_type`` matches the message class name
    (``"TaskAssign"``, ``"TaskResult"``, ``"IdleSignal"``, ``"EndSignal"``);
    ``index`` is the per-endpoint, per-direction message counter; ``None``
    fields match anything.
    """

    kind: str
    direction: Optional[str] = None
    message_type: Optional[str] = None
    task_id: Optional[TaskId] = None
    index: Optional[int] = None
    #: Seconds a ``delay`` fault holds the message back.
    delay: float = 0.05

    def __post_init__(self) -> None:
        check_in("message fault kind", self.kind, MESSAGE_FAULT_KINDS)
        if self.direction is not None:
            check_in("direction", self.direction, ("send", "recv"))
        check_nonnegative("delay", self.delay)

    def matches(
        self,
        direction: str,
        message_type: str,
        task_id: Optional[TaskId],
        index: int,
    ) -> bool:
        return (
            (self.direction is None or self.direction == direction)
            and (self.message_type is None or self.message_type == message_type)
            and (self.task_id is None or self.task_id == task_id)
            and (self.index is None or self.index == index)
        )


class MessageFaultPlan:
    """A queryable collection of message-level fault rules.

    The ``random`` mode faults each message independently with
    probability ``p``; decisions derive from ``(seed, endpoint,
    direction, index)`` so a campaign seed fully determines them.
    ``EndSignal`` is protected by default in random mode — dropping the
    shutdown message only exercises teardown timeouts, not recovery.
    """

    def __init__(self, rules: Iterable[MessageFaultRule] = ()) -> None:
        self.rules = tuple(rules)
        self._random_p = 0.0
        self._seed = 0
        self._random_kinds: Tuple[str, ...] = ()
        self._protect: Tuple[str, ...] = ()
        self._delay = 0.05

    @classmethod
    def none(cls) -> "MessageFaultPlan":
        return cls(())

    @classmethod
    def random(
        cls,
        p: float,
        seed: int = 0,
        kinds: Sequence[str] = DETECTABLE_MESSAGE_KINDS,
        protect: Sequence[str] = ("EndSignal",),
        delay: float = 0.05,
    ) -> "MessageFaultPlan":
        check_probability("p", p)
        for k in kinds:
            check_in("message fault kind", k, MESSAGE_FAULT_KINDS)
        check_nonnegative("delay", delay)
        plan = cls(())
        plan._random_p = p
        plan._seed = seed
        plan._random_kinds = tuple(kinds)
        plan._protect = tuple(protect)
        plan._delay = delay
        return plan

    def decide(
        self,
        direction: str,
        message_type: str,
        task_id: Optional[TaskId],
        index: int,
        endpoint: int = 0,
    ) -> Optional[MessageFaultRule]:
        """The first fault (if any) hitting this message, or None."""
        faults = self.decide_all(direction, message_type, task_id, index, endpoint)
        return faults[0] if faults else None

    def decide_all(
        self,
        direction: str,
        message_type: str,
        task_id: Optional[TaskId],
        index: int,
        endpoint: int = 0,
    ) -> Tuple[MessageFaultRule, ...]:
        """Every fault hitting this message, in rule order.

        Explicit rules compose: a message matched by a ``duplicate`` and a
        ``delay`` rule suffers both, applied in the order the rules were
        given. The random mode still draws at most one fault per message
        (composition probability would be ``p**2``-rare and untestable).
        """
        matched = tuple(
            rule
            for rule in self.rules
            if rule.matches(direction, message_type, task_id, index)
        )
        if matched:
            return matched
        if self._random_p > 0.0 and message_type not in self._protect:
            kinds = self._random_kinds
            if direction == "send":
                # Send-side delay would need a timer thread; restrict the
                # random mix to effects the send path can realize inline.
                kinds = tuple(k for k in kinds if k != "delay") or ("drop",)
            rng = derived_rng(
                self._seed, _SALT_MESSAGE, endpoint, 0 if direction == "send" else 1, index
            )
            if rng.random() < self._random_p:
                kind = kinds[int(rng.integers(len(kinds)))]
                return (
                    MessageFaultRule(
                        kind, direction=direction, index=index, delay=self._delay
                    ),
                )
        return ()

    def __bool__(self) -> bool:
        return bool(self.rules) or self._random_p > 0.0

    def __repr__(self) -> str:
        if self._random_p > 0.0:
            return f"MessageFaultPlan(random p={self._random_p}, kinds={self._random_kinds})"
        return f"MessageFaultPlan({len(self.rules)} rules)"


# -- worker-level faults (slave death / slow node) ------------------------------------


@dataclass(frozen=True)
class WorkerFaultRule:
    """One injected worker-level fault.

    ``die``: the worker serves ``after_tasks`` tasks and then goes
    permanently silent (a crashed slave node). ``slow``: every
    computation on the worker takes ``factor`` times its normal duration
    (a degraded straggler node). ``liar``: after serving ``after_tasks``
    tasks the worker returns wrong block values with self-consistent
    digests — it keeps heartbeating and answering on time, so only
    semantic defenses (audit/vote) can convict it.
    ``worker_id=None`` matches every worker.
    """

    kind: str
    worker_id: Optional[int] = None
    after_tasks: int = 1
    factor: float = 4.0

    def __post_init__(self) -> None:
        check_in("worker fault kind", self.kind, WORKER_FAULT_KINDS)
        check_nonnegative("after_tasks", self.after_tasks)
        check_positive("factor", self.factor)

    def matches(self, worker_id: int) -> bool:
        return self.worker_id is None or self.worker_id == worker_id


class WorkerFaultPlan:
    """A queryable collection of worker-level fault rules."""

    def __init__(self, rules: Iterable[WorkerFaultRule] = ()) -> None:
        self.rules = tuple(rules)
        self._p_die = 0.0
        self._p_slow = 0.0
        self._p_lie = 0.0
        self._seed = 0
        self._max_after = 3
        self._factor = 4.0

    @classmethod
    def none(cls) -> "WorkerFaultPlan":
        return cls(())

    @classmethod
    def random(
        cls,
        p_die: float = 0.0,
        p_slow: float = 0.0,
        seed: int = 0,
        max_after: int = 3,
        factor: float = 4.0,
        p_lie: float = 0.0,
    ) -> "WorkerFaultPlan":
        """Each worker independently dies (after 1..max_after tasks) with
        probability ``p_die``, runs slow with probability ``p_slow``,
        and/or starts lying (after 0..max_after tasks) with probability
        ``p_lie``. Decisions derive from ``(seed, worker_id)``."""
        check_probability("p_die", p_die)
        check_probability("p_slow", p_slow)
        check_probability("p_lie", p_lie)
        check_positive("max_after", max_after)
        check_positive("factor", factor)
        plan = cls(())
        plan._p_die = p_die
        plan._p_slow = p_slow
        plan._p_lie = p_lie
        plan._seed = seed
        plan._max_after = max_after
        plan._factor = factor
        return plan

    def death_point(self, worker_id: int) -> Optional[int]:
        """Task count after which ``worker_id`` dies, or None (healthy)."""
        for rule in self.rules:
            if rule.kind == "die" and rule.matches(worker_id):
                return rule.after_tasks
        if self._p_die > 0.0:
            rng = derived_rng(self._seed, _SALT_WORKER, worker_id, 0)
            if rng.random() < self._p_die:
                return int(rng.integers(1, self._max_after + 1))
        return None

    def slow_factor(self, worker_id: int) -> float:
        """Compute-time multiplier of ``worker_id`` (1.0 = healthy)."""
        for rule in self.rules:
            if rule.kind == "slow" and rule.matches(worker_id):
                return rule.factor
        if self._p_slow > 0.0:
            rng = derived_rng(self._seed, _SALT_WORKER, worker_id, 1)
            if rng.random() < self._p_slow:
                return self._factor
        return 1.0

    def lie_point(self, worker_id: int) -> Optional[int]:
        """Task count after which ``worker_id`` starts returning wrong
        blocks, or None (honest). 0 means it lies from its first task."""
        for rule in self.rules:
            if rule.kind == "liar" and rule.matches(worker_id):
                return rule.after_tasks
        if self._p_lie > 0.0:
            rng = derived_rng(self._seed, _SALT_WORKER, worker_id, 2)
            if rng.random() < self._p_lie:
                return int(rng.integers(0, self._max_after + 1))
        return None

    def __bool__(self) -> bool:
        return (
            bool(self.rules)
            or self._p_die > 0.0
            or self._p_slow > 0.0
            or self._p_lie > 0.0
        )

    def __repr__(self) -> str:
        if self._p_die > 0.0 or self._p_slow > 0.0 or self._p_lie > 0.0:
            return (
                f"WorkerFaultPlan(random p_die={self._p_die}, "
                f"p_slow={self._p_slow}, p_lie={self._p_lie})"
            )
        return f"WorkerFaultPlan({len(self.rules)} rules)"


# -- resource-exhaustion faults (file-I/O boundary) -----------------------------------

#: errno realized for each injected I/O fault kind.
_IO_ERRNOS = {
    "enospc": 28,  # errno.ENOSPC
    "eio": 5,  # errno.EIO
    "partial": 28,  # the partial write ends in ENOSPC
    "fsync-fail": 5,
    "emfile": 24,  # errno.EMFILE
}

#: Kinds drawn per op by :meth:`IoFaultPlan.random` — each op only gets
#: kinds its injection site can realize (a partial *fsync* or an EMFILE
#: *write* would be meaningless).
_IO_RANDOM_KINDS = {
    "write": ("enospc", "eio", "partial"),
    "fsync": ("fsync-fail",),
    "shm": ("enospc", "emfile"),
}


@dataclass(frozen=True)
class IoFaultRule:
    """One injected I/O failure at a file-system boundary.

    ``stream`` names the endpoint the policy wraps (``"journal"``,
    ``"wal"``, ``"shm-master"``, ``"shm-slave3"``; ``None`` matches
    all); ``index`` is the per-stream, per-op operation counter
    (``None`` = every index); ``after`` makes the fault *persistent*
    instead — every op with ``index >= after`` fails, modeling a disk
    that stays full rather than a transient hiccup. ``fraction`` is how
    much of a ``partial`` write lands before the failure.
    """

    op: str
    kind: str
    stream: Optional[str] = None
    index: Optional[int] = None
    after: Optional[int] = None
    fraction: float = 0.5

    def __post_init__(self) -> None:
        check_in("io fault op", self.op, IO_FAULT_OPS)
        check_in("io fault kind", self.kind, IO_FAULT_KINDS)
        if self.index is not None:
            check_nonnegative("index", self.index)
        if self.after is not None:
            check_nonnegative("after", self.after)
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")

    def matches(self, stream: str, op: str, index: int) -> bool:
        if self.op != op:
            return False
        if self.stream is not None and self.stream != stream:
            return False
        if self.after is not None:
            return index >= self.after
        return self.index is None or self.index == index

    @property
    def errno(self) -> int:
        return _IO_ERRNOS[self.kind]

    def to_oserror(self) -> OSError:
        """The concrete :class:`OSError` this fault presents as."""
        return OSError(self.errno, f"injected {self.kind} ({self.op})")

    def cut(self, size: int) -> int:
        """Bytes of a ``partial`` write that land before the failure."""
        return max(0, min(size - 1, int(size * self.fraction)))


class IoFaultPlan:
    """A queryable collection of resource-exhaustion I/O fault rules.

    Same contract as the other plan families: decisions in ``random``
    mode are a pure function of ``(seed, stream, op, index)`` via
    :func:`derived_rng`, so the same campaign seed injects the same
    faults regardless of thread interleaving, and the plan pickles
    across the process boundary to slave-side shm stores.
    """

    def __init__(self, rules: Iterable[IoFaultRule] = ()) -> None:
        self.rules = tuple(rules)
        self._p: Dict[str, float] = {}
        self._seed = 0

    @classmethod
    def none(cls) -> "IoFaultPlan":
        return cls(())

    @classmethod
    def random(
        cls,
        p_write: float = 0.0,
        p_fsync: float = 0.0,
        p_shm: float = 0.0,
        seed: int = 0,
    ) -> "IoFaultPlan":
        """Each journal/WAL write, fsync, and shm allocation fails
        independently with its op's probability; the kind is drawn
        uniformly from the op's realizable kinds (``_IO_RANDOM_KINDS``).
        """
        check_probability("p_write", p_write)
        check_probability("p_fsync", p_fsync)
        check_probability("p_shm", p_shm)
        plan = cls(())
        plan._p = {"write": p_write, "fsync": p_fsync, "shm": p_shm}
        plan._seed = seed
        return plan

    def decide(self, stream: str, op: str, index: int) -> Optional[IoFaultRule]:
        """The fault (if any) hitting operation ``index`` of ``op`` on
        ``stream``. Pure: no memoization needed, the RNG derives from
        the decision's identity."""
        for rule in self.rules:
            if rule.matches(stream, op, index):
                return rule
        p = self._p.get(op, 0.0)
        if p > 0.0:
            rng = derived_rng(self._seed, _SALT_IO, stream, op, index)
            if rng.random() < p:
                kinds = _IO_RANDOM_KINDS[op]
                kind = kinds[int(rng.integers(len(kinds)))]
                return IoFaultRule(op, kind, stream=stream, index=index)
        return None

    def __bool__(self) -> bool:
        return bool(self.rules) or any(p > 0.0 for p in self._p.values())

    def __repr__(self) -> str:
        if any(self._p.values()):
            ps = ", ".join(f"p_{k}={v}" for k, v in self._p.items() if v)
            return f"IoFaultPlan(random {ps})"
        return f"IoFaultPlan({len(self.rules)} rules)"


class IoPolicy:
    """One endpoint's view of an :class:`IoFaultPlan`.

    Holds the per-op operation counters (the plan itself stays pure /
    shareable); the journal, WAL, and block store each get their own
    policy with a distinct ``stream`` name so their fault sequences are
    independent under one seed.
    """

    def __init__(self, plan: IoFaultPlan, stream: str) -> None:
        self.plan = plan
        self.stream = stream
        self._counts: Dict[str, int] = {}

    def _next(self, op: str) -> int:
        index = self._counts.get(op, 0)
        self._counts[op] = index + 1
        return index

    def fault(self, op: str) -> Optional[IoFaultRule]:
        """Consume one operation slot of ``op``; the fault it hits, if any."""
        return self.plan.decide(self.stream, op, self._next(op))

    def check(self, op: str) -> None:
        """Consume one slot and *raise* the fault as its OSError."""
        rule = self.fault(op)
        if rule is not None:
            raise rule.to_oserror()
