"""Compute-node model: threads, speed, and memory-contention efficiency.

A node runs ``threads`` computing threads at ``flops_per_second`` work
units each, but threads sharing one node contend for memory bandwidth:
with ``t`` active threads each runs at efficiency ``1 / (1 + contention *
(t - 1))``. This sub-linear scaling is the physical effect behind the
paper's Fig 15 crossover — at 20 total cores, packing threads onto fewer
nodes wins (more computing cores left over after scheduling overhead); at
40 cores the packed nodes saturate and spreading across more nodes wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validate import check_nonnegative, check_positive


@dataclass(frozen=True)
class NodeSpec:
    """One multi-core computing node of the simulated cluster."""

    #: Number of computing threads used on this node (the paper's ``ct``).
    threads: int
    #: Work units (≈ DP cell-update operations) per second per thread.
    flops_per_second: float = 5.0e8
    #: Memory-contention coefficient gamma in ``1 / (1 + gamma * (t - 1))``.
    contention: float = 0.02
    #: Fixed per-sub-sub-task scheduling overhead on the slave, seconds.
    task_overhead: float = 20.0e-6

    def __post_init__(self) -> None:
        check_positive("threads", self.threads)
        check_positive("flops_per_second", self.flops_per_second)
        check_nonnegative("contention", self.contention)
        check_nonnegative("task_overhead", self.task_overhead)

    def thread_efficiency(self, active_threads: int) -> float:
        """Per-thread efficiency when ``active_threads`` threads are busy."""
        if active_threads <= 0:
            raise ValueError(f"active_threads must be positive, got {active_threads}")
        return 1.0 / (1.0 + self.contention * (active_threads - 1))

    def effective_rate(self, active_threads: int) -> float:
        """Aggregate node throughput (work units/s) at ``active_threads``."""
        return active_threads * self.flops_per_second * self.thread_efficiency(active_threads)

    def compute_time(self, flops: float, active_threads: int = 1) -> float:
        """Seconds for one thread to process ``flops`` work units while
        ``active_threads`` threads are busy on the node."""
        check_nonnegative("flops", flops)
        return flops / (self.flops_per_second * self.thread_efficiency(active_threads))
