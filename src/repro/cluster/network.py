"""Interconnect model: first-order latency/bandwidth links.

A message of ``b`` bytes over a link costs ``latency + b / bandwidth``
(the alpha-beta model). Endpoint NICs serialize: a node sends/receives
one message at a time, which is what makes "few fat nodes vs many thin
nodes" a real trade-off in the Fig 15 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validate import check_nonnegative, check_positive


@dataclass(frozen=True)
class LinkModel:
    """Alpha-beta cost model of one network link."""

    #: Per-message latency in seconds (alpha).
    latency: float
    #: Bandwidth in bytes/second (1/beta).
    bandwidth: float

    def __post_init__(self) -> None:
        check_nonnegative("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth


#: Infiniband QDR effective point-to-point characteristics (the Tianhe-1A
#: interconnect of the paper): ~2 microseconds latency, ~3.2 GB/s
#: effective unidirectional bandwidth.
INFINIBAND_QDR = LinkModel(latency=2.0e-6, bandwidth=3.2e9)

#: A deliberately slow link for communication-bound ablations.
GIGABIT_ETHERNET = LinkModel(latency=50.0e-6, bandwidth=1.25e8)
