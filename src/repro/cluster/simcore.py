"""Deterministic discrete-event core.

A minimal event queue: callbacks scheduled at absolute simulated times,
executed in time order with FIFO tie-breaking (a monotone sequence number
makes runs bit-for-bit reproducible). Model code composes behaviour out
of ``at``/``after`` plus plain Python state; there are no coroutine
processes to keep the scheduler transparent and debuggable.

Events may carry an optional ``label`` — an arbitrary hashable value
identifying *what* the event is (``("timeout", task, epoch)``, ...).
Labels are inert in the base queue; :class:`ControlledEventQueue` exposes
them to an external chooser so a model checker can enumerate the
delivery order of simultaneous events (see :mod:`repro.check.explore`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

from repro.utils.errors import ReproError

#: One schedulable event: (when, handle, callback, label). The handle is
#: the tuple comparator's tie-breaker, so callbacks never get compared.
_Event = Tuple[float, int, Callable[[], None], object]


class SimulationError(ReproError):
    """The simulation was driven into an invalid state."""


class EventQueue:
    """Time-ordered callback queue with a monotone clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def clock(self):
        """A :class:`~repro.obs.clock.SimClock` reading this queue's time,
        so runtime instrumentation can be injected with sim-time."""
        from repro.obs.clock import SimClock

        return SimClock(self)

    def at(self, when: float, fn: Callable[[], None], label: object = None) -> int:
        """Schedule ``fn`` at absolute time ``when``; returns a handle."""
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        handle = next(self._seq)
        heapq.heappush(self._heap, (when, handle, fn, label))
        return handle

    def after(self, delay: float, fn: Callable[[], None], label: object = None) -> int:
        """Schedule ``fn`` after ``delay`` seconds; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, fn, label)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event by handle (idempotent, O(1))."""
        self._cancelled.add(handle)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Execute events in order until the queue drains (or ``until``).

        ``max_events`` is a runaway guard: a model bug that reschedules
        endlessly raises instead of hanging.
        """
        executed = 0
        while self._heap:
            when, handle, fn, _label = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return
            heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._now = when
            fn()
            executed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded {max_events} events — runaway simulation?")

    def empty(self) -> bool:
        return not any(h not in self._cancelled for _, h, _, _ in self._heap)

    def pending_labels(self) -> List[Tuple[float, object]]:
        """(when, label) of every live scheduled event, soonest first.

        Part of the model-checking surface: the explorer folds the pending
        event set into its state fingerprint so two interleavings only
        merge when their *futures* agree too.
        """
        return sorted(
            (when, label)
            for when, h, _fn, label in self._heap
            if h not in self._cancelled
        )


class Chooser(Protocol):
    """Delivery-order policy for simultaneous events.

    ``choose`` receives the tie set — every live event scheduled at the
    current minimum time, in handle (FIFO) order — and returns the index
    of the event to execute next. The remaining ties are re-offered
    (together with any events the executed callback scheduled at the same
    time) on the next step, so a chooser enumerates *all* delivery orders
    of concurrent messages, not just rotations of one.
    """

    def choose(self, ties: Sequence[Tuple[int, object]]) -> int:
        """Pick from ``[(handle, label), ...]``; returns an index."""
        ...


class ControlledEventQueue(EventQueue):
    """An :class:`EventQueue` whose tie-breaking is externally controlled.

    The base queue resolves simultaneous events FIFO — one fixed
    interleaving. This queue hands every tie set (size > 1) to a
    :class:`Chooser`, which is how :mod:`repro.check.explore` drives the
    simulated backend through *every* message-delivery order: with a
    zero-cost cluster model, concurrently-in-flight protocol messages
    land at equal times, so choosing among ties is exactly choosing the
    delivery order. With no chooser (or singleton ties) behaviour is
    identical to the base queue.
    """

    def __init__(self, chooser: Optional[Chooser] = None) -> None:
        super().__init__()
        self.chooser = chooser

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        executed = 0
        while self._heap:
            when0 = self._heap[0][0]
            if until is not None and when0 > until:
                self._now = until
                return
            # Collect the full tie set at the minimum time, skipping
            # cancelled entries (identical semantics to the base loop).
            ties: List[_Event] = []
            while self._heap and self._heap[0][0] == when0:
                ev = heapq.heappop(self._heap)
                if ev[1] in self._cancelled:
                    self._cancelled.discard(ev[1])
                    continue
                ties.append(ev)
            if not ties:
                continue
            idx = 0
            if self.chooser is not None and len(ties) > 1:
                idx = self.chooser.choose([(h, label) for _, h, _, label in ties])
                if not 0 <= idx < len(ties):
                    raise SimulationError(
                        f"chooser returned {idx} for a tie set of {len(ties)}"
                    )
            chosen = ties.pop(idx)
            # Unexecuted ties go back on the heap: they re-tie with
            # whatever the chosen callback schedules "now", giving the
            # chooser a fresh decision each step.
            for ev in ties:
                heapq.heappush(self._heap, ev)
            self._now = when0
            chosen[2]()
            executed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded {max_events} events — runaway simulation?")
