"""Deterministic discrete-event core.

A minimal event queue: callbacks scheduled at absolute simulated times,
executed in time order with FIFO tie-breaking (a monotone sequence number
makes runs bit-for-bit reproducible). Model code composes behaviour out
of ``at``/``after`` plus plain Python state; there are no coroutine
processes to keep the scheduler transparent and debuggable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.utils.errors import ReproError


class SimulationError(ReproError):
    """The simulation was driven into an invalid state."""


class EventQueue:
    """Time-ordered callback queue with a monotone clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def clock(self):
        """A :class:`~repro.obs.clock.SimClock` reading this queue's time,
        so runtime instrumentation can be injected with sim-time."""
        from repro.obs.clock import SimClock

        return SimClock(self)

    def at(self, when: float, fn: Callable[[], None]) -> int:
        """Schedule ``fn`` at absolute time ``when``; returns a handle."""
        if when < self._now:
            raise SimulationError(f"cannot schedule at {when} < now {self._now}")
        handle = next(self._seq)
        heapq.heappush(self._heap, (when, handle, fn))
        return handle

    def after(self, delay: float, fn: Callable[[], None]) -> int:
        """Schedule ``fn`` after ``delay`` seconds; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, fn)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event by handle (idempotent, O(1))."""
        self._cancelled.add(handle)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Execute events in order until the queue drains (or ``until``).

        ``max_events`` is a runaway guard: a model bug that reschedules
        endlessly raises instead of hanging.
        """
        executed = 0
        while self._heap:
            when, handle, fn = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return
            heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._now = when
            fn()
            executed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded {max_events} events — runaway simulation?")

    def empty(self) -> bool:
        return not any(h not in self._cancelled for _, h, _ in self._heap)
