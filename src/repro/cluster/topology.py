"""Cluster topology and the paper's Experiment_X_Y core accounting.

``Experiment_X_Y`` uses ``Y`` total cores on ``X`` nodes: one master node
does processor-level scheduling, the other ``X - 1`` nodes compute; each
computing node reserves one core for its thread-level scheduling thread.
Total cores therefore decompose as ``Y = X + (X - 1) + ct_total`` where
``ct_total = Y - 2X + 1`` computing threads spread over the ``X - 1``
computing nodes (Section VI). :func:`experiment_layout` reproduces that
accounting, including the round-robin split when ``ct_total`` does not
divide evenly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.cluster.machine import NodeSpec
from repro.cluster.network import INFINIBAND_QDR, LinkModel
from repro.utils.errors import ConfigError
from repro.utils.validate import check_nonnegative

#: Hardware cap of the paper's platform: up to 11 computing threads/node
#: (12 cores minus the slave scheduling thread).
MAX_THREADS_PER_NODE = 11


@dataclass(frozen=True)
class ClusterSpec:
    """A master node plus a list of computing nodes joined by one fabric."""

    compute_nodes: Tuple[NodeSpec, ...]
    link: LinkModel = INFINIBAND_QDR
    #: Master-side per-dispatch CPU overhead (parse + pack), seconds.
    master_overhead: float = 50.0e-6
    #: Slave-side fixed handling overhead per sub-task, seconds.
    slave_overhead: float = 50.0e-6

    def __post_init__(self) -> None:
        if not self.compute_nodes:
            raise ConfigError("cluster needs at least one computing node")
        check_nonnegative("master_overhead", self.master_overhead)
        check_nonnegative("slave_overhead", self.slave_overhead)

    @property
    def n_compute_nodes(self) -> int:
        return len(self.compute_nodes)

    @property
    def total_nodes(self) -> int:
        """Including the master node (the paper's ``X``)."""
        return self.n_compute_nodes + 1

    @property
    def total_computing_threads(self) -> int:
        return sum(n.threads for n in self.compute_nodes)

    @property
    def total_cores(self) -> int:
        """The paper's ``Y``: computing threads plus all scheduling cores."""
        return self.total_computing_threads + 2 * self.total_nodes - 1

    def with_link(self, link: LinkModel) -> "ClusterSpec":
        return replace(self, link=link)

    def __repr__(self) -> str:
        threads = [n.threads for n in self.compute_nodes]
        return f"ClusterSpec(nodes={self.total_nodes}, threads={threads})"


def experiment_layout(
    nodes: int,
    cores: int,
    *,
    node_spec: NodeSpec = NodeSpec(threads=1),
    link: LinkModel = INFINIBAND_QDR,
    max_threads_per_node: int = MAX_THREADS_PER_NODE,
) -> ClusterSpec:
    """Build the cluster of ``Experiment_X_Y`` (X = ``nodes``, Y = ``cores``).

    Raises :class:`ConfigError` when the core budget leaves no computing
    thread (``Y < 2X``) or exceeds the per-node thread cap.
    """
    if nodes < 2:
        raise ConfigError(f"need >= 2 nodes (one master, one computing), got {nodes}")
    ct_total = cores - 2 * nodes + 1
    n_compute = nodes - 1
    if ct_total < n_compute:
        raise ConfigError(
            f"Experiment_{nodes}_{cores}: only {ct_total} computing threads for "
            f"{n_compute} computing nodes — increase cores (need Y >= 3X - 2)"
        )
    base, extra = divmod(ct_total, n_compute)
    threads = [base + (1 if k < extra else 0) for k in range(n_compute)]
    if max(threads) > max_threads_per_node:
        raise ConfigError(
            f"Experiment_{nodes}_{cores} needs {max(threads)} threads on one node, "
            f"cap is {max_threads_per_node}"
        )
    compute_nodes = tuple(replace(node_spec, threads=t) for t in threads)
    return ClusterSpec(compute_nodes=compute_nodes, link=link)
