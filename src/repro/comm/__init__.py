"""Message passing between the master part and slave parts.

The paper's processor level speaks MPI (MPICH 1.4.1); this environment has
no MPI, so the same master/slave protocol runs over pluggable
:class:`~repro.comm.transport.Channel` implementations — in-process queues
(thread slaves), OS pipes (``multiprocessing`` slaves, the MPI stand-in),
or the simulated cluster's modeled links. Protocol and messages are
identical across all three; see DESIGN.md's substitution table.
"""

from repro.comm.messages import (
    BatchAssign,
    BatchResult,
    BlockRef,
    EndSignal,
    IdleSignal,
    Message,
    TaskAssign,
    TaskResult,
)
from repro.comm.transport import (
    Channel,
    ChannelClosed,
    ChannelTimeout,
    PipeChannel,
    QueueChannel,
    channel_pair,
    pipe_channel_pair,
)
from repro.comm.serialization import payload_nbytes, message_nbytes

__all__ = [
    "Message",
    "IdleSignal",
    "TaskAssign",
    "TaskResult",
    "BatchAssign",
    "BatchResult",
    "BlockRef",
    "EndSignal",
    "Channel",
    "ChannelClosed",
    "ChannelTimeout",
    "QueueChannel",
    "PipeChannel",
    "channel_pair",
    "pipe_channel_pair",
    "payload_nbytes",
    "message_nbytes",
]
