"""Typed protocol messages of the EasyHPS master/slave loops.

The protocol is exactly the paper's Figs 9 and 11:

1. a slave announces itself idle (:class:`IdleSignal`, Fig 11 step a);
2. the master answers with a computable sub-task and its necessary data
   (:class:`TaskAssign`, Fig 9 step d) or with :class:`EndSignal`
   (Fig 9 step i);
3. the slave computes and replies (:class:`TaskResult`, Fig 11 / Fig 9
   step e).

``epoch`` implements the fault-tolerance bookkeeping of the sub-task
register table: every (re)dispatch of a task bumps its epoch, and the
master discards results whose epoch no longer matches the registration —
that is how a timed-out task that eventually *does* answer cannot corrupt
a rerun's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: Sub-task identifier: a vertex of the abstract (process-level) DAG.
TaskId = Tuple[int, ...]


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages (picklable value objects)."""


@dataclass(frozen=True)
class IdleSignal(Message):
    """Slave -> master: ready for work."""

    slave_id: int


@dataclass(frozen=True)
class TaskAssign(Message):
    """Master -> slave: one computable sub-task with its necessary data."""

    task_id: TaskId
    epoch: int
    inputs: Dict[str, Any] = field(compare=False)


@dataclass(frozen=True)
class TaskResult(Message):
    """Slave -> master: a finished sub-task's computed data."""

    task_id: TaskId
    epoch: int
    slave_id: int
    outputs: Dict[str, Any] = field(compare=False)
    #: Slave-side wall-clock seconds spent computing (reporting only).
    elapsed: float = 0.0


@dataclass(frozen=True)
class EndSignal(Message):
    """Master -> slave: all sub-tasks finished; shut down (Fig 11 step k)."""
