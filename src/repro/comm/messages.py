"""Typed protocol messages of the EasyHPS master/slave loops.

The protocol is exactly the paper's Figs 9 and 11:

1. a slave announces itself idle (:class:`IdleSignal`, Fig 11 step a);
2. the master answers with a computable sub-task and its necessary data
   (:class:`TaskAssign`, Fig 9 step d) or with :class:`EndSignal`
   (Fig 9 step i);
3. the slave computes and replies (:class:`TaskResult`, Fig 11 / Fig 9
   step e).

``epoch`` implements the fault-tolerance bookkeeping of the sub-task
register table: every (re)dispatch of a task bumps its epoch, and the
master discards results whose epoch no longer matches the registration —
that is how a timed-out task that eventually *does* answer cannot corrupt
a rerun's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Sub-task identifier: a vertex of the abstract (process-level) DAG.
TaskId = Tuple[int, ...]


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages (picklable value objects)."""


@dataclass(frozen=True)
class IdleSignal(Message):
    """Slave -> master: ready for work."""

    slave_id: int


@dataclass(frozen=True)
class TaskAssign(Message):
    """Master -> slave: one computable sub-task with its necessary data.

    ``lease`` is the heartbeat lease the master granted for this dispatch
    (seconds; 0 when the lease protocol is off): the slave must be heard
    from — any message, heartbeats included — within each lease window or
    the dispatch is cancelled and redistributed before its hard timeout.
    """

    task_id: TaskId
    epoch: int
    inputs: Dict[str, Any] = field(compare=False)
    lease: float = 0.0
    #: Canonical content digest of ``inputs``
    #: (:func:`repro.comm.serialization.content_digest`); None when the
    #: run's integrity mode is ``off`` — receivers then skip verification.
    digest: Optional[str] = None


@dataclass(frozen=True)
class TaskResult(Message):
    """Slave -> master: a finished sub-task's computed data."""

    task_id: TaskId
    epoch: int
    slave_id: int
    outputs: Dict[str, Any] = field(compare=False)
    #: Slave-side wall-clock seconds spent computing (reporting only).
    elapsed: float = 0.0
    #: Canonical content digest of ``outputs``; None when integrity is off.
    digest: Optional[str] = None


@dataclass(frozen=True)
class BlockRef:
    """Handle to a DP block parked in a shared-memory segment.

    Not a :class:`Message` — a ``BlockRef`` rides *inside* a task
    message's payload dict where the ndarray used to be, and the
    receiving :class:`~repro.comm.shm.ShmChannel` rehydrates it back
    into an ndarray before the runtime sees the message. The digest of
    a rehydrated block is bit-identical to the digest of the original
    array (same dtype/shape/C-order bytes), so the integrity tier never
    notices the transport changed.
    """

    #: ``multiprocessing.shared_memory`` segment name (run-prefixed).
    segment: str
    #: ``numpy.dtype.str`` of the parked array.
    dtype: str
    shape: Tuple[int, ...]
    #: Byte length of the parked C-order buffer.
    nbytes: int


@dataclass(frozen=True)
class BatchAssign(Message):
    """Master -> slave: one computable anti-diagonal wave in one envelope.

    Each element is a fully-formed :class:`TaskAssign` — registered,
    leased, and digest-stamped individually — so retry/lease/journal
    semantics stay per-subtask; only the *transport* is amortized (one
    message envelope for the whole wave, the α term of the link model).
    """

    assigns: Tuple[TaskAssign, ...]


@dataclass(frozen=True)
class BatchResult(Message):
    """Slave -> master: every finished sub-task of one assigned wave.

    Mirrors :class:`BatchAssign`: each element is a complete
    :class:`TaskResult` (own epoch, elapsed, digest) and the master
    verifies/commits them one by one; a worker that dies mid-wave simply
    never sends the envelope and every registered subtask times out.
    """

    slave_id: int
    results: Tuple[TaskResult, ...]


@dataclass(frozen=True)
class Heartbeat(Message):
    """Slave -> master: periodic liveness beacon (lease renewal).

    Sent every ``heartbeat_interval`` seconds from a dedicated slave
    thread, including *while computing* — which is exactly when the idle
    announcement loop goes quiet. The master renews every lease held by
    ``slave_id`` on receipt; a worker whose heartbeats stop loses its
    leases and its in-flight dispatches are redistributed without waiting
    for the full task timeout.
    """

    slave_id: int
    #: The sub-task the slave is currently computing, if any (reporting).
    task_id: Any = None
    epoch: int = -1


@dataclass(frozen=True)
class WorkerLeave(Message):
    """Slave -> master: clean departure from the worker pool (elastic
    membership). The master retires the worker immediately — its in-flight
    dispatches are re-queued without charging any retry budget, and it is
    never assigned further work. The counterpart, joining mid-run, is
    master-side: :meth:`repro.runtime.master.MasterPart.attach_worker`.
    """

    slave_id: int


@dataclass(frozen=True)
class EndSignal(Message):
    """Master -> slave: all sub-tasks finished; shut down (Fig 11 step k)."""
