"""Payload size accounting for protocol messages.

The simulated cluster charges ``latency + bytes / bandwidth`` per message,
and reports also tally real-backend traffic, so both need a consistent
"bytes on the wire" estimate. We count array/str/bytes payload plus a
small fixed envelope per message rather than pickling (which would be
slow and allocation-heavy on hot paths).
"""

from __future__ import annotations

from numbers import Number
from typing import Any

import numpy as np

from repro.comm.messages import Message, TaskAssign, TaskResult

#: Fixed per-message envelope (headers, task id, epoch) in bytes.
MESSAGE_ENVELOPE_BYTES = 64


def payload_nbytes(obj: Any) -> int:
    """Recursively estimate the wire size of a message payload."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (bool, Number, np.generic)):
        return 8
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(v) for v in obj)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")


def message_nbytes(msg: Message) -> int:
    """Wire size of a protocol message: envelope plus data payload."""
    if isinstance(msg, TaskAssign):
        return MESSAGE_ENVELOPE_BYTES + payload_nbytes(msg.inputs)
    if isinstance(msg, TaskResult):
        return MESSAGE_ENVELOPE_BYTES + payload_nbytes(msg.outputs)
    return MESSAGE_ENVELOPE_BYTES
