"""Payload size accounting and canonical content digests for messages.

The simulated cluster charges ``latency + bytes / bandwidth`` per message,
and reports also tally real-backend traffic, so both need a consistent
"bytes on the wire" estimate. We count array/str/bytes payload plus a
small fixed envelope per message rather than pickling (which would be
slow and allocation-heavy on hot paths).

:func:`content_digest` is the end-to-end integrity primitive: a canonical
digest of a message payload that is identical across interpreter
processes (never Python ``hash()``, which is salted by ``PYTHONHASHSEED``),
across the processes backend's pickle round-trip, and across dict
insertion orders. Senders stamp it on :class:`TaskAssign`/:class:`TaskResult`
hops and receivers recompute it, so an in-transit mutation is detected at
receive rather than silently merged into the DP table.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from numbers import Number
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.messages import (
    BatchAssign,
    BatchResult,
    BlockRef,
    Message,
    TaskAssign,
    TaskResult,
)

#: Fixed per-message envelope (headers, task id, epoch) in bytes.
MESSAGE_ENVELOPE_BYTES = 64

#: Hex digest length of :func:`content_digest` (blake2b, 16-byte digest).
CONTENT_DIGEST_BYTES = 16


def _hash_into(h: Any, obj: Any) -> None:
    """Feed a canonical, type-tagged encoding of ``obj`` into hasher ``h``.

    Every branch starts with a one-byte type tag and length-prefixes
    variable-size data, so distinct structures can never collide by
    concatenation ambiguity.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, np.ndarray):
        h.update(b"A")
        descr = obj.dtype.str.encode()
        h.update(struct.pack("<I", len(descr)))
        h.update(descr)
        h.update(struct.pack("<I", obj.ndim))
        for dim in obj.shape:
            h.update(struct.pack("<q", dim))
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, bool):  # before Number: bool subclasses int
        h.update(b"b1" if obj else b"b0")
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        h.update(b"B" + struct.pack("<Q", len(raw)))
        h.update(raw)
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(b"S" + struct.pack("<Q", len(raw)))
        h.update(raw)
    elif isinstance(obj, (int, np.integer)):
        raw = repr(int(obj)).encode()
        h.update(b"I" + struct.pack("<I", len(raw)))
        h.update(raw)
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + struct.pack("<d", float(obj)))
    elif isinstance(obj, (complex, Number, np.generic)):
        raw = repr(obj).encode()
        h.update(b"C" + struct.pack("<I", len(raw)))
        h.update(raw)
    elif isinstance(obj, dict):
        # Canonical order: sort entries by the digest of the *key*, so
        # insertion order (and any hash-seed-dependent iteration order)
        # cannot leak into the digest.
        entries = sorted(
            ((content_digest(k), k, v) for k, v in obj.items()),
            key=lambda e: e[0],
        )
        h.update(b"D" + struct.pack("<Q", len(entries)))
        for _, k, v in entries:
            _hash_into(h, k)
            _hash_into(h, v)
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" + struct.pack("<Q", len(obj)))
        for v in obj:
            _hash_into(h, v)
    elif isinstance(obj, (set, frozenset)):
        digests = sorted(content_digest(v) for v in obj)
        h.update(b"T" + struct.pack("<Q", len(digests)))
        for d in digests:
            h.update(d.encode())
    else:
        raise TypeError(f"cannot digest payload of type {type(obj).__name__}")


def content_digest(obj: Any) -> str:
    """Canonical hex digest of a message payload.

    Independent of ``PYTHONHASHSEED``, dict ordering, and pickling; equal
    digests mean equal content for all types :func:`payload_nbytes`
    accepts (arrays compare by dtype, shape, and C-order bytes).
    """
    h = hashlib.blake2b(digest_size=CONTENT_DIGEST_BYTES)
    _hash_into(h, obj)
    return h.hexdigest()


def message_digest(msg: Message) -> Optional[str]:
    """Digest of the data payload a message carries, None for bare signals."""
    if isinstance(msg, TaskAssign):
        return content_digest(msg.inputs)
    if isinstance(msg, TaskResult):
        return content_digest(msg.outputs)
    return None


def payload_nbytes(obj: Any) -> int:
    """Recursively estimate the wire size of a message payload."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, BlockRef):
        # A ref stands for the block it points at: the bytes still move
        # end to end (through the segment instead of the pipe), so byte
        # counters stay identical whether the shm plane is on or off.
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (bool, Number, np.generic)):
        return 8
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(v) for v in obj)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")


def message_nbytes(msg: Message) -> int:
    """Wire size of a protocol message: envelope plus data payload.

    A batch costs ONE envelope plus the payloads of every subtask it
    carries — the α-amortization the batching exists for: n messages
    collapse to one, their β·size payload cost is unchanged.
    """
    if isinstance(msg, TaskAssign):
        return MESSAGE_ENVELOPE_BYTES + payload_nbytes(msg.inputs)
    if isinstance(msg, TaskResult):
        return MESSAGE_ENVELOPE_BYTES + payload_nbytes(msg.outputs)
    if isinstance(msg, BatchAssign):
        return MESSAGE_ENVELOPE_BYTES + sum(
            payload_nbytes(a.inputs) for a in msg.assigns
        )
    if isinstance(msg, BatchResult):
        return MESSAGE_ENVELOPE_BYTES + sum(
            payload_nbytes(r.outputs) for r in msg.results
        )
    return MESSAGE_ENVELOPE_BYTES


# -- pickle protocol-5 out-of-band buffer round-trip ------------------------------


def oob_dumps(obj: Any) -> Tuple[bytes, List[bytes]]:
    """Pickle ``obj`` with protocol 5, extracting payload buffers out-of-band.

    Returns ``(payload, buffers)``: the pickle stream plus the raw buffer
    blocks (contiguous ndarray data, large bytes objects) that a
    zero-copy transport can ship separately — e.g. written straight into
    a shared-memory segment instead of being copied into the stream.
    """
    buffers: List[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    return payload, [b.raw().tobytes() for b in buffers]


def oob_loads(payload: bytes, buffers: Sequence[Any]) -> Any:
    """Inverse of :func:`oob_dumps`; ``buffers`` may be bytes or memoryviews."""
    return pickle.loads(payload, buffers=buffers)
