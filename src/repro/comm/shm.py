"""Zero-copy block transport over ``multiprocessing.shared_memory``.

The processes backend's hot path used to pickle every DP block payload
through the master<->slave pipes. This module moves the blocks *by
reference* instead: the sender parks each large ndarray in a
shared-memory segment and ships a tiny :class:`~repro.comm.messages.BlockRef`
handle in its place; the receiver attaches the segment, copies the block
out (one memcpy — the only per-hop copy left), and unlinks it.

Design rules:

- **Transparency.** :class:`ShmChannel` is a
  :class:`~repro.comm.transport.DelegatingChannel`: it encodes payloads
  on ``_send`` and rehydrates them on ``_recv``, so the master, the
  slave, and the chaos layer all keep seeing plain ndarrays. Digests
  are stamped over arrays before encode and verified after decode, so
  the integrity tier (digest/audit/vote) is preserved bit-for-bit.
- **Receiver unlinks.** The receiving side unlinks each segment right
  after copying out of it, so the steady-state footprint is one wave of
  blocks, not the whole DP table. Undelivered segments (dropped
  messages, dead workers) are reclaimed by the sender-side
  :class:`BlockStore` release hooks and, as the backstop, by the
  master's end-of-run :func:`sweep_segments` over the run's name prefix.
- **Failure is a drop, not a crash.** A mid-run attach failure (the
  segment is gone — e.g. the worker was restarted by a resume, or a
  duplicate delivery raced the first copy's unlink) surfaces as a
  :class:`~repro.comm.transport.ChannelTimeout`, i.e. exactly a dropped
  message: the slave keeps polling, the master's overtime/lease scan
  cancels the dispatch and requeues it with the normal charged retry
  budget. Nothing raises out of the runtime.

Only arrays of at least ``REPRO_SHM_MIN_BYTES`` (default 512) go through
segments; smaller blocks ride the pipe inline, where the fixed segment
setup cost would exceed the pickle it avoids.
"""

from __future__ import annotations

import os
import time
import uuid
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.messages import (
    BatchAssign,
    BatchResult,
    BlockRef,
    Message,
    TaskAssign,
    TaskResult,
)
from repro.comm.transport import Channel, ChannelTimeout, DelegatingChannel

#: Arrays below this many bytes stay inline in the message (env override
#: ``REPRO_SHM_MIN_BYTES``). Low by default so small test instances still
#: exercise the segment path.
SHM_MIN_BYTES = int(os.environ.get("REPRO_SHM_MIN_BYTES", "512"))

#: Where POSIX shared memory appears as files (Linux); used by the
#: leak sweep. On platforms without it the sweep degrades to the names
#: the local store remembers.
_DEV_SHM = "/dev/shm"


def _untrack(name: str) -> None:
    """Undo the resource tracker's registration of one segment.

    Both creating and attaching a ``SharedMemory`` registers it with the
    per-process resource tracker (Python < 3.13 has no ``track=False``),
    which would double-unlink and spam warnings once segments legally
    outlive their creator. Reclamation here is deterministic — receiver
    unlink plus the master's prefix sweep — so tracking is noise.
    """
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class ShmError:
    """One swallowed shm OSError, kept visible for telemetry."""

    op: str  # "unlink" | "attach-unlink" | "listdir"
    name: Optional[str]  # segment name, None for directory-level failures
    errno: Optional[int]
    message: str
    ts: float


class ShmErrorLog:
    """Thread-safe record of OSErrors the shm reclamation paths swallow.

    The unlink/sweep hooks are *intentionally* idempotent — a segment
    already gone is the normal receiver-unlinked case and stays silent —
    but any other OSError (EACCES on ``/dev/shm``, an EMFILE during the
    attach-before-unlink, a failing listdir) used to vanish in the same
    ``except``. Those are resource failures operators need to see: they
    land here, and the processes backend drains the log at teardown into
    the ``comm.shm.errors`` metric plus one ``shm-error`` obs event each.
    """

    def __init__(self, keep: int = 256) -> None:
        from repro.check.lock_lint import make_lock

        self._lock = make_lock("comm.shm.errors")
        self._entries: deque = deque(maxlen=keep)
        self.total = 0

    def note(self, op: str, name: Optional[str], exc: OSError) -> None:
        with self._lock:
            self.total += 1
            self._entries.append(
                ShmError(
                    op=op,
                    name=name,
                    errno=getattr(exc, "errno", None),
                    message=str(exc),
                    ts=time.time(),
                )
            )

    def drain(self, prefix: Optional[str] = None) -> Tuple[ShmError, ...]:
        """Remove and return entries for one run's segments.

        ``prefix`` filters by segment-name prefix (directory-level
        entries with no name always match — they affect every run);
        ``None`` drains everything. Draining keeps the daemon's
        per-job accounting disjoint.
        """
        with self._lock:
            if prefix is None:
                taken, kept = list(self._entries), []
            else:
                taken, kept = [], []
                for entry in self._entries:
                    if entry.name is None or entry.name.startswith(prefix):
                        taken.append(entry)
                    else:
                        kept.append(entry)
            self._entries.clear()
            self._entries.extend(kept)
            return tuple(taken)

    def snapshot(self) -> Tuple[ShmError, ...]:
        with self._lock:
            return tuple(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide log of swallowed shm errors (the reclamation hooks run on
#: teardown paths that have no channel or recorder in scope).
SHM_ERRORS = ShmErrorLog()


def drain_shm_errors(prefix: str, metrics: Any = None, obs: Any = None) -> int:
    """Teardown helper: move one run's swallowed shm errors into telemetry.

    Increments ``comm.shm.errors`` (labelled by op) on ``metrics`` and
    emits one ``shm-error`` event per entry on ``obs``; both optional.
    Returns the number of errors drained.
    """
    entries = SHM_ERRORS.drain(prefix)
    for entry in entries:
        if metrics is not None:
            metrics.counter("comm.shm.errors", op=entry.op).inc()
        if obs is not None and getattr(obs, "enabled", False):
            obs.emit(
                "shm-error",
                scope="run",
                op=entry.op,
                segment=entry.name,
                errno=entry.errno,
                error=entry.message,
            )
    return len(entries)


def run_prefix(run_id: Optional[str] = None) -> str:
    """The per-run segment name prefix (shared by master and slaves).

    With ``run_id`` (``RunConfig.run_id``) the prefix is a *pure function
    of the run identity*: a long-lived process hosting many sequential or
    concurrent runs (the ``repro serve`` daemon) gets one namespace per
    job, so each job's teardown sweep reclaims exactly its own segments —
    a pid-keyed prefix would make every sweep in that process race every
    other job's live segments. Without ``run_id`` (standalone
    ``repro run``) the prefix stays the historical fresh
    ``repro-<pid>-<nonce>`` draw.
    """
    if run_id is not None:
        safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in run_id)
        return f"repro-{safe}"
    return f"repro-{os.getpid()}-{uuid.uuid4().hex[:8]}"


class BlockStore:
    """Sender-side registry of the shared-memory segments one endpoint made.

    Each park records the segment under the run prefix; :meth:`release`
    and :meth:`sweep` unlink whatever the receiver has not already
    reclaimed (unlink of a gone segment is a no-op). The master keeps
    one store and wires its release hooks into commit, requeue, and
    worker-leave paths; each slave process keeps its own for results.
    """

    def __init__(self, prefix: str, io_policy: Optional[Any] = None) -> None:
        self.prefix = prefix
        self._seq = 0
        #: segment name -> task_id that parked it (None for results the
        #: task routing does not track); used by the release hooks.
        self._live: Dict[str, Any] = {}
        #: Injected shm-allocation faults (an
        #: :class:`~repro.cluster.faults.IoPolicy` or None): consulted
        #: before each segment create, raising the injected ENOSPC/EMFILE
        #: exactly where a full ``/dev/shm`` would.
        self.io_policy = io_policy
        #: Parks that failed (real or injected) and fell back inline.
        self.park_failures = 0

    def park(self, array: np.ndarray, owner: Any = None) -> BlockRef:
        """Copy ``array`` into a fresh segment and return its handle.

        Raises :class:`OSError` when ``/dev/shm`` refuses the allocation
        (full, fd-exhausted, or an injected fault) — callers degrade to
        the inline pickle lane per message.
        """
        block = np.ascontiguousarray(array)
        self._seq += 1
        name = f"{self.prefix}-{os.getpid()}-{self._seq}"
        nbytes = max(1, int(block.nbytes))  # zero-size segments are illegal
        if self.io_policy is not None:
            try:
                self.io_policy.check("shm")
            except OSError:
                self.park_failures += 1
                raise
        try:
            seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except OSError:
            self.park_failures += 1
            raise
        try:
            if block.nbytes:
                view = np.ndarray(block.shape, dtype=block.dtype, buffer=seg.buf)
                view[...] = block
                del view
        finally:
            seg.close()
        _untrack(name)
        self._live[name] = owner
        return BlockRef(
            segment=name,
            dtype=block.dtype.str,
            shape=tuple(block.shape),
            nbytes=int(block.nbytes),
        )

    def forget(self, name: str) -> None:
        """Stop tracking a segment the receiver is now responsible for."""
        self._live.pop(name, None)

    def release(self, name: str) -> None:
        """Unlink one segment if it still exists (idempotent)."""
        self._live.pop(name, None)
        _unlink_quiet(name)

    def release_owner(self, owner: Any) -> int:
        """Unlink every live segment parked for ``owner`` (a task id).

        The master calls this when a dispatch settles — commit, requeue
        after timeout/lease expiry, worker retirement — so segments for
        undelivered assigns never outlive the dispatch they served.
        """
        names = [n for n, o in self._live.items() if o == owner]
        for name in names:
            self.release(name)
        return len(names)

    def sweep(self) -> int:
        """Unlink every segment this store still tracks; returns the count."""
        names = list(self._live)
        for name in names:
            self.release(name)
        return len(names)

    def __len__(self) -> int:
        return len(self._live)


def _unlink_quiet(name: str) -> bool:
    """Unlink a segment by name; False when it was already gone.

    ``unlink`` also cancels the registration the attach just made, so the
    tracker books stay balanced; only when unlink loses a race is the
    registration dropped by hand.
    """
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False  # already reclaimed: the normal idempotent case
    except OSError as exc:
        SHM_ERRORS.note("unlink", name, exc)  # EMFILE/EACCES — not "gone"
        return False
    try:
        seg.close()
        seg.unlink()
    except FileNotFoundError:
        _untrack(name)
        return False
    except OSError as exc:
        SHM_ERRORS.note("unlink", name, exc)
        _untrack(name)
        return False
    return True


def leaked_segments(prefix: str) -> List[str]:
    """Names of run-prefixed segments still present on this host."""
    try:
        entries = os.listdir(_DEV_SHM)
    except FileNotFoundError:
        return []  # platform without /dev/shm: nothing to sweep
    except OSError as exc:
        SHM_ERRORS.note("listdir", None, exc)
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def sweep_segments(prefix: str) -> int:
    """Force-unlink every remaining segment of one run (the teardown
    backstop: catches orphans from workers that died mid-park)."""
    count = 0
    for name in leaked_segments(prefix):
        if _unlink_quiet(name):
            count += 1
    return count


def attach_copy(ref: BlockRef) -> np.ndarray:
    """Rehydrate one block: attach, copy out, close, unlink.

    Raises ``FileNotFoundError``/``OSError`` when the segment is gone —
    callers translate that into dropped-message semantics.
    """
    dtype = np.dtype(ref.dtype)
    if not ref.nbytes:
        return np.empty(ref.shape, dtype=dtype)
    seg = shared_memory.SharedMemory(name=ref.segment)
    try:
        view = np.ndarray(ref.shape, dtype=dtype, buffer=seg.buf)
        block = np.array(view, copy=True)
        del view
    finally:
        seg.close()
    try:
        # Receiver unlinks: destroys the segment and cancels the attach's
        # tracker registration in one go (balanced books either way).
        seg.unlink()
    except FileNotFoundError:
        _untrack(ref.segment)
    except OSError as exc:
        SHM_ERRORS.note("attach-unlink", ref.segment, exc)
        _untrack(ref.segment)
    return block


# -- payload (en/de)coding ---------------------------------------------------------


def _encode_payload(
    store: BlockStore, payload: Dict[str, Any], owner: Any
) -> Tuple[Dict[str, Any], int]:
    """Park each large array; returns ``(encoded, parks_degraded)``.

    A park that fails — ``/dev/shm`` full, fd exhaustion, an injected
    fault — degrades *that array* to the inline pickle lane instead of
    failing the send: the message still flows (slower), and digests are
    unaffected because they are stamped over the arrays themselves,
    before this encoding runs.
    """
    out: Dict[str, Any] = {}
    degraded = 0
    for key, value in payload.items():
        if isinstance(value, np.ndarray) and value.nbytes >= SHM_MIN_BYTES:
            try:
                out[key] = store.park(value, owner=owner)
            except OSError:
                out[key] = value
                degraded += 1
        else:
            out[key] = value
    return out, degraded


def _decode_payload(payload: Dict[str, Any]) -> Tuple[Dict[str, Any], int]:
    """Rehydrate every ref; returns ``(decoded, bytes_attached)``."""
    out: Dict[str, Any] = {}
    attached = 0
    for key, value in payload.items():
        if isinstance(value, BlockRef):
            out[key] = attach_copy(value)
            attached += value.nbytes
        else:
            out[key] = value
    return out, attached


class ShmChannel(DelegatingChannel):
    """Channel wrapper that moves large block payloads through segments.

    Wrap the raw transport on *both* endpoints of a processes-backend
    connection (the chaos wrapper, when present, goes outside it on the
    master side, so faults mutate the decoded arrays the runtime sees,
    not the opaque refs). Assign payloads are parked by the master's
    store, result payloads by the slave's; each side decodes what the
    other parked.
    """

    def __init__(self, inner: Channel, store: BlockStore) -> None:
        super().__init__(inner)
        self.store = store
        #: Attach failures translated into drops (mirrors the chaos
        #: channel's ``faults_injected`` so reports can count them).
        self.attach_failures = 0
        #: Arrays that fell back to the inline lane because their segment
        #: allocation failed (graceful degradation, not an error).
        self.park_degrades = 0
        #: Bytes attached while decoding the current message (drives the
        #: per-message ``shm-attach`` span).
        self._attached = 0
        #: Parks degraded while encoding the current message.
        self._degraded = 0

    # -- encode (send side) --------------------------------------------------

    def _encode(self, msg: Message) -> Message:
        if isinstance(msg, TaskAssign):
            inputs, degraded = _encode_payload(self.store, msg.inputs, msg.task_id)
            self._degraded += degraded
            return replace(msg, inputs=inputs)
        if isinstance(msg, TaskResult):
            outputs, degraded = _encode_payload(self.store, msg.outputs, msg.task_id)
            self._degraded += degraded
            return replace(msg, outputs=outputs)
        if isinstance(msg, BatchAssign):
            return BatchAssign(assigns=tuple(self._encode(a) for a in msg.assigns))
        if isinstance(msg, BatchResult):
            return replace(
                msg, results=tuple(self._encode(r) for r in msg.results)
            )
        return msg

    def _send(self, msg: Message) -> None:
        self._degraded = 0
        encoded = self._encode(msg)
        if self._degraded:
            self.park_degrades += self._degraded
            if self._obs.enabled:
                self._obs.emit(
                    "resource-degrade",
                    getattr(msg, "task_id", None),
                    epoch=getattr(msg, "epoch", -1),
                    node=getattr(self, "_obs_node", -1),
                    scope="message",
                    layer="shm",
                    action="inline-fallback",
                    n_arrays=self._degraded,
                )
        self.inner._send(encoded)

    # -- decode (recv side) --------------------------------------------------

    def _decode(self, msg: Message) -> Message:
        if isinstance(msg, TaskAssign):
            inputs, n = _decode_payload(msg.inputs)
            self._attached += n
            return replace(msg, inputs=inputs) if n else msg
        if isinstance(msg, TaskResult):
            outputs, n = _decode_payload(msg.outputs)
            self._attached += n
            return replace(msg, outputs=outputs) if n else msg
        if isinstance(msg, BatchAssign):
            return BatchAssign(assigns=tuple(self._decode(a) for a in msg.assigns))
        if isinstance(msg, BatchResult):
            return replace(msg, results=tuple(self._decode(r) for r in msg.results))
        return msg

    def _recv(self, timeout: Optional[float]) -> Message:
        msg = self.inner._recv(timeout)
        t0 = time.perf_counter()
        self._attached = 0
        try:
            decoded = self._decode(msg)
        except (FileNotFoundError, OSError) as exc:
            # The segment is gone (worker restarted by resume, duplicate
            # delivery racing the first unlink, sweep beat us to it).
            # Degrade to a dropped message: the sender's retry machinery
            # — slave re-announce, master overtime requeue with charged
            # budget — recovers exactly as for a chaos ``drop``.
            self.attach_failures += 1
            if self._obs.enabled:
                self._obs.emit(
                    "shm-attach",
                    getattr(msg, "task_id", None),
                    epoch=getattr(msg, "epoch", -1),
                    node=getattr(self, "_obs_node", -1),
                    scope="message",
                    ok=False,
                    error=str(exc),
                    t0=t0,
                    t1=time.perf_counter(),
                )
            raise ChannelTimeout(
                f"shm attach failed, message dropped: {exc}"
            ) from exc
        if self._attached and self._obs.enabled:
            self._obs.emit(
                "shm-attach",
                getattr(msg, "task_id", None),
                epoch=getattr(msg, "epoch", -1),
                node=getattr(self, "_obs_node", -1),
                scope="message",
                ok=True,
                nbytes=self._attached,
                t0=t0,
                t1=time.perf_counter(),
            )
        return decoded
