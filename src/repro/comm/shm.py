"""Zero-copy block transport over ``multiprocessing.shared_memory``.

The processes backend's hot path used to pickle every DP block payload
through the master<->slave pipes. This module moves the blocks *by
reference* instead: the sender parks each large ndarray in a
shared-memory segment and ships a tiny :class:`~repro.comm.messages.BlockRef`
handle in its place; the receiver attaches the segment, copies the block
out (one memcpy — the only per-hop copy left), and unlinks it.

Design rules:

- **Transparency.** :class:`ShmChannel` is a
  :class:`~repro.comm.transport.DelegatingChannel`: it encodes payloads
  on ``_send`` and rehydrates them on ``_recv``, so the master, the
  slave, and the chaos layer all keep seeing plain ndarrays. Digests
  are stamped over arrays before encode and verified after decode, so
  the integrity tier (digest/audit/vote) is preserved bit-for-bit.
- **Receiver unlinks.** The receiving side unlinks each segment right
  after copying out of it, so the steady-state footprint is one wave of
  blocks, not the whole DP table. Undelivered segments (dropped
  messages, dead workers) are reclaimed by the sender-side
  :class:`BlockStore` release hooks and, as the backstop, by the
  master's end-of-run :func:`sweep_segments` over the run's name prefix.
- **Failure is a drop, not a crash.** A mid-run attach failure (the
  segment is gone — e.g. the worker was restarted by a resume, or a
  duplicate delivery raced the first copy's unlink) surfaces as a
  :class:`~repro.comm.transport.ChannelTimeout`, i.e. exactly a dropped
  message: the slave keeps polling, the master's overtime/lease scan
  cancels the dispatch and requeues it with the normal charged retry
  budget. Nothing raises out of the runtime.

Only arrays of at least ``REPRO_SHM_MIN_BYTES`` (default 512) go through
segments; smaller blocks ride the pipe inline, where the fixed segment
setup cost would exceed the pickle it avoids.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import replace
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.messages import (
    BatchAssign,
    BatchResult,
    BlockRef,
    Message,
    TaskAssign,
    TaskResult,
)
from repro.comm.transport import Channel, ChannelTimeout, DelegatingChannel

#: Arrays below this many bytes stay inline in the message (env override
#: ``REPRO_SHM_MIN_BYTES``). Low by default so small test instances still
#: exercise the segment path.
SHM_MIN_BYTES = int(os.environ.get("REPRO_SHM_MIN_BYTES", "512"))

#: Where POSIX shared memory appears as files (Linux); used by the
#: leak sweep. On platforms without it the sweep degrades to the names
#: the local store remembers.
_DEV_SHM = "/dev/shm"


def _untrack(name: str) -> None:
    """Undo the resource tracker's registration of one segment.

    Both creating and attaching a ``SharedMemory`` registers it with the
    per-process resource tracker (Python < 3.13 has no ``track=False``),
    which would double-unlink and spam warnings once segments legally
    outlive their creator. Reclamation here is deterministic — receiver
    unlink plus the master's prefix sweep — so tracking is noise.
    """
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def run_prefix(run_id: Optional[str] = None) -> str:
    """The per-run segment name prefix (shared by master and slaves).

    With ``run_id`` (``RunConfig.run_id``) the prefix is a *pure function
    of the run identity*: a long-lived process hosting many sequential or
    concurrent runs (the ``repro serve`` daemon) gets one namespace per
    job, so each job's teardown sweep reclaims exactly its own segments —
    a pid-keyed prefix would make every sweep in that process race every
    other job's live segments. Without ``run_id`` (standalone
    ``repro run``) the prefix stays the historical fresh
    ``repro-<pid>-<nonce>`` draw.
    """
    if run_id is not None:
        safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in run_id)
        return f"repro-{safe}"
    return f"repro-{os.getpid()}-{uuid.uuid4().hex[:8]}"


class BlockStore:
    """Sender-side registry of the shared-memory segments one endpoint made.

    Each park records the segment under the run prefix; :meth:`release`
    and :meth:`sweep` unlink whatever the receiver has not already
    reclaimed (unlink of a gone segment is a no-op). The master keeps
    one store and wires its release hooks into commit, requeue, and
    worker-leave paths; each slave process keeps its own for results.
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._seq = 0
        #: segment name -> task_id that parked it (None for results the
        #: task routing does not track); used by the release hooks.
        self._live: Dict[str, Any] = {}

    def park(self, array: np.ndarray, owner: Any = None) -> BlockRef:
        """Copy ``array`` into a fresh segment and return its handle."""
        block = np.ascontiguousarray(array)
        self._seq += 1
        name = f"{self.prefix}-{os.getpid()}-{self._seq}"
        nbytes = max(1, int(block.nbytes))  # zero-size segments are illegal
        seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        try:
            if block.nbytes:
                view = np.ndarray(block.shape, dtype=block.dtype, buffer=seg.buf)
                view[...] = block
                del view
        finally:
            seg.close()
        _untrack(name)
        self._live[name] = owner
        return BlockRef(
            segment=name,
            dtype=block.dtype.str,
            shape=tuple(block.shape),
            nbytes=int(block.nbytes),
        )

    def forget(self, name: str) -> None:
        """Stop tracking a segment the receiver is now responsible for."""
        self._live.pop(name, None)

    def release(self, name: str) -> None:
        """Unlink one segment if it still exists (idempotent)."""
        self._live.pop(name, None)
        _unlink_quiet(name)

    def release_owner(self, owner: Any) -> int:
        """Unlink every live segment parked for ``owner`` (a task id).

        The master calls this when a dispatch settles — commit, requeue
        after timeout/lease expiry, worker retirement — so segments for
        undelivered assigns never outlive the dispatch they served.
        """
        names = [n for n, o in self._live.items() if o == owner]
        for name in names:
            self.release(name)
        return len(names)

    def sweep(self) -> int:
        """Unlink every segment this store still tracks; returns the count."""
        names = list(self._live)
        for name in names:
            self.release(name)
        return len(names)

    def __len__(self) -> int:
        return len(self._live)


def _unlink_quiet(name: str) -> bool:
    """Unlink a segment by name; False when it was already gone.

    ``unlink`` also cancels the registration the attach just made, so the
    tracker books stay balanced; only when unlink loses a race is the
    registration dropped by hand.
    """
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    try:
        seg.close()
        seg.unlink()
    except (FileNotFoundError, OSError):
        _untrack(name)
        return False
    return True


def leaked_segments(prefix: str) -> List[str]:
    """Names of run-prefixed segments still present on this host."""
    try:
        entries = os.listdir(_DEV_SHM)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(prefix))


def sweep_segments(prefix: str) -> int:
    """Force-unlink every remaining segment of one run (the teardown
    backstop: catches orphans from workers that died mid-park)."""
    count = 0
    for name in leaked_segments(prefix):
        if _unlink_quiet(name):
            count += 1
    return count


def attach_copy(ref: BlockRef) -> np.ndarray:
    """Rehydrate one block: attach, copy out, close, unlink.

    Raises ``FileNotFoundError``/``OSError`` when the segment is gone —
    callers translate that into dropped-message semantics.
    """
    dtype = np.dtype(ref.dtype)
    if not ref.nbytes:
        return np.empty(ref.shape, dtype=dtype)
    seg = shared_memory.SharedMemory(name=ref.segment)
    try:
        view = np.ndarray(ref.shape, dtype=dtype, buffer=seg.buf)
        block = np.array(view, copy=True)
        del view
    finally:
        seg.close()
    try:
        # Receiver unlinks: destroys the segment and cancels the attach's
        # tracker registration in one go (balanced books either way).
        seg.unlink()
    except (FileNotFoundError, OSError):
        _untrack(ref.segment)
    return block


# -- payload (en/de)coding ---------------------------------------------------------


def _encode_payload(
    store: BlockStore, payload: Dict[str, Any], owner: Any
) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray) and value.nbytes >= SHM_MIN_BYTES:
            out[key] = store.park(value, owner=owner)
        else:
            out[key] = value
    return out


def _decode_payload(payload: Dict[str, Any]) -> Tuple[Dict[str, Any], int]:
    """Rehydrate every ref; returns ``(decoded, bytes_attached)``."""
    out: Dict[str, Any] = {}
    attached = 0
    for key, value in payload.items():
        if isinstance(value, BlockRef):
            out[key] = attach_copy(value)
            attached += value.nbytes
        else:
            out[key] = value
    return out, attached


class ShmChannel(DelegatingChannel):
    """Channel wrapper that moves large block payloads through segments.

    Wrap the raw transport on *both* endpoints of a processes-backend
    connection (the chaos wrapper, when present, goes outside it on the
    master side, so faults mutate the decoded arrays the runtime sees,
    not the opaque refs). Assign payloads are parked by the master's
    store, result payloads by the slave's; each side decodes what the
    other parked.
    """

    def __init__(self, inner: Channel, store: BlockStore) -> None:
        super().__init__(inner)
        self.store = store
        #: Attach failures translated into drops (mirrors the chaos
        #: channel's ``faults_injected`` so reports can count them).
        self.attach_failures = 0
        #: Bytes attached while decoding the current message (drives the
        #: per-message ``shm-attach`` span).
        self._attached = 0

    # -- encode (send side) --------------------------------------------------

    def _encode(self, msg: Message) -> Message:
        if isinstance(msg, TaskAssign):
            return replace(
                msg, inputs=_encode_payload(self.store, msg.inputs, msg.task_id)
            )
        if isinstance(msg, TaskResult):
            return replace(
                msg, outputs=_encode_payload(self.store, msg.outputs, msg.task_id)
            )
        if isinstance(msg, BatchAssign):
            return BatchAssign(assigns=tuple(self._encode(a) for a in msg.assigns))
        if isinstance(msg, BatchResult):
            return replace(
                msg, results=tuple(self._encode(r) for r in msg.results)
            )
        return msg

    def _send(self, msg: Message) -> None:
        self.inner._send(self._encode(msg))

    # -- decode (recv side) --------------------------------------------------

    def _decode(self, msg: Message) -> Message:
        if isinstance(msg, TaskAssign):
            inputs, n = _decode_payload(msg.inputs)
            self._attached += n
            return replace(msg, inputs=inputs) if n else msg
        if isinstance(msg, TaskResult):
            outputs, n = _decode_payload(msg.outputs)
            self._attached += n
            return replace(msg, outputs=outputs) if n else msg
        if isinstance(msg, BatchAssign):
            return BatchAssign(assigns=tuple(self._decode(a) for a in msg.assigns))
        if isinstance(msg, BatchResult):
            return replace(msg, results=tuple(self._decode(r) for r in msg.results))
        return msg

    def _recv(self, timeout: Optional[float]) -> Message:
        msg = self.inner._recv(timeout)
        t0 = time.perf_counter()
        self._attached = 0
        try:
            decoded = self._decode(msg)
        except (FileNotFoundError, OSError) as exc:
            # The segment is gone (worker restarted by resume, duplicate
            # delivery racing the first unlink, sweep beat us to it).
            # Degrade to a dropped message: the sender's retry machinery
            # — slave re-announce, master overtime requeue with charged
            # budget — recovers exactly as for a chaos ``drop``.
            self.attach_failures += 1
            if self._obs.enabled:
                self._obs.emit(
                    "shm-attach",
                    getattr(msg, "task_id", None),
                    epoch=getattr(msg, "epoch", -1),
                    node=getattr(self, "_obs_node", -1),
                    scope="message",
                    ok=False,
                    error=str(exc),
                    t0=t0,
                    t1=time.perf_counter(),
                )
            raise ChannelTimeout(
                f"shm attach failed, message dropped: {exc}"
            ) from exc
        if self._attached and self._obs.enabled:
            self._obs.emit(
                "shm-attach",
                getattr(msg, "task_id", None),
                epoch=getattr(msg, "epoch", -1),
                node=getattr(self, "_obs_node", -1),
                scope="message",
                ok=True,
                nbytes=self._attached,
                t0=t0,
                t1=time.perf_counter(),
            )
        return decoded
