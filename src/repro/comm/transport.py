"""Channel abstractions carrying protocol messages.

A :class:`Channel` is one duplex endpoint of a master<->slave connection.
Two concrete transports exist:

- :class:`QueueChannel` — a pair of ``queue.Queue`` objects, used when
  slaves are threads of the same process;
- :class:`PipeChannel` — a ``multiprocessing`` pipe, used when slaves are
  separate OS processes (the MPI stand-in; messages pickle across).

:class:`DelegatingChannel` wraps any endpoint while keeping the counting
and telemetry on the wrapper — the extension point chaos testing uses to
inject message-level faults without the runtime knowing.

Both count messages and payload bytes per direction so run reports can
state communication volume regardless of transport. An endpoint can
additionally be :meth:`~Channel.instrument`-ed with a
:class:`~repro.obs.recorder.EventRecorder` to emit per-message telemetry
events, and :meth:`~Channel.publish_metrics` folds its counters into a
metrics registry per endpoint.
"""

from __future__ import annotations

import multiprocessing.connection
import pickle
import queue
import time
from typing import Optional, Tuple

from repro.check.lock_lint import note_blocking
from repro.comm.messages import Message
from repro.comm.serialization import message_nbytes
from repro.obs.recorder import NULL_RECORDER
from repro.utils.errors import TransportError


class ChannelTimeout(TransportError):
    """``recv`` timed out — the peer did not answer within the deadline."""


class ChannelClosed(TransportError):
    """The channel (or its peer) was closed."""


class Channel:
    """One duplex endpoint. Subclasses implement ``_send``/``_recv``/``close``."""

    def __init__(self) -> None:
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0
        self.received_bytes = 0
        self._closed = False
        #: Telemetry sink for per-message events; the shared null
        #: recorder keeps the disabled hot path to one truthiness check.
        self._obs = NULL_RECORDER
        #: Human-readable endpoint label ("slave0" as seen from the
        #: master), used in message events and metric labels.
        self.endpoint = ""

    def instrument(self, recorder, endpoint: str = "", node: int = -1) -> "Channel":
        """Attach a telemetry recorder; returns self for chaining."""
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self.endpoint = endpoint
        self._obs_node = node
        return self

    # -- public API ----------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Send a message; raises :class:`ChannelClosed` after close."""
        if self._closed:
            raise ChannelClosed("send on closed channel")
        if not isinstance(msg, Message):
            raise TransportError(f"can only send Message instances, got {type(msg).__name__}")
        note_blocking("channel.send")  # lock-lint hook, no-op unless linting
        if self._obs.enabled:
            # t_wire / t_ser are *durations* (perf_counter deltas), not
            # timestamps — the event's ``ts`` stays in the recorder's
            # clock domain while the costs are wall-clock seconds.
            # t_wire covers the transport handoff (pickle + pipe write
            # for processes, queue put for threads); t_ser times the
            # canonical-pickle sizing pass, a serialization-cost proxy.
            w0 = time.perf_counter()
            self._send(msg)
            w1 = time.perf_counter()
            nbytes = message_nbytes(msg)
            s1 = time.perf_counter()
            self.sent_messages += 1
            self.sent_bytes += nbytes
            self._obs.emit(
                "msg-send",
                getattr(msg, "task_id", None),
                epoch=getattr(msg, "epoch", -1),
                node=getattr(self, "_obs_node", -1),
                scope="message",
                nbytes=nbytes,
                type=type(msg).__name__,
                endpoint=self.endpoint,
                t_wire=w1 - w0,
                t_ser=s1 - w1,
            )
        else:
            self._send(msg)
            nbytes = message_nbytes(msg)
            self.sent_messages += 1
            self.sent_bytes += nbytes

    def recv(self, timeout: Optional[float] = None) -> Message:
        """Receive the next message, waiting at most ``timeout`` seconds."""
        if self._closed:
            raise ChannelClosed("recv on closed channel")
        note_blocking("channel.recv")  # lock-lint hook, no-op unless linting
        msg = self._recv(timeout)
        nbytes = message_nbytes(msg)
        self.received_messages += 1
        self.received_bytes += nbytes
        if self._obs.enabled:
            # t_read / t_deser are the receive-side wire-copy and
            # unpickle durations (seconds) for transports that
            # deserialize (the pipe channel); absent for in-process
            # queues, which hand the object across directly.
            t_read, t_deser = self._take_recv_costs()
            data = dict(
                nbytes=nbytes,
                type=type(msg).__name__,
                endpoint=self.endpoint,
            )
            if t_read is not None:
                data["t_read"] = t_read
            if t_deser is not None:
                data["t_deser"] = t_deser
            self._obs.emit(
                "msg-recv",
                getattr(msg, "task_id", None),
                epoch=getattr(msg, "epoch", -1),
                node=getattr(self, "_obs_node", -1),
                scope="message",
                **data,
            )
        else:
            self._take_recv_costs()
        return msg

    def publish_metrics(self, registry) -> None:
        """Fold this endpoint's traffic counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` (labelled by
        endpoint), at zero per-message cost."""
        label = self.endpoint or "channel"
        registry.counter("comm.messages_sent", endpoint=label).inc(self.sent_messages)
        registry.counter("comm.messages_received", endpoint=label).inc(self.received_messages)
        registry.counter("comm.bytes_sent", endpoint=label).inc(self.sent_bytes)
        registry.counter("comm.bytes_received", endpoint=label).inc(self.received_bytes)

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # -- transport hooks ---------------------------------------------------------

    def _send(self, msg: Message) -> None:
        raise NotImplementedError

    def _recv(self, timeout: Optional[float]) -> Message:
        raise NotImplementedError

    def _take_recv_costs(self) -> Tuple[Optional[float], Optional[float]]:
        """Pop ``(t_read, t_deser)`` of the message just received.

        Transports that copy bytes and unpickle on receive
        (:class:`PipeChannel`) stash the two durations; the public
        ``recv`` — possibly on a wrapper several layers up — collects
        them for the ``msg-recv`` telemetry event. ``t_read`` is the
        post-poll pipe read (the receive-side wire copy, cleanly
        separated from blocking wait by the preceding ``poll``);
        ``t_deser`` is the unpickle. Both None when the transport hands
        objects across directly (in-process queues).
        """
        costs = (getattr(self, "_read_s", None), getattr(self, "_deser_s", None))
        self._read_s = self._deser_s = None
        return costs


class DelegatingChannel(Channel):
    """A channel that forwards its raw transport hooks to an inner channel.

    The wrapper *is* the endpoint: callers use the wrapper's ``send`` /
    ``recv`` (so counting, telemetry, and metrics accrue on the wrapper)
    while the inner channel only supplies the transport. Subclasses
    interpose on ``_send``/``_recv`` to mutate, reorder, or suppress
    traffic — :class:`repro.chaos.channel.ChaosChannel` injects message
    faults this way.
    """

    def __init__(self, inner: Channel) -> None:
        super().__init__()
        self.inner = inner

    def _send(self, msg: Message) -> None:
        self.inner._send(msg)

    def _recv(self, timeout: Optional[float]) -> Message:
        return self.inner._recv(timeout)

    def _take_recv_costs(self) -> Tuple[Optional[float], Optional[float]]:
        # Prefer the transport's timing; wrappers themselves never stash.
        return self.inner._take_recv_costs()

    def close(self) -> None:
        super().close()
        self.inner.close()


class QueueChannel(Channel):
    """In-process channel over a pair of thread-safe queues."""

    def __init__(self, outbox: "queue.Queue[Message]", inbox: "queue.Queue[Message]") -> None:
        super().__init__()
        self._outbox = outbox
        self._inbox = inbox

    def _send(self, msg: Message) -> None:
        self._outbox.put(msg)

    def _recv(self, timeout: Optional[float]) -> Message:
        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise ChannelTimeout(f"no message within {timeout}s") from None


def channel_pair() -> Tuple[QueueChannel, QueueChannel]:
    """Create the two connected endpoints of an in-process channel."""
    a_to_b: "queue.Queue[Message]" = queue.Queue()
    b_to_a: "queue.Queue[Message]" = queue.Queue()
    return QueueChannel(a_to_b, b_to_a), QueueChannel(b_to_a, a_to_b)


class PipeChannel(Channel):
    """Cross-process channel over a ``multiprocessing`` duplex pipe."""

    def __init__(self, conn: multiprocessing.connection.Connection) -> None:
        super().__init__()
        self._conn = conn

    def _send(self, msg: Message) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ChannelClosed(f"peer gone: {exc}") from exc

    def _recv(self, timeout: Optional[float]) -> Message:
        try:
            if not self._conn.poll(timeout):
                raise ChannelTimeout(f"no message within {timeout}s")
            # Split the blocking wait (poll), the wire copy (recv_bytes)
            # and the unpickle so the receive-side costs are measurable
            # on their own (``Connection.recv`` fuses all three): the
            # read lands in ``_read_s`` (wire lane), the CPU part in
            # ``_deser_s`` (serialize lane) for the msg-recv event.
            r0 = time.perf_counter()
            buf = self._conn.recv_bytes()
            r1 = time.perf_counter()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise ChannelClosed(f"peer gone: {exc}") from exc
        msg = pickle.loads(buf)
        d1 = time.perf_counter()
        self._read_s = r1 - r0
        self._deser_s = d1 - r1
        return msg

    def close(self) -> None:
        super().close()
        self._conn.close()


def pipe_channel_pair() -> Tuple[PipeChannel, PipeChannel]:
    """Create the two connected endpoints of a cross-process channel."""
    a, b = multiprocessing.Pipe(duplex=True)
    return PipeChannel(a), PipeChannel(b)
