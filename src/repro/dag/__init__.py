"""DAG Data Driven Model — patterns, partition, runtime parsing (paper Section IV).

The model has two levels (Fig 7): a *topological level* (reduced precedence
edges used for scheduling) and a *data-communication level* (the full set of
blocks whose data a sub-task must receive before executing). Both are
exposed by every :class:`~repro.dag.pattern.DAGPattern`.
"""

from repro.dag.pattern import DAGPattern, DAGVertex, PatternType, VertexId
from repro.dag.library import (
    WavefrontPattern,
    RowColPrefixPattern,
    TriangularPattern,
    Full2DPattern,
    ChainPattern,
    CustomPattern,
    PATTERN_LIBRARY,
    get_pattern,
    register_pattern,
)
from repro.dag.partition import BlockGrid, Partition, partition_pattern
from repro.dag.parser import DAGParser
from repro.dag.model import DAGDataDrivenModel

__all__ = [
    "DAGPattern",
    "DAGVertex",
    "PatternType",
    "VertexId",
    "WavefrontPattern",
    "RowColPrefixPattern",
    "TriangularPattern",
    "Full2DPattern",
    "ChainPattern",
    "CustomPattern",
    "PATTERN_LIBRARY",
    "get_pattern",
    "register_pattern",
    "BlockGrid",
    "Partition",
    "partition_pattern",
    "DAGParser",
    "DAGDataDrivenModel",
]
