"""Exporting DAG patterns to networkx and Graphviz DOT.

Useful for inspection, documentation figures, and — in the test suite —
*cross-validation*: networkx's independent graph algorithms confirm
acyclicity, topological orders, and longest paths computed by our own
parser.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.dag.pattern import DAGPattern, VertexId, edges_of

if TYPE_CHECKING:  # pragma: no cover
    import networkx


def to_networkx(pattern: DAGPattern, data_edges: bool = False) -> "networkx.DiGraph":
    """Build a ``networkx.DiGraph`` of the pattern.

    Topological edges get ``kind="topo"``; with ``data_edges=True`` the
    data-communication level's *extra* dependencies are added with
    ``kind="data"``.
    """
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(pattern.vertices())
    for pred, succ in edges_of(pattern):
        g.add_edge(pred, succ, kind="topo")
    if data_edges:
        for v in pattern.vertices():
            topo = set(pattern.predecessors(v))
            for d in pattern.data_predecessors(v):
                if d not in topo:
                    g.add_edge(d, v, kind="data")
    return g


def to_dot(
    pattern: DAGPattern,
    name: str = "dag",
    label: Optional[Callable[[VertexId], str]] = None,
) -> str:
    """Render the pattern as Graphviz DOT text (topological edges only)."""
    label = label or (lambda v: ",".join(map(str, v)))

    def node_id(v: VertexId) -> str:
        return "n_" + "_".join(str(x).replace("-", "m") for x in v)

    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for v in pattern.vertices():
        lines.append(f'  {node_id(v)} [label="{label(v)}"];')
    for pred, succ in edges_of(pattern):
        lines.append(f"  {node_id(pred)} -> {node_id(succ)};")
    lines.append("}")
    return "\n".join(lines)
