"""DAG Pattern Model library — built-in patterns plus user registration.

The paper classifies DP problems with the tD/eD taxonomy (Section IV-C) and
ships "frequently used DAG Pattern Models" in a library; special problems
use user-defined patterns. The built-ins here cover the paper's example
algorithms:

- :class:`WavefrontPattern` — 2D/0D (edit distance, LCS, Needleman-Wunsch);
- :class:`RowColPrefixPattern` — 2D/1D with row/column prefix dependencies
  (Smith-Waterman with a *general* gap function, paper Fig 5-style);
- :class:`TriangularPattern` — 2D/1D on the upper triangle (Nussinov,
  matrix chain / optimal BST);
- :class:`Full2DPattern` — 2D/2D (Algorithm 4.3);
- :class:`ChainPattern` — a 1D sequential chain;
- :class:`CustomPattern` — explicit user-defined adjacency (Table I's
  user-defined pattern path).

Grid patterns support ``row_reversed`` orientation because the
upper-triangular problems propagate *upwards* (cell ``(i, j)`` depends on
``(i+1, j)``): the intra-block DAGs of a partitioned triangular pattern are
reversed-row wavefronts.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.dag.pattern import DAGPattern, PatternType, VertexId
from repro.utils.errors import PatternError


class _GridPattern(DAGPattern):
    """Shared plumbing for patterns whose vertices are ``(row, col)`` cells."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise PatternError(f"grid shape must be positive, got {(rows, cols)}")
        self.rows = int(rows)
        self.cols = int(cols)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    def vertices(self) -> Iterator[VertexId]:
        for i in range(self.rows):
            for j in range(self.cols):
                yield (i, j)

    def n_vertices(self) -> int:
        return self.rows * self.cols

    def contains(self, vid: VertexId) -> bool:
        if len(vid) != 2:
            return False
        i, j = vid
        return 0 <= i < self.rows and 0 <= j < self.cols

    def _key(self) -> tuple:
        return (type(self).__name__, self.rows, self.cols)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _GridPattern) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.rows}x{self.cols})"


class WavefrontPattern(_GridPattern):
    """2D/0D wavefront: cell ``(i, j)`` depends on its N, W (and NW) neighbors.

    ``row_reversed=True`` flips the row direction so that ``(i, j)`` depends
    on ``(i+1, j)`` instead — the orientation of intra-block DAGs in
    upper-triangular problems.

    ``diagonal_data_dep`` controls whether the NW corner neighbor appears at
    the data-communication level (it is topologically redundant — covered
    via N and W — but its *data* must still be shipped for recurrences such
    as edit distance that read ``D[i-1, j-1]``).
    """

    pattern_type = PatternType.WAVEFRONT_2D0D

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        row_reversed: bool = False,
        diagonal_data_dep: bool = True,
    ) -> None:
        super().__init__(rows, cols)
        self.row_reversed = bool(row_reversed)
        self.diagonal_data_dep = bool(diagonal_data_dep)

    def _key(self) -> tuple:
        return super()._key() + (self.row_reversed, self.diagonal_data_dep)

    def _up(self, i: int) -> int:
        """Row index of the row-direction predecessor of row ``i``."""
        return i + 1 if self.row_reversed else i - 1

    def _down(self, i: int) -> int:
        return i - 1 if self.row_reversed else i + 1

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        preds = []
        if self.contains((self._up(i), j)):
            preds.append((self._up(i), j))
        if j - 1 >= 0:
            preds.append((i, j - 1))
        return tuple(preds)

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        succs = []
        if self.contains((self._down(i), j)):
            succs.append((self._down(i), j))
        if j + 1 < self.cols:
            succs.append((i, j + 1))
        return tuple(succs)

    def data_predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        preds = list(self.predecessors(vid))
        if self.diagonal_data_dep:
            i, j = vid
            diag = (self._up(i), j - 1)
            if self.contains(diag):
                preds.append(diag)
        return tuple(preds)


class RowColPrefixPattern(_GridPattern):
    """2D/1D pattern: ``(i, j)`` needs the whole row prefix and column prefix.

    This is the dependency structure of Smith-Waterman with a general gap
    function: ``E[i, j] = max_k H[i, k] - w(j - k)`` scans the entire row to
    the left and ``F[i, j]`` the entire column above. The *topological*
    level reduces to wavefront edges (N and W cover everything
    transitively); the *data-communication* level is the full prefix set
    plus the NW diagonal cell.
    """

    pattern_type = PatternType.ROWCOL_PREFIX_2D1D

    def __init__(self, rows: int, cols: int, *, row_reversed: bool = False) -> None:
        super().__init__(rows, cols)
        self.row_reversed = bool(row_reversed)
        self._wave = WavefrontPattern(rows, cols, row_reversed=row_reversed)

    def _key(self) -> tuple:
        return super()._key() + (self.row_reversed,)

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return self._wave.predecessors(vid)

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return self._wave.successors(vid)

    def data_predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        row_prefix = tuple((i, k) for k in range(j))
        if self.row_reversed:
            col_prefix = tuple((k, j) for k in range(self.rows - 1, i, -1))
            diag = (i + 1, j - 1)
        else:
            col_prefix = tuple((k, j) for k in range(i))
            diag = (i - 1, j - 1)
        deps = row_prefix + col_prefix
        if self.contains(diag):
            deps = deps + (diag,)
        return deps


class TriangularPattern(DAGPattern):
    """2D/1D upper-triangular pattern (Nussinov, matrix chain, optimal BST).

    Vertices are cells ``(i, j)`` with ``0 <= i <= j < n``. Cell ``(i, j)``
    combines solutions of every split ``(i, k) / (k+1, j)``, so its
    data-communication dependencies are the whole row segment
    ``(i, i..j-1)`` and column segment ``(i+1..j, j)``; the topological
    level reduces to ``(i, j-1)`` and ``(i+1, j)``. The main diagonal
    ``(i, i)`` is the source set (paper Fig 5).
    """

    pattern_type = PatternType.TRIANGULAR_2D1D

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise PatternError(f"triangular size must be positive, got {n}")
        self.n = int(n)

    def _key(self) -> tuple:
        return (type(self).__name__, self.n)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TriangularPattern) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"TriangularPattern(n={self.n})"

    def vertices(self) -> Iterator[VertexId]:
        for i in range(self.n):
            for j in range(i, self.n):
                yield (i, j)

    def n_vertices(self) -> int:
        return self.n * (self.n + 1) // 2

    def contains(self, vid: VertexId) -> bool:
        if len(vid) != 2:
            return False
        i, j = vid
        return 0 <= i <= j < self.n

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        preds = []
        if j - 1 >= i:
            preds.append((i, j - 1))
        if i + 1 <= j:
            preds.append((i + 1, j))
        return tuple(preds)

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        succs = []
        if j + 1 < self.n:
            succs.append((i, j + 1))
        if i - 1 >= 0:
            succs.append((i - 1, j))
        return tuple(succs)

    def data_predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        row_segment = tuple((i, k) for k in range(i, j))
        col_segment = tuple((k, j) for k in range(j, i, -1))
        deps = row_segment + col_segment
        # The paired term reads the inward-diagonal cell (i+1, j-1), which
        # lies in neither the row nor the column segment.
        if j - i >= 2:
            deps = deps + ((i + 1, j - 1),)
        return deps


class Full2DPattern(_GridPattern):
    """2D/2D pattern (Algorithm 4.3): ``(i, j)`` reads every strictly
    dominated cell ``(i', j')`` with ``i' < i`` and ``j' < j``.

    The topological level uses the N/W product-order cover (every strictly
    dominated cell is an ancestor of a N/W neighbor); the data level is the
    full dominance rectangle, which is quadratic per cell — use this
    pattern at block granularity, as the paper does.
    """

    pattern_type = PatternType.FULL_2D2D

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        preds = []
        if i - 1 >= 0:
            preds.append((i - 1, j))
        if j - 1 >= 0:
            preds.append((i, j - 1))
        return tuple(preds)

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        succs = []
        if i + 1 < self.rows:
            succs.append((i + 1, j))
        if j + 1 < self.cols:
            succs.append((i, j + 1))
        return tuple(succs)

    def data_predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        i, j = vid
        dominance = tuple((a, b) for a in range(i) for b in range(j))
        # The N/W cover cells are topological preds but not strictly
        # dominated; data deps must contain them (validate() invariant).
        extra = tuple(p for p in self.predecessors(vid) if p not in dominance)
        return dominance + extra


class IndependentGridPattern(_GridPattern):
    """A grid of mutually independent cells — no edges at all.

    The degenerate-but-useful end of the taxonomy: embarrassingly parallel
    stages such as the phase-3 blocks of blocked Floyd-Warshall, where
    every cell of a stage depends only on *previous-stage* data that is
    already in hand.
    """

    pattern_type = PatternType.CUSTOM

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return ()

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return ()


class ChainPattern(DAGPattern):
    """1D chain: vertex ``(i,)`` depends on ``(i-1,)`` — fully sequential."""

    pattern_type = PatternType.CHAIN_1D

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise PatternError(f"chain length must be positive, got {n}")
        self.n = int(n)

    def _key(self) -> tuple:
        return (type(self).__name__, self.n)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChainPattern) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"ChainPattern(n={self.n})"

    def vertices(self) -> Iterator[VertexId]:
        for i in range(self.n):
            yield (i,)

    def n_vertices(self) -> int:
        return self.n

    def contains(self, vid: VertexId) -> bool:
        return len(vid) == 1 and 0 <= vid[0] < self.n

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        (i,) = vid
        return ((i - 1,),) if i > 0 else ()

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        (i,) = vid
        return ((i + 1,),) if i + 1 < self.n else ()


class CustomPattern(DAGPattern):
    """User-defined DAG Pattern Model from an explicit adjacency mapping.

    ``adjacency`` maps each vertex id to its topological predecessors;
    ``data_deps`` optionally extends the data-communication level (it is
    merged with the topological predecessors so the Fig 7 containment
    invariant always holds). The pattern is validated on construction.
    """

    pattern_type = PatternType.CUSTOM

    def __init__(
        self,
        adjacency: Mapping[VertexId, Sequence[VertexId]],
        data_deps: Optional[Mapping[VertexId, Sequence[VertexId]]] = None,
    ) -> None:
        self._preds: Dict[VertexId, Tuple[VertexId, ...]] = {
            tuple(v): tuple(tuple(p) for p in ps) for v, ps in adjacency.items()
        }
        self._succs: Dict[VertexId, list] = {v: [] for v in self._preds}
        for v, ps in self._preds.items():
            for p in ps:
                if p not in self._preds:
                    raise PatternError(f"predecessor {p!r} of {v!r} is not a declared vertex")
                self._succs[p].append(v)
        self._succs_frozen = {v: tuple(sorted(s)) for v, s in self._succs.items()}
        self._data: Dict[VertexId, Tuple[VertexId, ...]] = {}
        data_deps = data_deps or {}
        for v in self._preds:
            extra = tuple(tuple(d) for d in data_deps.get(v, ()))
            merged = self._preds[v] + tuple(d for d in extra if d not in self._preds[v])
            for d in merged:
                if d not in self._preds:
                    raise PatternError(f"data dependency {d!r} of {v!r} is not a declared vertex")
            self._data[v] = merged
        self._order = tuple(sorted(self._preds))
        self.validate()

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._order)

    def n_vertices(self) -> int:
        return len(self._order)

    def contains(self, vid: VertexId) -> bool:
        return tuple(vid) in self._preds

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return self._preds[tuple(vid)]

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return self._succs_frozen[tuple(vid)]

    def data_predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        return self._data[tuple(vid)]

    def __repr__(self) -> str:
        return f"CustomPattern({len(self._order)} vertices)"


#: Name -> factory registry of the DAG Pattern Model library (Section IV-C).
PATTERN_LIBRARY: Dict[str, type] = {
    "wavefront": WavefrontPattern,
    "rowcol-prefix": RowColPrefixPattern,
    "triangular": TriangularPattern,
    "full-2d": Full2DPattern,
    "chain": ChainPattern,
    "independent": IndependentGridPattern,
}


def get_pattern(name: str, *args, **kwargs) -> DAGPattern:
    """Instantiate a library pattern by name, e.g. ``get_pattern("wavefront", 4, 4)``."""
    try:
        factory = PATTERN_LIBRARY[name]
    except KeyError:
        raise PatternError(
            f"unknown pattern {name!r}; library has {sorted(PATTERN_LIBRARY)}"
        ) from None
    return factory(*args, **kwargs)


def register_pattern(name: str, factory: type) -> None:
    """Add a user-defined pattern factory to the library (Table I path).

    Re-registering an existing name raises, matching the paper's intent
    that library patterns are stable building blocks.
    """
    if name in PATTERN_LIBRARY:
        raise PatternError(f"pattern name {name!r} already registered")
    if not (isinstance(factory, type) and issubclass(factory, DAGPattern)):
        raise PatternError("factory must be a DAGPattern subclass")
    PATTERN_LIBRARY[name] = factory
