"""DAG Data Driven Model — pattern + two-level partition + data mapping.

This object is what gets "initialized at the beginning of DP problem
parallelization" (Section IV-D): the programmer picks or defines a DAG
Pattern Model, sets ``dag_size``, the two ``partition_size`` values and a
``data_mapping_function``; everything else (abstract DAGs, degrees,
rect_size) is derived automatically, matching Table I's promise that
"other data members will be set automatically during initialization".
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.dag.partition import BlockShape, Partition, _as_pair, partition_pattern
from repro.dag.pattern import DAGPattern, VertexId
from repro.utils.errors import PartitionError

#: Maps an abstract-DAG vertex (sub-task id) to a description of the data
#: region it owns. The default mapping returns the block's global
#: ``(row_range, col_range)``.
DataMapping = Callable[[VertexId], object]


class DAGDataDrivenModel:
    """The master/slave DAG Data Driven Model of EasyHPS.

    One instance plays the *master* role when built with the
    process-level partition size; slave models for individual sub-tasks
    come out of :meth:`thread_level`, so the same class serves both halves
    of Fig 1.
    """

    def __init__(
        self,
        pattern: DAGPattern,
        process_partition_size: BlockShape,
        thread_partition_size: BlockShape,
        data_mapping: Optional[DataMapping] = None,
    ) -> None:
        self.pattern = pattern
        self.process_partition_size: Tuple[int, int] = _as_pair(process_partition_size)
        self.thread_partition_size: Tuple[int, int] = _as_pair(thread_partition_size)
        pr, pc = self.process_partition_size
        tr, tc = self.thread_partition_size
        if tr > pr or tc > pc:
            raise PartitionError(
                "thread_partition_size must not exceed process_partition_size: "
                f"{self.thread_partition_size} > {self.process_partition_size}"
            )
        self._process_level = partition_pattern(pattern, self.process_partition_size)
        self._data_mapping: DataMapping = data_mapping or self._default_mapping

    # -- Table I derived fields ------------------------------------------------

    @property
    def dag_size(self) -> Tuple[int, int]:
        """Size of the cell-level DAG (Table I ``dag_size``)."""
        shape = getattr(self.pattern, "shape", None)
        if shape is not None:
            return shape
        n = getattr(self.pattern, "n", None)
        if n is not None:
            return (n, n) if len(next(iter(self.pattern.vertices()))) == 2 else (n, 1)
        return (self.pattern.n_vertices(), 1)

    @property
    def rect_size(self) -> Tuple[int, int]:
        """Shape of the abstract DAG after task partition (Table I ``rect_size``)."""
        return (
            self._process_level.grid.n_block_rows,
            self._process_level.grid.n_block_cols,
        )

    @property
    def dag_pos(self) -> Tuple[int, int]:
        """Position of the upper-left corner of the DAG (Table I ``dag_pos``)."""
        return (0, 0)

    # -- levels ------------------------------------------------------------------

    @property
    def process_level(self) -> Partition:
        """The master-level partition: sub-tasks scheduled across nodes."""
        return self._process_level

    def thread_level(self, bid: VertexId) -> Partition:
        """The slave-level partition of sub-task ``bid``: sub-sub-tasks
        scheduled across threads within one node (paper step e/f)."""
        return self._process_level.sub_partition(bid, self.thread_partition_size)

    # -- data mapping ---------------------------------------------------------------

    def data_mapping(self, bid: VertexId) -> object:
        """Apply the (possibly user-supplied) data mapping function."""
        return self._data_mapping(bid)

    def _default_mapping(self, bid: VertexId) -> Tuple[range, range]:
        return self._process_level.block_ranges(bid)

    def __repr__(self) -> str:
        return (
            f"DAGDataDrivenModel(pattern={self.pattern!r}, "
            f"process={self.process_partition_size}, thread={self.thread_partition_size}, "
            f"rect={self.rect_size})"
        )
