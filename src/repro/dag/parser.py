"""Runtime DAG parsing — discovering computable sub-tasks (paper Section IV-E).

Parsing is incremental topological sorting (Fig 8): a vertex becomes
*computable* when it has no unfinished predecessors; completing a vertex
"removes" it and its outgoing edges, possibly making successors
computable. The parser is the piece both the master scheduling thread
(Fig 9 step c) and the slave scheduling thread (Fig 11 step e) consult.

The parser itself is not thread-safe — the worker pools own the locking —
but it is strict: completing an unknown, not-yet-computable, or
already-finished vertex raises :class:`SchedulerError`, which is how the
fault-tolerance path's "is it still registered?" check (Fig 9 step h)
stays honest.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.dag.pattern import DAGPattern, VertexId
from repro.utils.errors import SchedulerError


class VertexState(enum.Enum):
    """Lifecycle of a vertex during parsing (grey/black vertices of Fig 8)."""

    BLOCKED = "blocked"
    COMPUTABLE = "computable"
    DONE = "done"


class DAGParser:
    """Incremental topological parser over a DAG pattern.

    ``order_key`` controls the order in which simultaneously computable
    vertices are reported (and therefore pushed onto the computable
    sub-task stack). The default sorts grid vertices by anti-diagonal then
    row, which mirrors wavefront progression.
    """

    def __init__(
        self,
        pattern: DAGPattern,
        order_key: Optional[Callable[[VertexId], object]] = None,
    ) -> None:
        self.pattern = pattern
        self._order_key = order_key or _default_order_key
        self._indegree: Dict[VertexId, int] = {}
        self._state: Dict[VertexId, VertexState] = {}
        self.reset()

    def reset(self) -> None:
        """Rebuild parser state from the pattern; forgets all completions."""
        self._indegree = {
            vid: len(self.pattern.predecessors(vid)) for vid in self.pattern.vertices()
        }
        self._state = {
            vid: VertexState.COMPUTABLE if deg == 0 else VertexState.BLOCKED
            for vid, deg in self._indegree.items()
        }
        self._n_done = 0

    # -- queries -----------------------------------------------------------

    @property
    def n_total(self) -> int:
        return len(self._indegree)

    @property
    def n_done(self) -> int:
        return self._n_done

    @property
    def n_remaining(self) -> int:
        return self.n_total - self._n_done

    def is_done(self) -> bool:
        """True once every vertex (and hence edge) has been removed."""
        return self._n_done == self.n_total

    def state(self, vid: VertexId) -> VertexState:
        try:
            return self._state[vid]
        except KeyError:
            raise SchedulerError(f"{vid!r} is not a vertex of the parsed pattern") from None

    def computable(self) -> List[VertexId]:
        """Snapshot of all currently computable vertices, in schedule order."""
        ready = [v for v, s in self._state.items() if s is VertexState.COMPUTABLE]
        ready.sort(key=self._order_key)
        return ready

    # -- transitions --------------------------------------------------------

    def complete(self, vid: VertexId) -> List[VertexId]:
        """Remove a finished vertex; return successors that just became computable.

        The returned list is sorted with ``order_key`` so callers can push
        it straight onto the computable stack deterministically.
        """
        state = self.state(vid)
        if state is VertexState.DONE:
            raise SchedulerError(f"{vid!r} completed twice")
        if state is VertexState.BLOCKED:
            raise SchedulerError(f"{vid!r} completed while still blocked on predecessors")
        self._state[vid] = VertexState.DONE
        self._n_done += 1
        fresh: List[VertexId] = []
        for s in self.pattern.successors(vid):
            self._indegree[s] -= 1
            if self._indegree[s] == 0:
                self._state[s] = VertexState.COMPUTABLE
                fresh.append(s)
            elif self._indegree[s] < 0:
                raise SchedulerError(f"indegree of {s!r} went negative — duplicate edge removal")
        fresh.sort(key=self._order_key)
        return fresh

    def invalidate(self, vids) -> List[VertexId]:
        """Un-complete a downward-closed set of DONE vertices (taint recompute).

        ``vids`` must contain every DONE successor of each of its members
        (the tainted block's committed dependent closure) — otherwise a
        DONE vertex would depend on an un-done one and the parse would be
        inconsistent, which raises :class:`SchedulerError`. Returns the
        members that are computable again (the recompute frontier), in
        schedule order; the rest re-surface through :meth:`complete` as
        their predecessors recommit.
        """
        revoked = set(vids)
        for vid in revoked:
            if self.state(vid) is not VertexState.DONE:
                raise SchedulerError(f"cannot invalidate {vid!r}: not completed")
        for vid in revoked:
            for succ in self.pattern.successors(vid):
                if succ in revoked:
                    continue
                if self._state[succ] is VertexState.DONE:
                    raise SchedulerError(
                        f"invalidation set is not downward-closed: {succ!r} is "
                        f"DONE but its predecessor {vid!r} is being invalidated"
                    )
                # The edge vid -> succ is restored; a computable successor
                # is blocked again until the recompute recommits.
                self._indegree[succ] += 1
                self._state[succ] = VertexState.BLOCKED
        frontier: List[VertexId] = []
        for vid in revoked:
            self._n_done -= 1
            deg = sum(
                1
                for pred in self.pattern.predecessors(vid)
                if pred in revoked or self._state[pred] is not VertexState.DONE
            )
            self._indegree[vid] = deg
            if deg == 0:
                self._state[vid] = VertexState.COMPUTABLE
                frontier.append(vid)
            else:
                self._state[vid] = VertexState.BLOCKED
        frontier.sort(key=self._order_key)
        return frontier

    def run_all(self) -> List[VertexId]:
        """Drain the whole DAG serially; returns the completion order.

        This is the reference "parse until no vertices remain" loop of
        Section IV-E and doubles as an acyclicity check at runtime.
        """
        order: List[VertexId] = []
        stack = self.computable()
        while stack:
            vid = stack.pop(0)
            order.append(vid)
            for fresh in self.complete(vid):
                stack.append(fresh)
            stack.sort(key=self._order_key)
        if not self.is_done():
            raise SchedulerError(
                f"parse stalled with {self.n_remaining} vertices left — the pattern has a cycle"
            )
        return order


def _default_order_key(vid: VertexId) -> Tuple:
    """Anti-diagonal-major order for numeric grids; stable repr order for
    custom vertex ids (which may mix strings and integers)."""
    if len(vid) == 2 and isinstance(vid[0], int) and isinstance(vid[1], int):
        i, j = vid
        return (0, i + j, i, j)
    return (1, tuple(repr(part) for part in vid))


def critical_path(
    pattern: DAGPattern, cost: Callable[[VertexId], float]
) -> Tuple[float, List[VertexId]]:
    """Length and one witness path of the weighted critical path.

    Used by the analysis layer to report how close a schedule's makespan is
    to the DAG's intrinsic lower bound.
    """
    longest: Dict[VertexId, float] = {}
    parent: Dict[VertexId, Optional[VertexId]] = {}
    best_tail: Optional[VertexId] = None
    for vid in pattern.topological_order():
        c = float(cost(vid))
        preds = pattern.predecessors(vid)
        if preds:
            best_pred = max(preds, key=lambda p: longest[p])
            longest[vid] = longest[best_pred] + c
            parent[vid] = best_pred
        else:
            longest[vid] = c
            parent[vid] = None
        if best_tail is None or longest[vid] > longest[best_tail]:
            best_tail = vid
    if best_tail is None:
        return (0.0, [])
    path: List[VertexId] = []
    cursor: Optional[VertexId] = best_tail
    while cursor is not None:
        path.append(cursor)
        cursor = parent[cursor]
    path.reverse()
    return (longest[best_tail], path)
