"""Task partition — turning a cell-level pattern into a schedulable block DAG.

This implements Fig 6 of the paper: the original (cell-level) DAG Pattern
Model is divided into groups of cells; each group becomes a sub-task, and
the groups form a higher-level *abstract* DAG Pattern Model of the same
dependency family. Partitioning happens twice in EasyHPS — once with
``process_partition_size`` (master level) and once more inside every
sub-task with ``thread_partition_size`` (slave level); both reuse
:func:`partition_pattern`, the slave level via :meth:`Partition.sub_partition`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from repro.dag.library import (
    ChainPattern,
    Full2DPattern,
    IndependentGridPattern,
    RowColPrefixPattern,
    TriangularPattern,
    WavefrontPattern,
)
from repro.dag.pattern import DAGPattern, VertexId
from repro.utils.errors import PartitionError

BlockShape = Union[int, Tuple[int, int]]


def _as_pair(block_shape: BlockShape) -> Tuple[int, int]:
    if isinstance(block_shape, int):
        return (block_shape, block_shape)
    br, bc = block_shape
    return (int(br), int(bc))


@dataclass(frozen=True)
class BlockGrid:
    """Geometry of a rectangular block decomposition of an ``R x C`` cell grid.

    This is the concrete form of Table I's ``data_mapping_function`` for
    matrix-shaped DP problems: it maps an abstract DAG vertex (a block id
    ``(I, J)``) to the cell ranges it owns.
    """

    shape: Tuple[int, int]
    block_shape: Tuple[int, int]

    def __post_init__(self) -> None:
        rows, cols = self.shape
        br, bc = self.block_shape
        if rows <= 0 or cols <= 0:
            raise PartitionError(f"cell grid shape must be positive, got {self.shape}")
        if br <= 0 or bc <= 0:
            raise PartitionError(f"block shape must be positive, got {self.block_shape}")

    @property
    def n_block_rows(self) -> int:
        return math.ceil(self.shape[0] / self.block_shape[0])

    @property
    def n_block_cols(self) -> int:
        return math.ceil(self.shape[1] / self.block_shape[1])

    @property
    def n_blocks(self) -> int:
        return self.n_block_rows * self.n_block_cols

    def row_range(self, block_row: int) -> range:
        """Global cell-row range of block row ``block_row``."""
        if not 0 <= block_row < self.n_block_rows:
            raise PartitionError(f"block row {block_row} out of range")
        br = self.block_shape[0]
        return range(block_row * br, min((block_row + 1) * br, self.shape[0]))

    def col_range(self, block_col: int) -> range:
        """Global cell-column range of block column ``block_col``."""
        if not 0 <= block_col < self.n_block_cols:
            raise PartitionError(f"block col {block_col} out of range")
        bc = self.block_shape[1]
        return range(block_col * bc, min((block_col + 1) * bc, self.shape[1]))

    def block_of(self, i: int, j: int) -> Tuple[int, int]:
        """Block id owning cell ``(i, j)``."""
        rows, cols = self.shape
        if not (0 <= i < rows and 0 <= j < cols):
            raise PartitionError(f"cell ({i}, {j}) outside grid {self.shape}")
        return (i // self.block_shape[0], j // self.block_shape[1])


class Partition:
    """A partitioned DAG Pattern Model (paper Fig 6b/6c).

    Attributes:
        base: the original cell-level pattern;
        abstract: the higher-level pattern whose vertices are sub-tasks;
        grid: block geometry mapping abstract vertices to cell ranges.

    ``kind`` tags the dependency family so that :meth:`sub_partition` can
    build the correct intra-block pattern (the slave-level DAG of the
    two-level runtime).
    """

    def __init__(self, base: DAGPattern, abstract: DAGPattern, grid: BlockGrid, kind: str) -> None:
        self.base = base
        self.abstract = abstract
        self.grid = grid
        self.kind = kind

    # -- geometry -----------------------------------------------------------

    def block_ids(self) -> Iterator[VertexId]:
        """All sub-task ids, i.e. the abstract pattern's vertices."""
        return self.abstract.vertices()

    @property
    def n_blocks(self) -> int:
        return self.abstract.n_vertices()

    def block_ranges(self, bid: VertexId) -> Tuple[range, range]:
        """Global ``(row_range, col_range)`` of block ``bid``.

        Chain partitions return the 1D range twice for interface uniformity.
        """
        if self.kind == "chain":
            (idx,) = bid
            r = self.grid.row_range(idx)
            return (r, r)
        block_row, block_col = bid
        return (self.grid.row_range(block_row), self.grid.col_range(block_col))

    def is_diagonal_block(self, bid: VertexId) -> bool:
        """Whether ``bid`` sits on the main diagonal of a triangular partition."""
        return self.kind == "triangular" and bid[0] == bid[1]

    def cell_count(self, bid: VertexId) -> int:
        """Number of DP cells inside block ``bid`` (triangle-aware)."""
        rows, cols = self.block_ranges(bid)
        if self.kind == "chain":
            return len(rows)
        if self.is_diagonal_block(bid):
            h = len(rows)
            return h * (h + 1) // 2
        return len(rows) * len(cols)

    def total_cells(self) -> int:
        return sum(self.cell_count(b) for b in self.block_ids())

    # -- two-level partition ---------------------------------------------------

    def block_pattern(self, bid: VertexId) -> DAGPattern:
        """The intra-block cell-level pattern of sub-task ``bid``.

        Expressed in block-local coordinates; used as input to the slave
        (thread-level) partition.
        """
        rows, cols = self.block_ranges(bid)
        h, w = len(rows), len(cols)
        if self.kind == "wavefront":
            assert isinstance(self.base, WavefrontPattern)
            return WavefrontPattern(
                h,
                w,
                row_reversed=self.base.row_reversed,
                diagonal_data_dep=self.base.diagonal_data_dep,
            )
        if self.kind == "rowcol":
            assert isinstance(self.base, RowColPrefixPattern)
            return RowColPrefixPattern(h, w, row_reversed=self.base.row_reversed)
        if self.kind == "full2d":
            return Full2DPattern(h, w)
        if self.kind == "independent":
            return IndependentGridPattern(h, w)
        if self.kind == "chain":
            return ChainPattern(h)
        if self.kind == "triangular":
            if self.is_diagonal_block(bid):
                return TriangularPattern(h)
            # Off-diagonal blocks are rectangles whose cells need the whole
            # row segment to the left and column segment *below*: a
            # reversed-row prefix pattern.
            return RowColPrefixPattern(h, w, row_reversed=True)
        raise PartitionError(f"unknown partition kind {self.kind!r}")

    def sub_partition(self, bid: VertexId, thread_block_shape: BlockShape) -> "Partition":
        """Partition one sub-task for the thread level (paper step e)."""
        return partition_pattern(self.block_pattern(bid), thread_block_shape)

    def check(self, **kwargs):
        """Run the :mod:`repro.check` partition verifier over this partition.

        Returns a :class:`~repro.check.diagnostics.CheckReport` covering the
        abstract pattern's invariants, block sizing, and preservation of
        every cell-level dependency by the coarse DAG.
        """
        from repro.check.pattern_check import check_partition

        return check_partition(self, **kwargs)

    def __repr__(self) -> str:
        return (
            f"Partition(kind={self.kind!r}, base={self.base!r}, "
            f"abstract={self.abstract!r}, blocks={self.n_blocks})"
        )


def partition_pattern(pattern: DAGPattern, block_shape: BlockShape) -> Partition:
    """Partition a cell-level pattern into a block-level :class:`Partition`.

    The abstract DAG belongs to the same dependency family as the base
    pattern (a blocked wavefront is a wavefront of blocks, a blocked
    triangular problem is a triangle of blocks, ...), which is what makes
    the two-level EasyHPS recursion close under partitioning.
    """
    br, bc = _as_pair(block_shape)
    if isinstance(pattern, TriangularPattern):
        if br != bc:
            raise PartitionError(
                f"triangular patterns need square blocks, got {(br, bc)}"
            )
        n_blocks = math.ceil(pattern.n / br)
        grid = BlockGrid(shape=(pattern.n, pattern.n), block_shape=(br, bc))
        return Partition(pattern, TriangularPattern(n_blocks), grid, "triangular")
    if isinstance(pattern, RowColPrefixPattern):
        grid = BlockGrid(shape=pattern.shape, block_shape=(br, bc))
        abstract = RowColPrefixPattern(
            grid.n_block_rows, grid.n_block_cols, row_reversed=pattern.row_reversed
        )
        return Partition(pattern, abstract, grid, "rowcol")
    if isinstance(pattern, IndependentGridPattern):
        grid = BlockGrid(shape=pattern.shape, block_shape=(br, bc))
        abstract = IndependentGridPattern(grid.n_block_rows, grid.n_block_cols)
        return Partition(pattern, abstract, grid, "independent")
    if isinstance(pattern, WavefrontPattern):
        grid = BlockGrid(shape=pattern.shape, block_shape=(br, bc))
        abstract = WavefrontPattern(
            grid.n_block_rows,
            grid.n_block_cols,
            row_reversed=pattern.row_reversed,
            diagonal_data_dep=pattern.diagonal_data_dep,
        )
        return Partition(pattern, abstract, grid, "wavefront")
    if isinstance(pattern, Full2DPattern):
        grid = BlockGrid(shape=pattern.shape, block_shape=(br, bc))
        abstract = Full2DPattern(grid.n_block_rows, grid.n_block_cols)
        return Partition(pattern, abstract, grid, "full2d")
    if isinstance(pattern, ChainPattern):
        n_blocks = math.ceil(pattern.n / br)
        grid = BlockGrid(shape=(pattern.n, 1), block_shape=(br, 1))
        return Partition(pattern, ChainPattern(n_blocks), grid, "chain")
    raise PartitionError(
        f"no built-in partition rule for {type(pattern).__name__}; "
        "partition custom patterns by supplying a block-level CustomPattern directly"
    )
