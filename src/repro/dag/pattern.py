"""DAG Pattern Model — the core abstraction of the DAG Data Driven Model.

A DAG Pattern Model is ``D = {V, E}`` (paper Section IV-A): vertices are
sub-tasks, unidirectional edges are precedence plus communication
dependencies. Patterns here are *implicit*: instead of materializing the
(possibly enormous) cell-level graph, a pattern answers neighborhood
queries (``predecessors``/``successors``/``data_predecessors``) so that the
runtime only materializes the coarse, partitioned DAG it actually
schedules (paper Fig 6).

Two dependency views exist per Fig 7:

- the **topological level** (``predecessors``) is the transitively reduced
  precedence used for parsing and scheduling;
- the **data-communication level** (``data_predecessors``) is the full set
  of vertices whose *data* must be shipped to a sub-task before it runs —
  a superset of (or equal to) the topological predecessors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Tuple

from repro.utils.errors import PatternError

#: Vertex identifier. Grid patterns use ``(row, col)`` tuples, chain
#: patterns use ``(index,)``; any hashable tuple works for custom patterns.
VertexId = Tuple[int, ...]


class PatternType(enum.Enum):
    """Classification of built-in DAG Pattern Models.

    Mirrors the ``dag_pattern_type`` enum of Table I, using the tD/eD
    taxonomy of Galil & Park that the paper adopts (Section IV-C): a
    ``tD/eD`` DP problem has an ``O(n^t)`` matrix whose cells each depend
    on ``O(n^e)`` others.
    """

    WAVEFRONT_2D0D = "wavefront-2d/0d"
    ROWCOL_PREFIX_2D1D = "rowcol-prefix-2d/1d"
    TRIANGULAR_2D1D = "triangular-2d/1d"
    FULL_2D2D = "full-2d/2d"
    CHAIN_1D = "chain-1d"
    CUSTOM = "custom"


@dataclass
class DAGVertex:
    """Materialized per-vertex record, mirroring Table I's ``DAGElements``.

    Attributes map one-to-one onto the paper's C struct:

    - ``pre_cnt`` — prefix (in-)degree at the topological level;
    - ``pos_cnt`` — postfix (out-)degree at the topological level;
    - ``data_pre_cnt`` — prefix degree at the data-communication level;
    - ``posfix_id`` — successor vertex ids (the paper's linked list);
    - ``data_prefix_id`` — data-dependency vertex ids;
    - ``process`` — the task function to run for this vertex, if bound.
    """

    vid: VertexId
    pre_cnt: int
    pos_cnt: int
    data_pre_cnt: int
    posfix_id: Tuple[VertexId, ...]
    data_prefix_id: Tuple[VertexId, ...]
    process: Optional[Callable[..., object]] = field(default=None, compare=False)


class DAGPattern:
    """Abstract DAG Pattern Model.

    Subclasses implement the neighborhood queries; this base class provides
    derived operations (sources, element materialization, validation,
    adjacency export) on top of them. Patterns are immutable value objects:
    two patterns of the same class and parameters compare equal.
    """

    pattern_type: PatternType = PatternType.CUSTOM

    # -- required interface -------------------------------------------------

    def vertices(self) -> Iterator[VertexId]:
        """Iterate all vertex ids in a deterministic order."""
        raise NotImplementedError

    def n_vertices(self) -> int:
        """Total number of vertices."""
        raise NotImplementedError

    def contains(self, vid: VertexId) -> bool:
        """Whether ``vid`` is a vertex of this pattern."""
        raise NotImplementedError

    def predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        """Topological-level predecessors of ``vid`` (reduced precedence)."""
        raise NotImplementedError

    def successors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        """Topological-level successors of ``vid``."""
        raise NotImplementedError

    # -- optional interface --------------------------------------------------

    def data_predecessors(self, vid: VertexId) -> Tuple[VertexId, ...]:
        """Data-communication-level predecessors; defaults to topological."""
        return self.predecessors(vid)

    # -- derived operations ---------------------------------------------------

    def sources(self) -> Iterator[VertexId]:
        """Vertices with no predecessors — the initially computable set."""
        for vid in self.vertices():
            if not self.predecessors(vid):
                yield vid

    def sinks(self) -> Iterator[VertexId]:
        """Vertices with no successors."""
        for vid in self.vertices():
            if not self.successors(vid):
                yield vid

    def element(self, vid: VertexId, process: Optional[Callable[..., object]] = None) -> DAGVertex:
        """Materialize the Table I record for one vertex."""
        if not self.contains(vid):
            raise PatternError(f"{vid!r} is not a vertex of {self!r}")
        preds = self.predecessors(vid)
        succs = self.successors(vid)
        data_preds = self.data_predecessors(vid)
        return DAGVertex(
            vid=vid,
            pre_cnt=len(preds),
            pos_cnt=len(succs),
            data_pre_cnt=len(data_preds),
            posfix_id=succs,
            data_prefix_id=data_preds,
            process=process,
        )

    def as_adjacency(self) -> dict:
        """Export ``{vid: predecessors}`` — handy for tests and custom patterns."""
        return {vid: self.predecessors(vid) for vid in self.vertices()}

    def validate(self) -> None:
        """Check structural invariants; raise :class:`PatternError` on failure.

        Verifies that every edge endpoint is a vertex, that predecessor and
        successor views agree, that data dependencies include topological
        ones, and that the graph admits a complete topological order (i.e.
        is acyclic). Cost is O(V + E); call it on coarse patterns, not on
        hundred-megavertex cell-level grids.
        """
        indegree = {}
        for vid in self.vertices():
            preds = self.predecessors(vid)
            indegree[vid] = len(preds)
            data_preds = set(self.data_predecessors(vid))
            for p in preds:
                if not self.contains(p):
                    raise PatternError(f"predecessor {p!r} of {vid!r} is not a vertex")
                if vid not in self.successors(p):
                    raise PatternError(f"edge {p!r}->{vid!r} missing from successors view")
                if p not in data_preds:
                    raise PatternError(
                        f"topological predecessor {p!r} of {vid!r} absent from data deps"
                    )
            for s in self.successors(vid):
                if not self.contains(s):
                    raise PatternError(f"successor {s!r} of {vid!r} is not a vertex")
                if vid not in self.predecessors(s):
                    raise PatternError(f"edge {vid!r}->{s!r} missing from predecessors view")
        # Kahn's algorithm: if the peel never stalls, the graph is acyclic.
        frontier = [v for v, d in indegree.items() if d == 0]
        seen = 0
        while frontier:
            v = frontier.pop()
            seen += 1
            for s in self.successors(v):
                indegree[s] -= 1
                if indegree[s] == 0:
                    frontier.append(s)
        if seen != self.n_vertices():
            raise PatternError(
                f"pattern has a cycle: only {seen} of {self.n_vertices()} vertices sortable"
            )

    def check(self, **kwargs):
        """Run the :mod:`repro.check` pattern verifier over this pattern.

        Unlike :meth:`validate` this returns a
        :class:`~repro.check.diagnostics.CheckReport` instead of raising on
        the first defect, and it scales to huge cell-level patterns by
        sampling (``samples``/``seed`` keywords).
        """
        from repro.check.pattern_check import check_pattern

        return check_pattern(self, **kwargs)

    def topological_order(self) -> Iterator[VertexId]:
        """Yield vertices in one valid topological order (deterministic)."""
        indegree = {vid: len(self.predecessors(vid)) for vid in self.vertices()}
        # A sorted stack keeps the order deterministic across runs.
        frontier = sorted((v for v, d in indegree.items() if d == 0), reverse=True)
        emitted = 0
        while frontier:
            v = frontier.pop()
            emitted += 1
            yield v
            fresh = []
            for s in self.successors(v):
                indegree[s] -= 1
                if indegree[s] == 0:
                    fresh.append(s)
            if fresh:
                frontier.extend(fresh)
                frontier.sort(reverse=True)
        if emitted != self.n_vertices():
            raise PatternError("pattern has a cycle; topological order incomplete")

    # -- misc ------------------------------------------------------------------

    def __iter__(self) -> Iterator[VertexId]:
        return self.vertices()

    def __len__(self) -> int:
        return self.n_vertices()

    def __contains__(self, vid: object) -> bool:
        return isinstance(vid, tuple) and self.contains(vid)


def edges_of(pattern: DAGPattern) -> Iterable[Tuple[VertexId, VertexId]]:
    """Iterate all topological edges ``(pred, succ)`` of a pattern."""
    for vid in pattern.vertices():
        for p in pattern.predecessors(vid):
            yield (p, vid)
