"""ASCII visualization of DAG patterns and parse states.

Handy in examples and debugging: renders small grid patterns the way the
paper draws them (Figs 2, 5, 8), with computable vertices as ``o``,
finished as ``#``, blocked as ``.`` and absent cells blank.
"""

from __future__ import annotations

from typing import Optional

from repro.dag.parser import DAGParser, VertexState
from repro.dag.pattern import DAGPattern


_GLYPH = {
    VertexState.BLOCKED: ".",
    VertexState.COMPUTABLE: "o",
    VertexState.DONE: "#",
}


def render_grid(pattern: DAGPattern, parser: Optional[DAGParser] = None) -> str:
    """Render a 2D pattern as a character grid.

    Without a parser every vertex renders as ``.``; with one, the Fig 8
    grey/black state shows as ``o``/``#``.
    """
    cells = {}
    max_i = max_j = 0
    for vid in pattern.vertices():
        if len(vid) != 2:
            raise ValueError("render_grid only supports 2D patterns")
        i, j = vid
        max_i, max_j = max(max_i, i), max(max_j, j)
        cells[(i, j)] = _GLYPH[parser.state(vid)] if parser else "."
    lines = []
    for i in range(max_i + 1):
        lines.append(" ".join(cells.get((i, j), " ") for j in range(max_j + 1)))
    return "\n".join(lines)


def describe(pattern: DAGPattern) -> str:
    """One-paragraph structural summary of a pattern."""
    n = pattern.n_vertices()
    n_edges = sum(len(pattern.predecessors(v)) for v in pattern.vertices())
    n_sources = sum(1 for _ in pattern.sources())
    n_sinks = sum(1 for _ in pattern.sinks())
    return (
        f"{pattern!r}: type={pattern.pattern_type.value}, vertices={n}, "
        f"edges={n_edges}, sources={n_sources}, sinks={n_sinks}"
    )
