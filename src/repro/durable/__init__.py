"""Durable state: the write-ahead commit journal and crash recovery.

The master is the runtime's single point of failure — the paper's fault
tolerance (Fig 10) only survives *worker* faults. This package removes
that gap:

- :class:`~repro.durable.journal.CommitJournal` — append-only, CRC-framed,
  fsync'd journal the master writes through on every sub-task commit,
  with periodic compacted checkpoints of the committed DP table region;
- :func:`~repro.durable.recovery.recover` — reconstruct master state
  (committed blocks, computable frontier, retry budgets) from a journal,
  tolerating torn tails from a crash mid-write;
- :func:`~repro.durable.recovery.resume_run` — continue a killed run to
  an oracle-identical result (``repro resume <journal>`` on the CLI).

Enable with ``RunConfig(journal_path="run.walj")``; knobs
``checkpoint_interval``, ``journal_fsync``, and (simulated backend)
``journal_latency`` tune it.
"""

from repro.durable.degrade import JournalGuard
from repro.durable.journal import MAGIC, CommitJournal, JournalScan, scan_journal
from repro.durable.recovery import RecoveredRun, recover, resume_run

__all__ = [
    "MAGIC",
    "CommitJournal",
    "JournalGuard",
    "JournalScan",
    "scan_journal",
    "RecoveredRun",
    "recover",
    "resume_run",
]
