"""Graceful degradation of journal I/O failures (``RunConfig.journal_degrade``).

:class:`JournalGuard` wraps a :class:`~repro.durable.journal.CommitJournal`
with the bounded retry-then-degrade ladder that turns a raw ENOSPC/EIO
into one of three *defined* outcomes instead of a stray traceback or a
torn-committed journal:

- ``abort``       — after :attr:`retries` in-place retries, raise a clean
  attributed :class:`~repro.utils.errors.ResourceExhausted` (the chaos
  campaigns, the serve daemon's per-job fault domain, and the CLI all
  already treat its parent :class:`FaultToleranceExhausted` as a clean
  abort);
- ``checkpoint``  — before aborting, compact the journal around a state
  checkpoint (``tmp + fsync + os.replace`` frees every subsumed record's
  disk) and retry the failed record once more — the rescue for a
  journal-filled-the-disk failure where the *data* still fits;
- ``memory``      — drop durability instead of the run: close and remove
  the journal file (a half-written journal must not be resumable after
  the run stopped journaling — especially taint invalidations, which
  would otherwise never be revoked on a later resume) and continue
  in-memory-only, recording the decision as a ``resource-degrade``
  telemetry event.

Every backend gets the ladder for free because
:func:`repro.backends.threads.open_journal` wraps its journal here; the
guard mirrors the :class:`CommitJournal` surface (``commit`` /
``invalidate`` / ``checkpoint`` / ``end`` / ``should_checkpoint`` /
``close``), so the master-side call sites are unchanged.

The retry loop only catches :class:`~repro.utils.errors.JournalIOError`
— the journal's own writer already repaired the file back to the last
good frame boundary before raising it, so a retry appends cleanly and
the committed prefix is CRC-recoverable at every point in between.
Injected :class:`~repro.utils.errors.MasterCrash` (the kill switch) and
plain :class:`JournalError` (closed handle, misuse) pass through
untouched.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

from repro.comm.messages import TaskId
from repro.durable.journal import CommitJournal
from repro.utils.errors import JournalIOError, ResourceExhausted

#: Maps the failing journal op to the ``resource`` field of the abort —
#: everything the journal touches is disk, but ``open`` failures are fd
#: exhaustion.
_RESOURCE_OF_OP = {"open": "fd"}


class JournalGuard:
    """Degrade-aware facade over one :class:`CommitJournal`.

    ``checkpoint_fn`` (bound post-construction via :meth:`bind_rescue`,
    because the master that owns the state snapshot is built after the
    journal) performs a full owner-side checkpoint — it is the
    ``checkpoint`` mode's rescue step. ``obs`` is the run's
    :class:`~repro.obs.EventRecorder` (or None) for ``resource-degrade``
    events; ``job_id`` attributes the abort.
    """

    def __init__(
        self,
        journal: CommitJournal,
        *,
        mode: str = "abort",
        retries: int = 2,
        job_id: Optional[str] = None,
        obs: Optional[Any] = None,
    ) -> None:
        self.journal: Optional[CommitJournal] = journal
        self.path = journal.path
        self.mode = mode
        self.retries = max(0, int(retries))
        self.job_id = job_id
        self.obs = obs
        self._checkpoint_fn: Optional[Callable[[], None]] = None
        self._in_rescue = False
        #: True once a write failure degraded this run to in-memory-only.
        self.degraded = False
        #: Failed record-write attempts absorbed by retry or rescue.
        self.errors_absorbed = 0

    # -- wiring ---------------------------------------------------------------

    def bind_rescue(self, checkpoint_fn: Callable[[], None]) -> None:
        """Attach the owner's full-checkpoint writer (``checkpoint`` mode)."""
        self._checkpoint_fn = checkpoint_fn

    @property
    def active(self) -> bool:
        """False once degraded to in-memory-only (journal gone)."""
        return self.journal is not None

    # -- the ladder -----------------------------------------------------------

    def _guarded(self, op: str, fn: Callable[[], Any], default: Any = None) -> Any:
        if self.journal is None:
            return default
        attempt = 0
        while True:
            try:
                return fn()
            except JournalIOError as exc:
                attempt += 1
                if attempt <= self.retries:
                    self.errors_absorbed += 1
                    continue
                return self._degrade(op, exc, fn, default)

    def _degrade(
        self, op: str, exc: JournalIOError, fn: Callable[[], Any], default: Any
    ) -> Any:
        if (
            self.mode == "checkpoint"
            and self._checkpoint_fn is not None
            and not self._in_rescue
            and op != "checkpoint"
        ):
            self._in_rescue = True
            try:
                self._checkpoint_fn()
                result = fn()
            except (JournalIOError, ResourceExhausted):
                pass  # rescue failed too: fall through to the abort
            else:
                self.errors_absorbed += 1
                self._note("rescue-checkpoint", op, exc)
                return result
            finally:
                self._in_rescue = False
        if self.mode == "memory":
            self._to_memory(op, exc)
            return default
        raise ResourceExhausted(
            f"journal {op} failed after {self.retries} retries "
            f"({self.mode} degrade): {exc}",
            job_id=self.job_id,
            resource=_RESOURCE_OF_OP.get(exc.op, "disk"),
            op=f"journal-{op}",
        ) from exc

    def _to_memory(self, op: str, exc: JournalIOError) -> None:
        """Drop durability: close and *remove* the journal, keep running.

        Removal matters: a journal frozen at the failure point would
        still scan as resumable, silently losing every commit (and worse,
        every taint invalidation) that happened after degradation.
        """
        journal, self.journal = self.journal, None
        self.degraded = True
        if journal is not None:
            journal.close()
            try:
                os.unlink(journal.path)
            except OSError:
                pass
        self._note("memory", op, exc)

    def _note(self, action: str, op: str, exc: JournalIOError) -> None:
        if self.obs is not None and getattr(self.obs, "enabled", False):
            self.obs.emit(
                "resource-degrade",
                scope="run",
                layer="journal",
                action=action,
                op=op,
                errno=exc.errno,
                job_id=self.job_id,
            )

    # -- CommitJournal surface ------------------------------------------------

    def begin(self, problem: Any, config: Any) -> None:
        self._guarded("begin", lambda: self.journal.begin(problem, config))

    def commit(
        self,
        task_id: TaskId,
        epoch: int,
        outputs: Optional[Dict[str, Any]],
        digest: Optional[str] = None,
    ) -> int:
        return self._guarded(
            "commit",
            lambda: self.journal.commit(task_id, epoch, outputs, digest=digest),
            default=0,
        )

    def invalidate(self, task_ids) -> None:
        self._guarded("invalidate", lambda: self.journal.invalidate(task_ids))

    def should_checkpoint(self) -> bool:
        return self.journal is not None and self.journal.should_checkpoint()

    def checkpoint(self, *args: Any, **kwargs: Any) -> int:
        return self._guarded(
            "checkpoint",
            lambda: self.journal.checkpoint(*args, **kwargs),
            default=0,
        )

    def end(self, run_digest: Optional[str] = None) -> None:
        self._guarded("end", lambda: self.journal.end(run_digest=run_digest))

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # Resume/teardown introspection used by backends and tests.

    @property
    def commits_written(self) -> int:
        return self.journal.commits_written if self.journal is not None else 0

    @property
    def checkpoints_written(self) -> int:
        return self.journal.checkpoints_written if self.journal is not None else 0

    def __enter__(self) -> "JournalGuard":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "degraded" if self.degraded else ("open" if self.active else "closed")
        return f"JournalGuard({self.path!r}, mode={self.mode}, {state})"
