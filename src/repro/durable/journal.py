"""The write-ahead commit journal (``*.walj``).

A journal is an append-only file the master writes through on every
sub-task commit, making the run recoverable after a ``kill -9`` of the
master at *any* point: ``repro resume <journal>`` reconstructs the
committed DP table region, the computable frontier, and the retry
budgets, then continues the run to an oracle-identical result.

File layout::

    MAGIC                                  b"REPRO-WALJ\\x01\\n"
    record*                                length-prefixed, CRC-framed

Each record is ``<u32 payload_len> <u32 crc32(payload)> <payload>``
(little-endian header, pickled dict payload). Record types:

- ``begin``      — the problem instance and the full :class:`RunConfig`
  (both pickled), written once at journal creation;
- ``commit``     — one committed sub-task: ``(task, epoch, outputs)``
  plus, when the run's integrity mode is on, the canonical content
  digest of the outputs;
- ``invalidate`` — taint recompute revoked a set of previously committed
  sub-tasks (an audit convicted a block; its committed dependent closure
  is invalidated and recomputed). A resume after a crash mid-recompute
  must not resurrect the tainted commits, so the revocation is journaled
  before the parser frontier is rewound;
- ``checkpoint`` — a compacted snapshot: the committed DP state arrays,
  the committed task set, the per-task attempt counts, the rolling run
  digest (an order-independent XOR-fold over per-commit content digests,
  :func:`repro.integrity.fold_commit`) and the per-task digests the fold
  is made of. Writing a checkpoint *compacts the file in place* (atomic
  rewrite via ``os.replace``), so the journal stays bounded by one
  checkpoint plus one checkpoint-interval of commits;
- ``end``        — the run finished; resume is a no-op replay. Carries
  the final rolling run digest for ``repro resume --check-oracle``.

Torn tails are expected, not exceptional: a crash mid-write leaves a
record whose length header promises more bytes than exist, or whose CRC
does not match. :func:`scan_journal` stops at the first bad frame,
reports it as a diagnostic, and recovery proceeds from the valid prefix
— the last checkpoint plus every intact commit after it. A journal is
only *unusable* (:class:`~repro.utils.errors.JournalError`) when the
magic or the begin record itself is gone.

Durability: every record is flushed; with ``fsync=True`` (the default)
it is also fsync'd, surviving OS crashes, not just process death.

The **kill switch** (``kill_after`` / ``kill_torn``) is the chaos hook:
after writing the Nth commit the journal raises
:class:`~repro.utils.errors.MasterCrash` — optionally after appending a
deliberately torn frame — which kills the master at a commit boundary
exactly as ``kill -9`` would, deterministically and seedably.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.comm.messages import TaskId
from repro.utils.errors import JournalError, JournalIOError, MasterCrash

#: File magic, versioned: bump the byte on incompatible format changes.
MAGIC = b"REPRO-WALJ\x01\n"

#: ``<payload_len> <crc32>`` little-endian frame header.
_HEADER = struct.Struct("<II")

#: Sanity cap on a single record (1 GiB) — a larger length header is
#: corruption, not data.
_MAX_RECORD = 1 << 30


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _encode(record: Dict[str, Any]) -> bytes:
    return _frame(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))


class CommitJournal:
    """Append-side of the write-ahead journal (the master's end).

    Create with :meth:`create` for a fresh run or :meth:`open_resume` to
    continue after recovery (truncates any torn tail, primes the commit
    counter). Not thread-safe by design: only the master scheduling
    thread commits, which is also what makes the journal a linearization
    of the run's commit order.
    """

    def __init__(
        self,
        path: str,
        fh: io.BufferedWriter,
        *,
        fsync: bool = True,
        checkpoint_interval: int = 32,
        kill_after: Optional[int] = None,
        kill_torn: bool = False,
        commits_written: int = 0,
        io_policy: Optional[Any] = None,
    ) -> None:
        self.path = path
        self._fh: Optional[io.BufferedWriter] = fh
        self.fsync = fsync
        self.checkpoint_interval = max(1, int(checkpoint_interval))
        self.kill_after = kill_after
        self.kill_torn = kill_torn
        #: Injected resource faults (an :class:`~repro.cluster.faults.IoPolicy`
        #: or None): consulted before every record write / fsync / the
        #: checkpoint tmp-file write, raising the injected OSError exactly
        #: where a real ENOSPC/EIO would surface.
        self.io_policy = io_policy
        #: Commit records written by *this* handle (kill-switch counter).
        self.commits_written = commits_written
        #: Commits since the last checkpoint (drives ``should_checkpoint``).
        self.commits_since_checkpoint = 0
        #: Bytes of the begin record (re-written verbatim on compaction).
        self._begin_raw: Optional[bytes] = None
        self.checkpoints_written = 0
        #: File offset after the last fully-written record: the repair
        #: point a failed write truncates back to, keeping the committed
        #: prefix CRC-recoverable no matter where an I/O fault lands.
        self._good_offset = len(MAGIC)
        #: Record writes that failed (transient or fatal) on this handle.
        self.write_errors = 0

    # -- constructors --------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        *,
        fsync: bool = True,
        checkpoint_interval: int = 32,
        kill_after: Optional[int] = None,
        kill_torn: bool = False,
        io_policy: Optional[Any] = None,
    ) -> "CommitJournal":
        """Start a fresh journal (truncates any existing file at ``path``)."""
        fh = open(path, "wb")
        fh.write(MAGIC)
        fh.flush()
        return cls(
            path,
            fh,
            fsync=fsync,
            checkpoint_interval=checkpoint_interval,
            kill_after=kill_after,
            kill_torn=kill_torn,
            io_policy=io_policy,
        )

    @classmethod
    def open_resume(
        cls,
        scan: "JournalScan",
        *,
        fsync: bool = True,
        checkpoint_interval: int = 32,
        io_policy: Optional[Any] = None,
    ) -> "CommitJournal":
        """Reopen a scanned journal for append-after-recovery.

        Truncates the file to the scanned valid prefix (dropping any torn
        tail) so the next record starts on a clean frame boundary.
        """
        with open(scan.path, "rb+") as trunc:
            trunc.truncate(scan.valid_bytes)
        fh = open(scan.path, "ab")
        journal = cls(
            scan.path,
            fh,
            fsync=fsync,
            checkpoint_interval=checkpoint_interval,
            commits_written=0,
            io_policy=io_policy,
        )
        journal._begin_raw = scan.begin_raw
        journal._good_offset = scan.valid_bytes
        return journal

    # -- record writers -------------------------------------------------------

    def _repair(self) -> None:
        """Truncate back to the last good frame boundary after a failed
        write, so the journal's committed prefix stays scan-recoverable.

        Reopens the handle (a buffered writer's state is unknowable after
        a failed flush). Every step is best-effort: if even the truncate
        fails, the torn bytes stay on disk — but the CRC/length framing
        already makes :func:`scan_journal` discard them, so recovery
        still proceeds from the same good prefix.
        """
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        try:
            os.truncate(self.path, self._good_offset)
        except OSError:
            pass
        try:
            self._fh = open(self.path, "ab")
        except OSError:
            pass  # next _write raises JournalIOError(op="open")

    def _write(self, raw: bytes) -> None:
        if self._fh is None:
            # The handle died in a previous repair; surface it as the
            # retryable I/O error so the degrade ladder (not a crash)
            # decides what happens next.
            self.write_errors += 1
            raise JournalIOError(
                f"journal {self.path!r} has no usable file handle",
                op="open", path=self.path,
            )
        fault = self.io_policy.fault("write") if self.io_policy else None
        try:
            if fault is not None and fault.kind == "partial":
                # Land a prefix of the frame, then fail: the canonical
                # torn-record generator the CRC scan must reject.
                self._fh.write(raw[: fault.cut(len(raw))])
                self._fh.flush()
                raise fault.to_oserror()
            if fault is not None:
                raise fault.to_oserror()
            self._fh.write(raw)
            self._fh.flush()
        except OSError as exc:
            self.write_errors += 1
            self._repair()
            raise JournalIOError(
                f"journal write failed on {self.path!r}: {exc}",
                op="write", errno=exc.errno, path=self.path,
            ) from exc
        if self.fsync:
            try:
                if self.io_policy:
                    self.io_policy.check("fsync")
                os.fsync(self._fh.fileno())
            except OSError as exc:
                # The bytes reached the page cache but durability is
                # refused; truncate the frame back out so a retry
                # rewrites it whole rather than appending a duplicate.
                self.write_errors += 1
                self._repair()
                raise JournalIOError(
                    f"journal fsync failed on {self.path!r}: {exc}",
                    op="fsync", errno=exc.errno, path=self.path,
                ) from exc
        self._good_offset += len(raw)

    def begin(self, problem: Any, config: Any) -> None:
        """Write the begin record: the problem and config, pickled."""
        raw = _encode({"type": "begin", "problem": problem, "config": config})
        self._begin_raw = raw
        self._write(raw)

    def commit(
        self,
        task_id: TaskId,
        epoch: int,
        outputs: Optional[Dict[str, Any]],
        digest: Optional[str] = None,
    ) -> int:
        """Append one committed sub-task (write-ahead of the state merge).

        Returns the framed record size in bytes so callers can account
        the journal's wire cost (the ``journal-write`` telemetry span).
        """
        raw = _encode({
            "type": "commit", "task": task_id, "epoch": epoch,
            "outputs": outputs, "digest": digest,
        })
        self._write(raw)
        self.commits_written += 1
        self.commits_since_checkpoint += 1
        if self.kill_after is not None and self.commits_written >= self.kill_after:
            if self.kill_torn:
                # A frame header promising more bytes than follow: the
                # canonical kill-9-mid-write artifact the CRC/length scan
                # must detect and recovery must survive.
                self._write(_HEADER.pack(0x7FFF, 0xDEADBEEF) + b"torn")
            raise MasterCrash(
                f"injected master crash after commit #{self.commits_written} "
                f"(journal {self.path!r})"
            )
        return len(raw)

    def invalidate(self, task_ids) -> None:
        """Append a taint-revocation of previously committed sub-tasks.

        Written *before* the in-memory commit map and parser frontier are
        rewound, so a crash mid-recompute recovers without the tainted
        commits (the scan subtracts them from the committed set).
        """
        self._write(_encode({"type": "invalidate", "tasks": tuple(task_ids)}))

    def should_checkpoint(self) -> bool:
        return self.commits_since_checkpoint >= self.checkpoint_interval

    def checkpoint(
        self,
        state: Optional[Dict[str, Any]],
        committed: Dict[TaskId, int],
        attempts: Dict[TaskId, int],
        run_digest: Optional[str] = None,
        commit_digests: Optional[Dict[TaskId, Optional[str]]] = None,
    ) -> int:
        """Write a compacted checkpoint; returns its payload size in bytes.

        The file is atomically rewritten as ``magic + begin + checkpoint``
        (temp file, fsync, ``os.replace``), discarding the per-commit
        records the checkpoint subsumes. A crash anywhere during
        compaction leaves either the old journal or the new one — never a
        half state — because ``os.replace`` is atomic on POSIX.
        """
        if self._begin_raw is None:
            raise JournalError("checkpoint before begin record")
        raw = _encode({
            "type": "checkpoint",
            "state": state,
            "committed": dict(committed),
            "attempts": dict(attempts),
            "run_digest": run_digest,
            "commit_digests": dict(commit_digests) if commit_digests else {},
        })
        tmp = self.path + ".compact.tmp"
        try:
            with open(tmp, "wb") as out:
                if self.io_policy:
                    self.io_policy.check("write")
                out.write(MAGIC)
                out.write(self._begin_raw)
                out.write(raw)
                out.flush()
                if self.fsync:
                    if self.io_policy:
                        self.io_policy.check("fsync")
                    os.fsync(out.fileno())
        except OSError as exc:
            # Compaction failed before the swap: the original journal is
            # untouched and still appendable — drop the tmp and report.
            self.write_errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise JournalIOError(
                f"journal checkpoint failed on {self.path!r}: {exc}",
                op="checkpoint", errno=exc.errno, path=self.path,
            ) from exc
        if self._fh is not None:
            self._fh.close()
        os.replace(tmp, self.path)
        try:
            self._fh = open(self.path, "ab")
        except OSError as exc:
            self._fh = None
            self.write_errors += 1
            raise JournalIOError(
                f"journal reopen after checkpoint failed on {self.path!r}: {exc}",
                op="open", errno=exc.errno, path=self.path,
            ) from exc
        self._good_offset = len(MAGIC) + len(self._begin_raw) + len(raw)
        self.commits_since_checkpoint = 0
        self.checkpoints_written += 1
        return len(raw)

    def end(self, run_digest: Optional[str] = None) -> None:
        """Mark the run complete (resume becomes a pure replay)."""
        self._write(_encode({"type": "end", "run_digest": run_digest}))

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CommitJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalScan:
    """The decoded valid prefix of one journal file."""

    path: str
    problem: Any = None
    config: Any = None
    #: task -> epoch of every committed sub-task (checkpoint + replayed).
    committed: Dict[TaskId, int] = field(default_factory=dict)
    #: task -> dispatch count at the last checkpoint (retry budgets).
    attempts: Dict[TaskId, int] = field(default_factory=dict)
    #: DP state snapshot of the last checkpoint (None when none written,
    #: or when the backend computes no cells — the simulator).
    checkpoint_state: Optional[Dict[str, Any]] = None
    #: Commit records after the last checkpoint, in journal order.
    commits_after_checkpoint: List[Tuple[TaskId, int, Optional[Dict[str, Any]]]] = (
        field(default_factory=list)
    )
    #: Offset of the first byte past the last intact record.
    valid_bytes: int = 0
    #: True when the file ends in a torn/corrupt frame (now discarded).
    truncated: bool = False
    #: Human-readable account of the torn tail, if any.
    diagnostic: str = ""
    #: An ``end`` record was read: the run completed.
    ended: bool = False
    #: Raw framed bytes of the begin record (for compaction on resume).
    begin_raw: Optional[bytes] = None
    #: Rolling run digest accumulator over the recovered committed set
    #: (hex; see :func:`repro.integrity.fold_commit`). The resumed master
    #: continues folding from this value.
    run_digest: Optional[str] = None
    #: task -> content digest of its committed outputs (None entries when
    #: the crashed run's integrity mode was off).
    commit_digests: Dict[TaskId, Optional[str]] = field(default_factory=dict)
    #: Taint revocations read from the journal, in order.
    invalidations: List[Tuple[TaskId, ...]] = field(default_factory=list)

    @property
    def n_committed(self) -> int:
        return len(self.committed)


def scan_journal(path: str) -> JournalScan:
    """Decode the valid prefix of a journal.

    Raises :class:`JournalError` only when the journal is unusable
    (missing, bad magic, no intact begin record). Torn or corrupt tails
    — short frame, CRC mismatch, undecodable payload — terminate the
    scan cleanly with ``truncated=True`` and a diagnostic; everything
    before the bad frame is recovered.
    """
    from repro.integrity import fold_commit, run_digest_hex

    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise JournalError(f"cannot open journal {path!r}: {exc}") from exc
    scan = JournalScan(path=path)
    fold_acc = 0
    with fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise JournalError(
                f"{path!r} is not a repro journal (bad magic {magic[:12]!r})"
            )
        offset = len(MAGIC)
        while True:
            header = fh.read(_HEADER.size)
            if not header:
                break  # clean EOF on a frame boundary
            if len(header) < _HEADER.size:
                scan.truncated = True
                scan.diagnostic = (
                    f"torn frame header at offset {offset} "
                    f"({len(header)} of {_HEADER.size} bytes)"
                )
                break
            length, crc = _HEADER.unpack(header)
            if length > _MAX_RECORD:
                scan.truncated = True
                scan.diagnostic = (
                    f"implausible record length {length} at offset {offset} "
                    "(corrupt header)"
                )
                break
            payload = fh.read(length)
            if len(payload) < length:
                scan.truncated = True
                scan.diagnostic = (
                    f"torn record at offset {offset}: header promises "
                    f"{length} bytes, file holds {len(payload)}"
                )
                break
            if zlib.crc32(payload) != crc:
                scan.truncated = True
                scan.diagnostic = (
                    f"CRC mismatch at offset {offset} "
                    f"(expected {crc:#010x}, got {zlib.crc32(payload):#010x})"
                )
                break
            try:
                record = pickle.loads(payload)
                kind = record["type"]
            except Exception as exc:  # corrupt-but-CRC-colliding payload
                scan.truncated = True
                scan.diagnostic = f"undecodable record at offset {offset}: {exc}"
                break
            raw = header + payload
            offset += len(raw)
            scan.valid_bytes = offset
            if kind == "begin":
                scan.problem = record["problem"]
                scan.config = record["config"]
                scan.begin_raw = raw
            elif kind == "commit":
                task, epoch = record["task"], record["epoch"]
                digest = record.get("digest")
                scan.committed[task] = epoch
                scan.commit_digests[task] = digest
                scan.commits_after_checkpoint.append(
                    (task, epoch, record["outputs"])
                )
                scan.attempts[task] = max(
                    scan.attempts.get(task, 0), epoch + 1
                )
                fold_acc = fold_commit(fold_acc, task, digest)
            elif kind == "invalidate":
                # Taint recompute revoked these commits; subtract them
                # from the recovered set (retry budgets stay — epochs
                # must keep outpacing any pre-crash results).
                tasks = tuple(record["tasks"])
                scan.invalidations.append(tasks)
                for task in tasks:
                    if task in scan.committed:
                        del scan.committed[task]
                        fold_acc = fold_commit(
                            fold_acc, task, scan.commit_digests.pop(task, None)
                        )
                scan.commits_after_checkpoint = [
                    entry
                    for entry in scan.commits_after_checkpoint
                    if entry[0] not in tasks
                ]
            elif kind == "checkpoint":
                scan.checkpoint_state = record["state"]
                scan.committed = dict(record["committed"])
                scan.attempts = dict(record["attempts"])
                scan.commits_after_checkpoint = []
                scan.commit_digests = dict(record.get("commit_digests") or {})
                stored = record.get("run_digest")
                fold_acc = int(stored, 16) if stored else 0
            elif kind == "end":
                scan.ended = True
    scan.run_digest = run_digest_hex(fold_acc)
    if scan.begin_raw is None:
        raise JournalError(
            f"journal {path!r} has no intact begin record"
            + (f" ({scan.diagnostic})" if scan.diagnostic else "")
        )
    return scan
