"""Reconstruct and continue a run from its write-ahead commit journal.

:func:`recover` turns a journal file into a :class:`RecoveredRun`: the
problem and config pickled into the begin record, the DP state rebuilt
from the last checkpoint plus every intact commit after it, the committed
task->epoch map (the DAG frontier is derived from it — the committed set
is downward-closed because a task only ever commits after its
predecessors), and the retry budgets. :func:`resume_run` then hands that
to the normal backend machinery, which skips committed work and continues
to an oracle-identical result — the ``repro resume <journal>`` path after
a ``kill -9`` of the master.

A torn tail (crash mid-write) is not an error: the scan stops at the
first bad frame and recovery proceeds from the valid prefix, surfacing
what was dropped in :attr:`RecoveredRun.diagnostic`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.comm.messages import TaskId
from repro.durable.journal import JournalScan, scan_journal


@dataclass
class RecoveredRun:
    """Master state reconstructed from one commit journal."""

    #: The DP problem instance the crashed run was executing.
    problem: Any
    #: The crashed run's :class:`~repro.runtime.config.RunConfig`, with
    #: the chaos kill switch stripped (resume must not re-crash) and
    #: ``journal_path`` pointed back at this journal.
    config: Any
    #: The raw scan (backends reopen the journal for append from it).
    scan: JournalScan
    #: DP state with every journaled commit applied; None when the run
    #: computes no cells (simulated backend).
    state: Optional[Dict[str, Any]]
    #: task -> epoch of every committed sub-task.
    committed: Dict[TaskId, int]
    #: task -> dispatch count (retry budgets continue, not reset).
    attempts: Dict[TaskId, int]
    #: Total sub-tasks of the instance (from the rebuilt partition).
    n_tasks: int
    #: The journal holds an ``end`` record or covers every task: resume
    #: is a pure replay, no scheduling needed.
    complete: bool
    #: The journal ended in a torn/corrupt frame (now discarded).
    truncated: bool
    #: Human-readable account of the torn tail, empty when clean.
    diagnostic: str
    #: Rolling run digest recovered from the journal (hex); the resumed
    #: master continues folding from it. None for pre-digest journals.
    run_digest: Optional[str] = None

    @property
    def n_committed(self) -> int:
        return len(self.committed)

    def summary(self) -> str:
        status = "complete" if self.complete else (
            f"{self.n_committed}/{self.n_tasks} sub-tasks committed"
        )
        lines = [
            f"journal {self.scan.path}: {self.problem.name} "
            f"({self.config.backend} backend), {status}"
        ]
        if self.truncated:
            lines.append(f"  torn tail discarded: {self.diagnostic}")
        return "\n".join(lines)


def recover(path: str) -> RecoveredRun:
    """Reconstruct master state from the journal at ``path``.

    Raises :class:`~repro.utils.errors.JournalError` only for an unusable
    journal (missing, bad magic, no begin record); torn tails recover
    from the valid prefix with :attr:`RecoveredRun.truncated` set.
    """
    scan = scan_journal(path)
    problem = scan.problem
    # Strip the chaos kill switch — resuming a run whose config says
    # "crash after N commits" must not crash again — and anchor the
    # journal path at the file we just read, wherever it moved.
    config = replace(
        scan.config,
        journal_kill_after=None,
        journal_kill_torn=False,
        journal_path=path,
    )

    proc_size, _ = config.partitions_for(problem)
    partition = problem.build_partition(proc_size)

    state: Optional[Dict[str, Any]] = None
    if config.backend != "simulated":
        # Rebuild the committed DP region: last checkpoint's snapshot (a
        # fresh state when none was written) plus every commit after it.
        state = (
            scan.checkpoint_state
            if scan.checkpoint_state is not None
            else problem.make_state()
        )
        for task_id, _epoch, outputs in scan.commits_after_checkpoint:
            problem.apply_result(state, partition, task_id, outputs)

    complete = scan.ended or len(scan.committed) >= partition.n_blocks
    return RecoveredRun(
        problem=problem,
        config=config,
        scan=scan,
        state=state,
        committed=dict(scan.committed),
        attempts=dict(scan.attempts),
        n_tasks=partition.n_blocks,
        complete=complete,
        truncated=scan.truncated,
        diagnostic=scan.diagnostic,
        run_digest=scan.run_digest,
    )


def resume_run(
    path: str,
    backend: Optional[str] = None,
    **overrides: Any,
) -> Tuple[RecoveredRun, Any]:
    """Recover the journal at ``path`` and continue the run to completion.

    ``backend`` (and any further :class:`RunConfig` field overrides)
    replace the journaled config's values — e.g. resume a processes-backend
    run on threads. Returns ``(recovered, result)`` where ``result`` is
    the usual :class:`~repro.runtime.system.RunResult`.
    """
    from repro.runtime.system import EasyHPS

    rec = recover(path)
    config = rec.config
    if backend is not None:
        config = replace(config, backend=backend)
    if overrides:
        config = replace(config, **overrides)
    rec.config = config
    result = EasyHPS(config).run(rec.problem, resume=rec)
    return rec, result
