"""End-to-end result integrity: digests, SDC audits, voting, quarantine.

Timeout-based fault tolerance (PRs 3-4) only catches faults that announce
themselves — lost messages, dead workers, torn journals. This module is
the policy layer for faults that do *not*: an in-transit bit-flip that
evades wire framing, or a worker that returns a plausible-but-wrong block
("silent data corruption"). Because DP recurrences propagate, one wrong
committed block corrupts the transitive closure of its dependents, so the
defenses are layered:

- ``digest``  — canonical content digests
  (:func:`repro.comm.serialization.content_digest`) stamped on every
  ``TaskAssign``/``TaskResult`` hop and verified at receive. Catches
  in-transit mutation whose digest is stale (the chaos ``corrupt`` fault)
  but not a mutation stamped with a self-consistent digest (``bitflip``)
  or a lying worker.
- ``audit``   — everything above, plus a deterministic sample of commits
  is recomputed master-side (budget-exempt) and compared; a divergence
  convicts the producing worker and triggers DAG-aware *taint recompute*
  of the block's committed dependent closure.
- ``vote``    — everything ``digest`` does, plus every commit requires
  ``vote_k`` agreeing results from distinct workers, escalating 2 -> 3 on
  divergence (the master itself arbitrates when no third worker exists).

Divergent workers are *quarantined* after ``quarantine_threshold``
convictions — distinct from the liveness blacklist, because a lying
worker still heartbeats and would never be evicted by timeouts.

The rolling run digest (:func:`fold_commit`) is an order-independent
XOR-fold over per-task output digests, carried in journal checkpoint
frames: invalidating a tainted commit XORs it back out, and
``repro resume --check-oracle`` compares the resumed run's final fold
against a serial-oracle fold of the same instance.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Optional

#: Valid values of ``RunConfig.integrity`` in escalating order of defense.
INTEGRITY_MODES = ("off", "digest", "audit", "vote")

#: Denominator of the deterministic audit sampler (fraction resolution).
_AUDIT_SCALE = 1 << 16


@dataclass(frozen=True)
class IntegrityPolicy:
    """Resolved integrity knobs of one run (see ``RunConfig``)."""

    mode: str = "digest"
    audit_fraction: float = 0.125
    vote_k: int = 2
    quarantine_threshold: int = 2

    @property
    def digest_on(self) -> bool:
        """Digests are stamped and verified (any mode but ``off``)."""
        return self.mode != "off"

    @property
    def audit_on(self) -> bool:
        return self.mode == "audit"

    @property
    def vote_on(self) -> bool:
        return self.mode == "vote"

    @classmethod
    def from_config(cls, config: Any) -> "IntegrityPolicy":
        return cls(
            mode=config.integrity,
            audit_fraction=config.audit_fraction,
            vote_k=config.vote_k,
            quarantine_threshold=config.quarantine_threshold,
        )

    def should_audit(self, task_id: Any) -> bool:
        """Deterministic, seedless audit sample of ``audit_fraction``.

        A pure function of the task id (crc32 threshold), so the same
        tasks are audited on every run and on resume — reproducibility
        without threading an RNG through the master.
        """
        if not self.audit_on or self.audit_fraction <= 0.0:
            return False
        if self.audit_fraction >= 1.0:
            return True
        bucket = zlib.crc32(repr(task_id).encode()) % _AUDIT_SCALE
        return bucket < int(self.audit_fraction * _AUDIT_SCALE)


def fold_commit(acc: int, task_id: Any, outputs_digest: Optional[str]) -> int:
    """Fold one commit into (or out of) the rolling run digest.

    XOR of a per-commit hash over ``(task_id, outputs_digest)`` — order
    independent, so any commit order folds to the same value, and folding
    the same commit twice removes it (how taint invalidation revokes a
    tainted commit from the digest). Epochs are deliberately excluded:
    the fold identifies *content*, so a serial oracle (all epoch 0) and a
    chaotic parallel run of the same instance fold to the same digest.
    """
    h = hashlib.blake2b(digest_size=8)
    key = repr(task_id).encode()
    h.update(struct.pack("<I", len(key)))
    h.update(key)
    h.update((outputs_digest or "none").encode())
    return acc ^ int.from_bytes(h.digest(), "little")


def run_digest_hex(acc: int) -> str:
    """Render the rolling fold accumulator as a stable hex string."""
    return format(acc & 0xFFFFFFFFFFFFFFFF, "016x")
