"""``repro.obs`` — runtime-wide observability.

One subsystem, four pieces (see ``docs/observability.md``):

- **clocks** (:mod:`repro.obs.clock`) — the same instrumentation records
  sim-time on the simulated backend and ``time.monotonic()`` elsewhere;
- **events** (:mod:`repro.obs.recorder`) — the task-lifecycle stream
  (``assign → send → compute → result → commit`` plus the fault path),
  with a zero-cost null recorder for disabled runs;
- **metrics** (:mod:`repro.obs.metrics`) — counters/gauges/histograms
  snapshot into the run report;
- **exporters** (:mod:`repro.obs.export`, :mod:`repro.obs.stats`) —
  Perfetto/Chrome JSON, the ``repro stats`` digest, and bridges feeding
  :mod:`repro.analysis.gantt` and :mod:`repro.check.trace_check` from
  the same stream;
- **profiling** (:mod:`repro.obs.prof`) — post-hoc critical-path
  analysis, time attribution, and what-if replay (``repro perf``).

Enable end to end with ``RunConfig(observe=True)`` (or ``trace=True``,
which implies event recording) and export with
``repro run ... --trace-out trace.json`` / ``repro stats trace.json``.
"""

from repro.obs.clock import MONOTONIC, Clock, ManualClock, MonotonicClock, SimClock
from repro.obs.export import (
    read_trace,
    to_chrome_trace,
    to_gantt_trace,
    to_sched_events,
    write_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.prof import (
    PerfProfile,
    TaskProfile,
    build_profile,
    format_perf_report,
    replay_schedule,
)
from repro.obs.recorder import (
    DURABLE_KINDS,
    INTEGRITY_KINDS,
    LIFECYCLE_KINDS,
    MESSAGE_KINDS,
    NULL_RECORDER,
    PROF_KINDS,
    SCOPES,
    EventRecorder,
    NullRecorder,
    ObsEvent,
)
from repro.obs.schedule import ScheduleTracer
from repro.obs.stats import NodeStats, RunStats, compute_stats, format_stats, text_summary

__all__ = [
    "MONOTONIC",
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "SimClock",
    "read_trace",
    "to_chrome_trace",
    "to_gantt_trace",
    "to_sched_events",
    "write_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PerfProfile",
    "TaskProfile",
    "build_profile",
    "format_perf_report",
    "replay_schedule",
    "DURABLE_KINDS",
    "INTEGRITY_KINDS",
    "LIFECYCLE_KINDS",
    "MESSAGE_KINDS",
    "NULL_RECORDER",
    "PROF_KINDS",
    "SCOPES",
    "EventRecorder",
    "NullRecorder",
    "ObsEvent",
    "ScheduleTracer",
    "NodeStats",
    "RunStats",
    "compute_stats",
    "format_stats",
    "text_summary",
]
