"""Clock abstraction: one instrumentation API, two time domains.

The runtime's scheduling decisions (overtime deadlines) and its telemetry
(span timestamps) both need "now". On the real backends that is
``time.monotonic()``; on the simulated backend it is the event queue's
simulated time. Injecting a :class:`Clock` lets the *same* master/slave
instrumentation record sim-seconds or wall-seconds without branching —
and lets tests drive deadlines deterministically with
:class:`ManualClock`.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class Clock:
    """Source of monotone timestamps in seconds. Subclasses set ``now``."""

    #: Zero-arg callable returning the current time in seconds.
    now: Callable[[], float]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(now={self.now():.6f})"


class MonotonicClock(Clock):
    """Wall-clock domain of the real backends (``time.monotonic``)."""

    def __init__(self) -> None:
        # Bound directly: calling through this clock costs one attribute
        # lookup more than calling time.monotonic() inline, nothing else.
        self.now = time.monotonic


class SimClock(Clock):
    """Simulated-time domain: reads ``source.now`` (an
    :class:`~repro.cluster.simcore.EventQueue` or anything exposing a
    ``now`` attribute/property in seconds)."""

    def __init__(self, source) -> None:
        self._source = source
        self.now = lambda: self._source.now


class ManualClock(Clock):
    """Test clock: time moves only when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)
        self.now = lambda: self._t

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt} < 0")
        self._t += dt
        return self._t

    def set(self, t: float) -> float:
        if t < self._t:
            raise ValueError(f"cannot move a monotone clock back to {t} < {self._t}")
        self._t = float(t)
        return self._t


#: Shared default clock of the real backends.
MONOTONIC = MonotonicClock()


def ensure_clock(clock: Optional[Clock]) -> Clock:
    """``clock`` if given, else the shared monotonic clock."""
    return clock if clock is not None else MONOTONIC
