"""Trace exporters and event-stream bridges.

One event stream (:mod:`repro.obs.recorder`), several consumers:

- :func:`to_chrome_trace` / :func:`write_trace` — Chrome/Perfetto
  trace-event JSON (open ``ui.perfetto.dev`` and drop the file in).
  The file also embeds the raw event list and the metrics snapshot
  under ``reproEvents`` / ``reproMetrics`` (Perfetto ignores unknown
  top-level keys), so :func:`read_trace` round-trips losslessly;
- :func:`to_sched_events` — feeds the happens-before validator
  (:func:`repro.check.trace_check.check_trace`) from the same stream;
- :func:`to_gantt_trace` — feeds :mod:`repro.analysis.gantt`, which is
  how ``RunConfig.trace`` now works on *every* backend, not just the
  simulated one.

Timestamps: Chrome wants microseconds; event ``ts`` values are seconds
in the recorder's clock domain (sim-time or ``time.monotonic``), so the
exporter rebases onto the earliest timestamp in the stream.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.trace_check import EVENT_KINDS, SchedEvent
from repro.comm.messages import TaskId
from repro.obs.recorder import ObsEvent

#: Format version stamped into exported files.
TRACE_FORMAT = "repro-obs-1"


def _pid(node: int) -> int:
    """Chrome pid for a node id: master (-1) -> 0, node k -> k + 1."""
    return node + 1


def _task_name(task_id: Optional[TaskId]) -> str:
    return "" if task_id is None else str(tuple(task_id))


def _event_args(ev: ObsEvent) -> Dict[str, object]:
    args: Dict[str, object] = {"seq": ev.seq, "scope": ev.scope}
    if ev.task_id is not None:
        args["task"] = _task_name(ev.task_id)
        args["epoch"] = ev.epoch
    if ev.data:
        args.update({k: v for k, v in ev.data.items() if k not in ("t0", "t1")})
    return args


def to_chrome_trace(
    events: Sequence[ObsEvent],
    *,
    metrics: Optional[Dict[str, object]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Render the event stream as a Chrome/Perfetto trace-event object.

    Span-carrying events (``compute``; the simulator's ``send``) become
    complete ("X") slices on their node's track; everything else becomes
    an instant ("i"). Process-name metadata labels the master and each
    node.
    """
    origin = 0.0
    starts = [ev.span()[0] if ev.span() else ev.ts for ev in events]
    if starts:
        origin = min(starts)

    def us(t: float) -> float:
        return (t - origin) * 1e6

    trace_events: List[Dict[str, object]] = []
    pids_seen: Dict[int, int] = {}
    for ev in events:
        pid = _pid(ev.node)
        tid = max(ev.worker, -1) + 1
        pids_seen.setdefault(pid, 0)
        span = ev.span()
        name = f"{ev.kind} {_task_name(ev.task_id)}".strip()
        if span is not None:
            t0, t1 = span
            trace_events.append(
                {
                    "name": name,
                    "cat": ev.scope,
                    "ph": "X",
                    "ts": us(t0),
                    "dur": max(0.0, us(t1) - us(t0)),
                    "pid": pid,
                    "tid": tid,
                    "args": _event_args(ev),
                }
            )
        else:
            trace_events.append(
                {
                    "name": name,
                    "cat": ev.scope,
                    "ph": "i",
                    "s": "t",
                    "ts": us(ev.ts),
                    "pid": pid,
                    "tid": tid,
                    "args": _event_args(ev),
                }
            )
    for pid in sorted(pids_seen):
        label = "master" if pid == 0 else f"node {pid - 1}"
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        trace_events.append(
            {"name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
             "args": {"sort_index": pid}}
        )

    doc: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}, format=TRACE_FORMAT),
        "reproEvents": [event_to_json(ev) for ev in events],
    }
    if metrics is not None:
        doc["reproMetrics"] = metrics
    return doc


# -- lossless event (de)serialization ---------------------------------------------


def event_to_json(ev: ObsEvent) -> Dict[str, object]:
    out: Dict[str, object] = {
        "kind": ev.kind,
        "ts": ev.ts,
        "epoch": ev.epoch,
        "node": ev.node,
        "worker": ev.worker,
        "scope": ev.scope,
        "seq": ev.seq,
    }
    if ev.task_id is not None:
        out["task_id"] = list(ev.task_id)
    if ev.data:
        out["data"] = ev.data
    return out


def event_from_json(obj: Dict[str, object]) -> ObsEvent:
    raw_task = obj.get("task_id")
    task_id = tuple(raw_task) if raw_task is not None else None  # type: ignore[arg-type]
    data = obj.get("data")
    return ObsEvent(
        kind=str(obj["kind"]),
        ts=float(obj["ts"]),  # type: ignore[arg-type]
        task_id=task_id,
        epoch=int(obj.get("epoch", -1)),  # type: ignore[arg-type]
        node=int(obj.get("node", -1)),  # type: ignore[arg-type]
        worker=int(obj.get("worker", -1)),  # type: ignore[arg-type]
        scope=str(obj.get("scope", "task")),
        seq=int(obj.get("seq", 0)),  # type: ignore[arg-type]
        data=dict(data) if data else None,  # type: ignore[arg-type]
    )


def write_trace(
    path: str,
    events: Sequence[ObsEvent],
    *,
    metrics: Optional[Dict[str, object]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write a Perfetto-loadable trace file embedding the raw events."""
    doc = to_chrome_trace(events, metrics=metrics, meta=meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))


def read_trace(path: str) -> Tuple[Tuple[ObsEvent, ...], Optional[Dict], Dict]:
    """Load ``(events, metrics, meta)`` from a file written by
    :func:`write_trace` (exact round-trip via the embedded raw events)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    raw = doc.get("reproEvents")
    if raw is None:
        raise ValueError(
            f"{path} has no embedded repro events (otherData.format should be "
            f"{TRACE_FORMAT!r}); was it written by repro's write_trace?"
        )
    events = tuple(event_from_json(o) for o in raw)
    return events, doc.get("reproMetrics"), doc.get("otherData", {})


# -- bridges -----------------------------------------------------------------------


def to_sched_events(events: Iterable[ObsEvent], scope: str = "task") -> List[SchedEvent]:
    """Project the stream onto the happens-before validator's schema.

    Only lifecycle kinds the validator understands survive; ordering (by
    ``seq``) is preserved, so a stream recorded inside the runtime's
    critical sections stays a sound linearization.
    """
    out: List[SchedEvent] = []
    for ev in sorted(events, key=lambda e: e.seq):
        if ev.scope != scope or ev.kind not in EVENT_KINDS or ev.task_id is None:
            continue
        out.append(
            SchedEvent(
                kind=ev.kind,
                task_id=ev.task_id,
                epoch=ev.epoch,
                worker=ev.worker,
                seq=len(out),
                time=ev.ts,
            )
        )
    return out


def to_gantt_trace(events: Iterable[ObsEvent]) -> Tuple:
    """Build :class:`repro.analysis.gantt.TraceEvent` rows from the stream.

    One row per *committed* (task, epoch): crashed or timed-out epochs
    never commit and are therefore not drawn, matching the simulated
    backend's historical trace semantics. Real-backend timestamps are
    clamped into monotone order (the compute span is synthesized from the
    slave-reported duration, whose clock differs from the master's).
    """
    from repro.analysis.gantt import TraceEvent

    sends: Dict[Tuple[TaskId, int], ObsEvent] = {}
    computes: Dict[Tuple[TaskId, int], ObsEvent] = {}
    rows: List[TraceEvent] = []
    for ev in sorted(events, key=lambda e: e.seq):
        if ev.scope != "task" or ev.task_id is None:
            continue
        key = (ev.task_id, ev.epoch)
        if ev.kind == "send":
            sends[key] = ev
        elif ev.kind == "compute":
            computes[key] = ev
        elif ev.kind == "commit":
            compute = computes.get(key)
            if compute is None:
                continue
            span = compute.span()
            t0, t1 = span if span is not None else (compute.ts, compute.ts)
            send = sends.get(key)
            if send is not None:
                send_span = send.span()
                transfer_start = send_span[0] if send_span is not None else send.ts
            else:
                transfer_start = t0
            transfer_start = min(transfer_start, t0)
            compute_start = max(t0, transfer_start)
            compute_end = max(t1, compute_start)
            result_at = max(ev.ts, compute_end)
            node = compute.node if compute.node >= 0 else max(ev.worker, 0)
            rows.append(
                TraceEvent(
                    node=node,
                    task_id=ev.task_id,
                    transfer_start=transfer_start,
                    compute_start=compute_start,
                    compute_end=compute_end,
                    result_at=result_at,
                )
            )
    return tuple(rows)
