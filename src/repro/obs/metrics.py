"""A small labelled metrics registry (counters, gauges, histograms).

Shaped after Prometheus/Parsl-style monitoring but dependency-free: a
:class:`MetricsRegistry` hands out get-or-create instruments keyed by
``(name, labels)``, and ``snapshot()`` folds everything into one plain
dict that rides on the run report (and into the exported trace JSON).

Instruments lock individually, so concurrent updates from the master's
service threads are exact, and creating an instrument once up front keeps
the hot path to one lock + one add.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.check.lock_lint import make_lock

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = make_lock("obs.metrics.counter")

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (queue depth, in-flight tasks, ...)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = make_lock("obs.metrics.gauge")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Streaming summary: count / total / min / max / mean + percentiles.

    The moments cover most of the paper's questions (how long do
    sub-tasks run, how deep does the computable stack get); a bounded
    reservoir of systematically-thinned observations additionally backs
    :meth:`percentile`, so the snapshot reports p50/p95/p99 without
    unbounded per-observation storage. When the reservoir fills, every
    second sample is dropped and the keep-stride doubles — a uniform
    systematic subsample of the whole observation sequence.
    """

    #: Reservoir capacity before the stride doubles.
    SAMPLE_CAP = 2048

    __slots__ = ("count", "total", "min", "max", "_samples", "_stride", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1
        self._lock = make_lock("obs.metrics.histogram")

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            if self.count % self._stride == 0:
                self._samples.append(v)
                if len(self._samples) > self.SAMPLE_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            self.count += 1
            self.total += v
            self.min = v if self.min is None or v < self.min else self.min
            self.max = v if self.max is None or v > self.max else self.max

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of the retained samples,
        linearly interpolated; 0.0 before any observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        with self._lock:
            mean = self.total / self.count if self.count else 0.0
            return {
                "count": float(self.count),
                "total": self.total,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
                "mean": mean,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }


class MetricsRegistry:
    """Get-or-create registry of named, labelled instruments."""

    def __init__(self) -> None:
        self._lock = make_lock("obs.metrics.registry")
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def _get(self, table, factory, name: str, labels: Dict[str, object]):
        key = (name, _label_key(labels))
        with self._lock:
            inst = table.get(key)
            if inst is None:
                inst = table[key] = factory()
            return inst

    # -- snapshot --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view for reports and trace files (JSON-safe)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                _format_name(n, k): c.value for (n, k), c in sorted(counters.items())
            },
            "gauges": {_format_name(n, k): g.value for (n, k), g in sorted(gauges.items())},
            "histograms": {
                _format_name(n, k): h.summary() for (n, k), h in sorted(histograms.items())
            },
        }

    def names(self) -> List[str]:
        snap = self.snapshot()
        return sorted(
            list(snap["counters"]) + list(snap["gauges"]) + list(snap["histograms"])
        )

    def __repr__(self) -> str:
        with self._lock:
            n = len(self._counters) + len(self._gauges) + len(self._histograms)
        return f"MetricsRegistry({n} instruments)"
