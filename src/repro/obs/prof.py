"""Critical-path profiling and time attribution over a recorded trace.

``repro perf`` answers the questions a raw event stream leaves open:

- **Where did the time go?** Per-node attribution buckets decompose the
  trace extent into compute / serialize / wire / journal / digest /
  idle, so "the run is slow" becomes "the master spent 40% of the run
  fsyncing the journal".
- **Could any schedule have been faster?** The longest
  compute-plus-transfer chain through the DP DAG (the *critical path*)
  lower-bounds every schedule's makespan; ``makespan / critical_path``
  is the scheduling inefficiency left on the table.
- **What if?** A greedy list-schedule replay of the observed per-task
  costs estimates the makespan with more workers or free communication
  — the two knobs the paper's model (Sec. 5) trades off.

Everything here is post-hoc: it consumes the same
:class:`~repro.obs.recorder.ObsEvent` stream every backend emits (real
clocks or sim-time) and performs no re-runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.obs.recorder import ObsEvent
from repro.utils.errors import ConfigError

TaskKey = object  # block ids are tuples; keep the profiler shape-agnostic

#: Attribution bucket names, in display order. Every per-node row sums
#: to the trace extent exactly (``idle`` is the remainder), so the
#: table always accounts for 100% of each lane's wall time.
BUCKETS = ("compute", "serialize", "wire", "journal", "digest", "idle")


@dataclass
class TaskProfile:
    """Observed costs of one committed sub-task (its committed epoch)."""

    task_id: TaskKey
    epoch: int = 0
    node: int = -1
    #: Seconds the task sat dispatchable before assignment.
    queue_wait: float = 0.0
    #: Input-transfer seconds (sim: reserved link span; real backends:
    #: serialize + transport handoff of the ``TaskAssign`` message).
    comm_in: float = 0.0
    #: Compute span (t0, t1) and its duration in seconds.
    compute: float = 0.0
    t0: float = 0.0
    t1: float = 0.0
    #: Input payload bytes, when the trace carries them.
    nbytes_in: int = 0

    @property
    def cost(self) -> float:
        """The task's contribution to a dependency chain."""
        return self.comm_in + self.compute


@dataclass
class PerfProfile:
    """Everything ``repro perf`` reports about one trace."""

    #: Trace extent in seconds (same convention as ``repro stats``).
    extent: float = 0.0
    n_committed: int = 0
    #: Committed task -> observed costs.
    tasks: Dict[TaskKey, TaskProfile] = field(default_factory=dict)
    #: node -> bucket -> seconds. Node -1 is the master lane.
    attribution: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: Queue-wait distribution across assignments (task-state time, not
    #: worker-CPU time — it overlaps other tasks' compute).
    queue_wait: Histogram = field(default_factory=Histogram)
    #: Longest compute+transfer chain through the DAG, root first.
    critical_path: List[TaskKey] = field(default_factory=list)
    critical_path_seconds: float = 0.0

    @property
    def efficiency(self) -> float:
        """critical path / makespan — 1.0 means no schedule could have
        been faster; 0.25 means 4x of the makespan is scheduling slack.
        0.0 when the trace supports no critical path."""
        if self.extent <= 0 or self.critical_path_seconds <= 0:
            return 0.0
        return min(1.0, self.critical_path_seconds / self.extent)

    def worker_nodes(self) -> List[int]:
        return sorted(k for k in self.attribution if k >= 0)


def _get_float(ev: ObsEvent, key: str) -> Optional[float]:
    if ev.data is None:
        return None
    raw = ev.data.get(key)
    if raw is None:
        return None
    try:
        return float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def build_profile(
    events: Iterable[ObsEvent], pattern=None
) -> PerfProfile:
    """Fold a trace into a :class:`PerfProfile`.

    ``pattern`` is the run's process-level
    :class:`~repro.dag.pattern.DAGPattern`; when given, the critical
    path is computed by joining the observed per-task costs with the
    DAG's dependency edges. Without it the profile still carries
    attribution and queue-wait (the CLI rebuilds the pattern from the
    trace's workload metadata when it can).

    Tolerant of partial traces: tasks without commits are dropped from
    the critical path, missing spans contribute zero, nothing raises.
    """
    prof = PerfProfile()
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    # (task, epoch) -> in-flight profile; commit promotes into prof.tasks.
    pending: Dict[Tuple[TaskKey, int], TaskProfile] = {}
    # Master-lane cost accumulators.
    serialize = 0.0
    wire = 0.0
    journal: Dict[int, float] = {}
    digest: Dict[int, float] = {}
    compute: Dict[int, float] = {}
    # Real-backend input-transfer costs keyed by task (TaskAssign sends).
    assign_cost: Dict[Tuple[TaskKey, int], Tuple[float, int]] = {}

    for ev in events:
        if ev.scope == "message":
            if ev.kind == "msg-send":
                t_wire = _get_float(ev, "t_wire")
                t_ser = _get_float(ev, "t_ser")
                if t_wire is not None:
                    wire += t_wire
                if t_ser is not None:
                    serialize += t_ser
                if (
                    ev.data is not None
                    and ev.data.get("type") == "TaskAssign"
                    and ev.task_id is not None
                ):
                    nbytes = int(_get_float(ev, "nbytes") or 0)
                    secs = (t_wire or 0.0) + (t_ser or 0.0)
                    assign_cost[(ev.task_id, ev.epoch)] = (secs, nbytes)
            elif ev.kind == "msg-recv":
                # Receive-side costs (pipe transport): the post-poll
                # pipe read is the wire copy, the unpickle is
                # serialization work. Counting both keeps the inline
                # path and the zero-copy path (whose rehydration lands
                # below as ``shm-attach``) attributed symmetrically.
                t_read = _get_float(ev, "t_read")
                if t_read is not None:
                    wire += t_read
                t_deser = _get_float(ev, "t_deser")
                if t_deser is not None:
                    serialize += t_deser
            elif ev.kind == "shm-attach":
                # Receive-side segment attach+copy of the zero-copy data
                # plane: rehydration work, so it lands in the serialize
                # bucket next to the pickle time it replaces.
                span = ev.span()
                if span is not None:
                    serialize += span[1] - span[0]
            continue
        if ev.scope != "task":
            continue
        span = ev.span()
        lo = span[0] if span is not None else ev.ts
        hi = span[1] if span is not None else ev.ts
        t_min = lo if t_min is None or lo < t_min else t_min
        t_max = hi if t_max is None or hi > t_max else t_max
        key = (ev.task_id, ev.epoch)
        if ev.kind == "queue-wait" and span is not None:
            prof.queue_wait.observe(span[1] - span[0])
            pending.setdefault(
                key, TaskProfile(ev.task_id, ev.epoch)
            ).queue_wait = span[1] - span[0]
        elif ev.kind == "send" and span is not None:
            # Simulated backends record the reserved input transfer as a
            # task-scope span on the receiving node.
            tp = pending.setdefault(key, TaskProfile(ev.task_id, ev.epoch))
            tp.comm_in = span[1] - span[0]
            tp.nbytes_in = int(_get_float(ev, "nbytes") or 0)
            wire += span[1] - span[0]
        elif ev.kind == "compute" and span is not None:
            tp = pending.setdefault(key, TaskProfile(ev.task_id, ev.epoch))
            tp.node = ev.node
            tp.compute = span[1] - span[0]
            tp.t0, tp.t1 = span
            compute[ev.node] = compute.get(ev.node, 0.0) + (span[1] - span[0])
        elif ev.kind == "journal-write" and span is not None:
            journal[ev.node] = journal.get(ev.node, 0.0) + (span[1] - span[0])
        elif ev.kind == "digest-compute" and span is not None:
            digest[ev.node] = digest.get(ev.node, 0.0) + (span[1] - span[0])
        elif ev.kind == "checkpoint" and span is not None:
            journal[ev.node] = journal.get(ev.node, 0.0) + (span[1] - span[0])
        elif ev.kind == "commit" and ev.task_id is not None:
            tp = pending.pop(key, None)
            if tp is None:
                tp = TaskProfile(ev.task_id, ev.epoch)
            if tp.comm_in == 0.0:
                secs, nbytes = assign_cost.get(key, (0.0, 0))
                tp.comm_in = secs
                tp.nbytes_in = tp.nbytes_in or nbytes
            prof.tasks[ev.task_id] = tp
            prof.n_committed += 1

    if t_min is not None and t_max is not None:
        prof.extent = t_max - t_min

    # -- attribution table: one row per lane, rows sum to the extent --------
    nodes = set(compute) | set(journal) | set(digest)
    if serialize or wire or journal or digest:
        nodes.add(-1)
    for node in nodes:
        row = {b: 0.0 for b in BUCKETS}
        row["compute"] = compute.get(node, 0.0)
        row["journal"] = journal.get(node, 0.0)
        row["digest"] = digest.get(node, 0.0)
        if node == -1:
            row["serialize"] = serialize
            row["wire"] = wire
        busy = sum(row[b] for b in BUCKETS if b != "idle")
        row["idle"] = max(0.0, prof.extent - busy)
        prof.attribution[node] = row

    # -- critical path: longest cost chain through the committed DAG --------
    if pattern is not None and prof.tasks:
        _critical_path(prof, pattern)
    return prof


def _critical_path(prof: PerfProfile, pattern) -> None:
    """Longest-chain DP over the committed tasks, in topological order."""
    cp: Dict[TaskKey, float] = {}
    parent: Dict[TaskKey, Optional[TaskKey]] = {}
    best: Optional[TaskKey] = None
    for vid in pattern.topological_order():
        tp = prof.tasks.get(vid)
        if tp is None:
            continue  # partial trace: chain restarts past the gap
        base = 0.0
        arg: Optional[TaskKey] = None
        for p in pattern.predecessors(vid):
            got = cp.get(p)
            if got is not None and got > base:
                base, arg = got, p
        cp[vid] = base + tp.cost
        parent[vid] = arg
        if best is None or cp[vid] > cp[best]:
            best = vid
    if best is None:
        return
    chain: List[TaskKey] = []
    cursor: Optional[TaskKey] = best
    while cursor is not None:
        chain.append(cursor)
        cursor = parent.get(cursor)
    chain.reverse()
    prof.critical_path = chain
    prof.critical_path_seconds = cp[best]


def replay_schedule(
    tasks: Dict[TaskKey, TaskProfile],
    pattern,
    n_workers: int,
    *,
    comm_scale: float = 1.0,
) -> float:
    """Greedy list-schedule replay of observed costs; returns makespan.

    Each task occupies one worker for ``comm_scale * comm_in + compute``
    seconds once all its DAG predecessors finished. This is the standard
    what-if estimator: ``comm_scale=0`` bounds the zero-communication
    speedup, larger ``n_workers`` bounds the more-hardware speedup. It
    ignores master-side serialization, so it is optimistic — a *bound*,
    not a prediction.
    """
    if n_workers < 1:
        raise ConfigError(f"replay needs >= 1 worker, got {n_workers}")
    indegree: Dict[TaskKey, int] = {}
    for vid in tasks:
        indegree[vid] = sum(1 for p in pattern.predecessors(vid) if p in tasks)
    # (ready_time, tiebreak, task)
    ready: List[Tuple[float, int, TaskKey]] = []
    tick = 0
    for vid, deg in indegree.items():
        if deg == 0:
            heapq.heappush(ready, (0.0, tick, vid))
            tick += 1
    workers = [0.0] * n_workers
    heapq.heapify(workers)
    done_at: Dict[TaskKey, float] = {}
    makespan = 0.0
    scheduled = 0
    while ready:
        ready_t, _, vid = heapq.heappop(ready)
        free_t = heapq.heappop(workers)
        start = max(ready_t, free_t)
        tp = tasks[vid]
        finish = start + comm_scale * tp.comm_in + tp.compute
        heapq.heappush(workers, finish)
        done_at[vid] = finish
        makespan = max(makespan, finish)
        scheduled += 1
        for succ in pattern.successors(vid):
            if succ not in indegree:
                continue
            indegree[succ] -= 1
            if indegree[succ] == 0:
                succ_ready = max(
                    (done_at[p] for p in pattern.predecessors(succ) if p in done_at),
                    default=finish,
                )
                heapq.heappush(ready, (succ_ready, tick, succ))
                tick += 1
    if scheduled != len(tasks):
        # Dependency gap (partial trace): the unscheduled remainder is
        # unreachable; report what did schedule rather than hanging.
        pass
    return makespan


def what_if(
    prof: PerfProfile, pattern, *, extra_workers: Sequence[int] = (1, 2, 4)
) -> List[Tuple[str, float]]:
    """Replay-based speedup bounds: (scenario label, estimated makespan)."""
    observed = max(1, len(prof.worker_nodes()))
    out: List[Tuple[str, float]] = [
        (f"replay @ {observed} workers (sanity)", replay_schedule(
            prof.tasks, pattern, observed
        )),
        (f"zero communication @ {observed} workers", replay_schedule(
            prof.tasks, pattern, observed, comm_scale=0.0
        )),
    ]
    for extra in extra_workers:
        n = observed + extra
        out.append(
            (f"+{extra} workers ({n} total)", replay_schedule(prof.tasks, pattern, n))
        )
    return out


def format_perf_report(
    prof: PerfProfile,
    *,
    title: str = "perf",
    pattern=None,
    extra_workers: Sequence[int] = (1, 2, 4),
) -> str:
    """The ``repro perf`` text report."""
    lines = [
        f"{title}: {prof.n_committed} committed tasks over {prof.extent:.6g} s"
    ]
    if prof.critical_path:
        lines.append(
            f"  critical path    : {prof.critical_path_seconds:.6g} s across "
            f"{len(prof.critical_path)} tasks "
            f"({prof.critical_path[0]} .. {prof.critical_path[-1]})"
        )
        lines.append(
            f"  sched efficiency : {prof.efficiency:.1%} "
            f"(critical path / makespan; 100% = no schedule is faster)"
        )
    else:
        lines.append("  critical path    : unavailable (no DAG pattern joined)")
    if prof.attribution:
        lines.append("  time attribution (per lane, buckets sum to the extent):")
        header = "    {:>8}".format("lane") + "".join(
            f" {b:>10}" for b in BUCKETS
        )
        lines.append(header)
        for node in sorted(prof.attribution):
            row = prof.attribution[node]
            label = "master" if node == -1 else f"node {node}"
            cells = "".join(f" {row[b]:10.4g}" for b in BUCKETS)
            lines.append(f"    {label:>8}{cells}")
    if prof.queue_wait.count:
        s = prof.queue_wait.summary()
        lines.append(
            f"  queue wait       : total {s['total']:.4g} s over "
            f"{prof.queue_wait.count} assignments — mean {s['mean']:.3g} s, "
            f"p50 {s['p50']:.3g} s, p95 {s['p95']:.3g} s, p99 {s['p99']:.3g} s"
        )
        lines.append(
            "                     (task-state time: overlaps other tasks' compute)"
        )
    if pattern is not None and prof.tasks:
        lines.append("  what-if replay (optimistic bounds, not predictions):")
        base = prof.extent if prof.extent > 0 else None
        for label, est in what_if(prof, pattern, extra_workers=extra_workers):
            speedup = f" ({base / est:.2f}x vs observed)" if base and est > 0 else ""
            lines.append(f"    {label}: {est:.6g} s{speedup}")
    return "\n".join(lines)
