"""The unified telemetry event stream.

Every backend feeds one append-only stream of :class:`ObsEvent` records
describing the sub-task lifecycle the paper's figures measure::

    assign -> send -> compute -> result -> commit
             (plus redistribute / stale-drop on the fault path)

Events are tagged with a ``scope``:

- ``task``    — process-level sub-task lifecycle (master's view);
- ``subtask`` — thread-level sub-sub-task events inside one slave;
- ``message`` — individual protocol messages on a channel endpoint.

Two recorders implement the same duck type:

- :class:`EventRecorder` — thread-safe collector, stamps events with an
  injected :class:`~repro.obs.clock.Clock` (sim-time or wall-time);
- :class:`NullRecorder` — the disabled path. It is a singleton
  (:data:`NULL_RECORDER`) with ``enabled = False`` and a no-op ``emit``;
  hot paths guard with ``if recorder.enabled:`` so a disabled run builds
  no event objects, no kwargs dicts, and allocates nothing per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.messages import TaskId
from repro.obs.clock import Clock, ensure_clock

#: Event scopes (see module docstring).
SCOPES = ("task", "subtask", "message")

#: Task/subtask lifecycle kinds, in canonical per-task order. ``assign``
#: covers Fig 9's register+assign steps (registration in the register
#: table *is* the assignment instant); ``redistribute`` covers
#: timeout-detected + re-queued (Fig 10).
LIFECYCLE_KINDS = (
    "assign",
    "send",
    "compute",
    "result",
    "commit",
    "redistribute",
    "stale-drop",
)

#: Message-scope kinds emitted by instrumented channel endpoints.
MESSAGE_KINDS = ("msg-send", "msg-recv")

#: Fault-injection and hardened-recovery kinds (:mod:`repro.chaos`):
#: message faults at the channel boundary, worker-level faults, and the
#: recovery actions the master takes (speculative re-dispatch, backoff,
#: blacklisting) plus leak detection. These ride the same stream so every
#: fault and every recovery action is visible next to the lifecycle it
#: disrupted.
CHAOS_KINDS = (
    "msg-drop",
    "msg-duplicate",
    "msg-delay",
    "msg-corrupt",
    "msg-bitflip",
    "worker-death",
    "worker-slow",
    "worker-liar",
    "worker-leak",
    "speculate",
    "backoff",
    "blacklist",
)

#: Result-integrity kinds (:mod:`repro.integrity`): receive-side digest
#: verification, sampled audit recomputes and their convictions,
#: DAG-aware taint invalidation (``taint-invalidate`` marks a committed
#: task revoked for recompute), duplicate-dispatch voting, and worker
#: quarantine (the SDC analogue of ``blacklist`` — a lying worker still
#: heartbeats, so only semantic conviction removes it).
INTEGRITY_KINDS = (
    "digest-reject",
    "audit-pass",
    "audit-convict",
    "taint-invalidate",
    "vote-cast",
    "vote-divergence",
    "quarantine",
)

#: Durability and membership kinds (:mod:`repro.durable`): journal
#: checkpoints, resume replay, the heartbeat/lease liveness protocol,
#: and elastic worker join/leave. ``resume`` marks a run continued from
#: a journal (its ``n_committed`` counts replayed — not recomputed —
#: commits); ``lease-expired`` is the lease-driven liveness fault that
#: fires strictly before the hard task timeout.
DURABLE_KINDS = (
    "checkpoint",
    "resume",
    "heartbeat",
    "lease-expired",
    "worker-join",
    "worker-leave",
)

#: Profiling span kinds (:mod:`repro.obs.prof`): where a sub-task's time
#: goes besides compute and transfer. All three carry ``t0``/``t1`` span
#: extents in ``data``:
#:
#: - ``queue-wait`` — the task sat dispatchable on the master's
#:   computable stack from ``t0`` (pushed) to ``t1`` (assigned);
#: - ``journal-write`` — one write-ahead journal append (fsync
#:   included), with the framed record size in ``nbytes``;
#: - ``digest-compute`` — one canonical content-digest computation
#:   (``hop`` says which: ``assign``, ``verify``, ``commit``, ``audit``);
#: - ``shm-attach`` — one message's shared-memory payload attach+copy on
#:   the receive side (zero-copy data plane, ``config.shm``); ``ok``
#:   says whether every segment was still mapped, ``nbytes`` the bytes
#:   rehydrated. Message scope, attributed to the serialize bucket;
#: - ``batch-assemble`` — the master gathered one ``BatchAssign`` wave
#:   (``n_tasks`` elements, ``config.batch_wave``). A marker span kept
#:   out of the attribution buckets: the gather runs inside the dispatch
#:   path whose cost the per-message lanes already carry.
#:
#: Only emitted while observing, like every other kind — the disabled
#: path computes no timestamps and allocates nothing.
PROF_KINDS = (
    "queue-wait",
    "journal-write",
    "digest-compute",
    "shm-attach",
    "batch-assemble",
)


@dataclass(frozen=True)
class ObsEvent:
    """One telemetry event.

    ``ts`` is seconds in the recorder's clock domain. Span-like events
    (``compute``, and the simulated backend's ``send``) carry their true
    extent in ``data`` as ``t0``/``t1``; ``ts`` is when the event was
    *recorded*, which for spans is the completion side.
    """

    kind: str
    ts: float
    task_id: Optional[TaskId] = None
    epoch: int = -1
    #: Node the event describes: -1 = master, k >= 0 = slave/compute node.
    node: int = -1
    #: Worker lane within the node (slave id at task scope, computing
    #: thread id at subtask scope); -1 when not applicable.
    worker: int = -1
    scope: str = "task"
    seq: int = 0
    data: Optional[Dict[str, object]] = field(default=None, compare=True)

    def span(self) -> Optional[Tuple[float, float]]:
        """(t0, t1) when this event carries a span extent, else None."""
        if self.data is None:
            return None
        t0 = self.data.get("t0")
        t1 = self.data.get("t1")
        if t0 is None or t1 is None:
            return None
        return float(t0), float(t1)  # type: ignore[arg-type]


class NullRecorder:
    """Disabled recorder: a shared, stateless no-op.

    Kept deliberately attribute-free so a disabled run cannot accumulate
    storage; ``emit`` ignores everything and returns None.
    """

    __slots__ = ()

    enabled = False

    def emit(self, *args, **kwargs) -> None:
        return None

    def events(self) -> Tuple[ObsEvent, ...]:
        return ()

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRecorder()"


#: The shared disabled recorder. Identity-checked in tests to prove the
#: disabled path allocates nothing.
NULL_RECORDER = NullRecorder()


class EventRecorder:
    """Thread-safe append-only event collector.

    One recorder spans a whole run: the master, the in-process slaves,
    and instrumented channel endpoints all emit into it, so ``seq`` is a
    single linearization of the run's telemetry.
    """

    __slots__ = ("clock", "_events", "_lock")

    enabled = True

    def __init__(self, clock: Optional[Clock] = None) -> None:
        from repro.check.lock_lint import make_lock

        self.clock = ensure_clock(clock)
        self._events: List[ObsEvent] = []
        self._lock = make_lock("obs.event_recorder")

    def emit(
        self,
        kind: str,
        task_id: Optional[TaskId] = None,
        *,
        epoch: int = -1,
        node: int = -1,
        worker: int = -1,
        scope: str = "task",
        ts: Optional[float] = None,
        **data: object,
    ) -> ObsEvent:
        """Record one event; ``ts`` defaults to the recorder's clock."""
        stamp = self.clock.now() if ts is None else ts
        with self._lock:
            ev = ObsEvent(
                kind=kind,
                ts=stamp,
                task_id=task_id,
                epoch=epoch,
                node=node,
                worker=worker,
                scope=scope,
                seq=len(self._events),
                data=dict(data) if data else None,
            )
            self._events.append(ev)
            return ev

    def events(self) -> Tuple[ObsEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return f"EventRecorder({len(self)} events)"
