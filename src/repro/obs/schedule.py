"""The shared scheduling-trace helper used by master and slave parts.

Before this module existed, ``runtime/master.py`` and
``runtime/slave.py`` each carried their own copy of the same three
blocks: build a :class:`~repro.check.trace_check.TraceRecorder` when
verifying, stamp every event with a hardcoded ``time.monotonic()``, and
run the ``check_trace(...).raise_if_failed()`` epilogue. A
:class:`ScheduleTracer` owns all three behind one ``record``/``check``
pair, with the clock injected — so the identical instrumentation records
wall-time on the real backends and sim-time on the simulated one.

One ``record`` call fans out to both consumers:

- the happens-before validator's :class:`TraceRecorder` (when
  ``verify`` is on) for the kinds it understands;
- the :mod:`repro.obs` event stream (when observing) for every kind,
  carrying the richer lifecycle taxonomy (``send``, ``compute``,
  ``result``, byte counts, span extents).
"""

from __future__ import annotations

from typing import Optional

from repro.check.trace_check import EVENT_KINDS, TraceRecorder, check_trace
from repro.comm.messages import TaskId
from repro.dag.pattern import DAGPattern
from repro.obs.clock import Clock, ensure_clock
from repro.obs.recorder import NULL_RECORDER, EventRecorder

#: obs kind -> validator kind, for kinds both understand.
_CHECK_KINDS = frozenset(EVENT_KINDS)


class ScheduleTracer:
    """Clock-injected scheduling instrumentation for one DAG level."""

    __slots__ = ("clock", "verify", "trace", "obs", "node", "scope")

    def __init__(
        self,
        *,
        clock: Optional[Clock] = None,
        verify: bool = False,
        trace: Optional[TraceRecorder] = None,
        obs: Optional[EventRecorder] = None,
        node: int = -1,
        scope: str = "task",
    ) -> None:
        self.clock = ensure_clock(clock)
        self.verify = verify
        #: Happens-before trace for :func:`check_trace`. Always present
        #: when verifying; callers may inject a shared recorder to merge
        #: traces across components.
        self.trace = trace if trace is not None else (TraceRecorder() if verify else None)
        #: Telemetry event stream; the shared null recorder when off.
        self.obs = obs if obs is not None else NULL_RECORDER
        self.node = node
        self.scope = scope

    # -- hot path --------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when any consumer wants events (guards arg building)."""
        return self.trace is not None or self.obs.enabled

    @property
    def observing(self) -> bool:
        """True when the telemetry stream is live (guards obs-only work,
        e.g. byte accounting for ``send``/``result`` events)."""
        return self.obs.enabled

    def now(self) -> float:
        return self.clock.now()

    def record(
        self,
        kind: str,
        task_id: TaskId,
        epoch: int,
        worker: int = -1,
        *,
        node: Optional[int] = None,
        ts: Optional[float] = None,
        **data: object,
    ) -> None:
        """Record one scheduling event in both consumers.

        ``node`` overrides the tracer's home node for events describing
        work elsewhere (the master synthesizing a slave's compute span);
        ``ts`` overrides the clock stamp (the simulator records reserved
        future spans).
        """
        stamp = self.clock.now() if ts is None else ts
        if self.trace is not None and kind in _CHECK_KINDS:
            self.trace.record(kind, task_id, epoch, worker, stamp)
        if self.obs.enabled:
            self.obs.emit(
                kind,
                task_id,
                epoch=epoch,
                node=self.node if node is None else node,
                worker=worker,
                scope=self.scope,
                ts=stamp,
                **data,
            )

    # -- epilogue --------------------------------------------------------------

    def check(self, pattern: DAGPattern, title: str) -> None:
        """Run the happens-before validator when verifying (raises
        :class:`~repro.utils.errors.CheckError` on violations)."""
        if self.verify and self.trace is not None:
            check_trace(self.trace.events(), pattern, title=title).raise_if_failed()

    def __repr__(self) -> str:
        return (
            f"ScheduleTracer(scope={self.scope!r}, node={self.node}, "
            f"verify={self.verify}, observing={self.observing})"
        )
