"""Post-hoc statistics over a recorded event stream (``repro stats``).

Answers the questions the paper's figures ask of a schedule — who was
busy, who idled, how much data crossed the wire, how often fault
tolerance fired — from a saved trace file alone, with no re-run.

The fold is deliberately tolerant: a *partial* trace (a run that
aborted, a journal-resumed prefix, a file truncated mid-export) still
produces a digest, annotated with what is missing, rather than raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro.obs.metrics import Histogram
from repro.obs.recorder import ObsEvent


@dataclass
class NodeStats:
    """Per-compute-node digest."""

    tasks: int = 0
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0

    @property
    def busy_fraction(self) -> float:
        total = self.busy_seconds + self.idle_seconds
        return self.busy_seconds / total if total > 0 else 0.0


@dataclass
class RunStats:
    """Digest of one run's telemetry stream."""

    #: Trace extent in seconds (first to last task-scope timestamp).
    extent: float = 0.0
    nodes: Dict[int, NodeStats] = field(default_factory=dict)
    tasks_committed: int = 0
    redistributes: int = 0
    stale_drops: int = 0
    #: Payload bytes master -> slaves / slaves -> master.
    bytes_to_slaves: int = 0
    bytes_to_master: int = 0
    #: Individual protocol messages seen by instrumented endpoints.
    messages_sent: int = 0
    messages_received: int = 0
    subtask_events: int = 0
    #: Coverage: distinct tasks ever assigned, and how many of those
    #: never reached ``commit`` in this trace (non-zero marks a partial
    #: trace — an aborted run or a truncated export).
    tasks_assigned: int = 0
    tasks_incomplete: int = 0
    #: Raw event count per kind — the coverage footnote for partial
    #: traces, and a cheap sanity check that expected kinds are present.
    kind_counts: Dict[str, int] = field(default_factory=dict)
    #: Queue-wait seconds per assignment (``queue-wait`` spans), when
    #: the trace carries them.
    queue_wait: Optional[Histogram] = None
    #: Per-message latency seconds: ``t_ser + t_wire`` from instrumented
    #: channels, or the simulated backend's reserved ``send`` spans.
    msg_latency: Optional[Histogram] = None

    @property
    def tasks_per_second(self) -> float:
        return self.tasks_committed / self.extent if self.extent > 0 else 0.0


def _ev_float(ev: ObsEvent, key: str) -> Optional[float]:
    """``ev.data[key]`` as a float, or None when absent/malformed."""
    if ev.data is None:
        return None
    raw = ev.data.get(key)
    if raw is None:
        return None
    try:
        return float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def _ev_nbytes(ev: ObsEvent) -> int:
    value = _ev_float(ev, "nbytes")
    return int(value) if value is not None else 0


def compute_stats(events: Iterable[ObsEvent]) -> RunStats:
    """Fold an event stream into a :class:`RunStats`.

    Busy time per node comes from ``compute`` span extents; idle time is
    the remainder of the trace extent. Bytes on the wire prefer
    message-scope events (exact, per endpoint) and fall back to the
    task-scope ``send``/``result`` payload accounting when channels were
    not instrumented (e.g. the simulated backend).

    Never raises on partial traces: missing spans, absent payload
    fields, and tasks that never committed all degrade to coverage
    annotations on the result.
    """
    stats = RunStats()
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    msg_sent_bytes = 0
    msg_recv_bytes = 0
    task_send_bytes = 0
    task_result_bytes = 0
    assigned: set = set()
    committed: set = set()
    queue_wait = Histogram()
    msg_latency = Histogram()
    sim_send_latency = Histogram()

    for ev in events:
        stats.kind_counts[ev.kind] = stats.kind_counts.get(ev.kind, 0) + 1
        if ev.scope == "message":
            nbytes = _ev_nbytes(ev)
            if ev.kind == "msg-send":
                stats.messages_sent += 1
                msg_sent_bytes += nbytes
                t_wire = _ev_float(ev, "t_wire")
                if t_wire is not None:
                    msg_latency.observe(t_wire + (_ev_float(ev, "t_ser") or 0.0))
            elif ev.kind == "msg-recv":
                stats.messages_received += 1
                msg_recv_bytes += nbytes
            continue
        if ev.scope == "subtask":
            stats.subtask_events += 1
            continue
        if ev.scope != "task":
            continue
        span = ev.span()
        lo = span[0] if span is not None else ev.ts
        hi = span[1] if span is not None else ev.ts
        t_min = lo if t_min is None or lo < t_min else t_min
        t_max = hi if t_max is None or hi > t_max else t_max
        if ev.kind == "compute":
            node = stats.nodes.setdefault(max(ev.node, 0), NodeStats())
            node.tasks += 1
            if span is not None:
                node.busy_seconds += span[1] - span[0]
        elif ev.kind == "assign":
            if ev.task_id is not None:
                assigned.add(ev.task_id)
        elif ev.kind == "commit":
            stats.tasks_committed += 1
            if ev.task_id is not None:
                committed.add(ev.task_id)
        elif ev.kind == "redistribute":
            stats.redistributes += 1
        elif ev.kind == "stale-drop":
            stats.stale_drops += 1
        elif ev.kind == "queue-wait":
            if span is not None:
                queue_wait.observe(span[1] - span[0])
        elif ev.kind == "send":
            task_send_bytes += _ev_nbytes(ev)
            if span is not None:
                sim_send_latency.observe(span[1] - span[0])
        elif ev.kind == "result":
            task_result_bytes += _ev_nbytes(ev)

    if t_min is not None and t_max is not None:
        stats.extent = t_max - t_min
    for node in stats.nodes.values():
        node.idle_seconds = max(0.0, stats.extent - node.busy_seconds)
    if stats.messages_sent or stats.messages_received:
        stats.bytes_to_slaves = msg_sent_bytes
        stats.bytes_to_master = msg_recv_bytes
    else:
        stats.bytes_to_slaves = task_send_bytes
        stats.bytes_to_master = task_result_bytes
    stats.tasks_assigned = len(assigned)
    stats.tasks_incomplete = len(assigned - committed)
    if queue_wait.count:
        stats.queue_wait = queue_wait
    if msg_latency.count:
        stats.msg_latency = msg_latency
    elif sim_send_latency.count:
        stats.msg_latency = sim_send_latency
    return stats


def _percentile_line(label: str, hist: Histogram) -> str:
    s = hist.summary()
    return (
        f"  {label}: mean {s['mean']:.3g} s, p50 {s['p50']:.3g} s, "
        f"p95 {s['p95']:.3g} s, p99 {s['p99']:.3g} s ({hist.count} samples)"
    )


def format_stats(stats: RunStats, *, title: str = "run stats") -> str:
    """Human-readable multi-line digest (the ``repro stats`` output)."""
    lines = [
        f"{title}: {stats.tasks_committed} tasks committed over {stats.extent:.6g} s "
        f"({stats.tasks_per_second:.4g} tasks/s)",
        f"  faults        : {stats.redistributes} redistributed, "
        f"{stats.stale_drops} stale dropped",
        f"  bytes on wire : {_human_bytes(stats.bytes_to_slaves)} to slaves, "
        f"{_human_bytes(stats.bytes_to_master)} to master",
    ]
    if stats.messages_sent or stats.messages_received:
        lines.append(
            f"  messages      : {stats.messages_sent} sent, "
            f"{stats.messages_received} received"
        )
    if stats.queue_wait is not None:
        lines.append(_percentile_line("queue wait    ", stats.queue_wait))
    if stats.msg_latency is not None:
        lines.append(_percentile_line("msg latency   ", stats.msg_latency))
    if stats.subtask_events:
        lines.append(f"  subtask events: {stats.subtask_events}")
    if stats.tasks_incomplete:
        lines.append(
            f"  coverage      : PARTIAL trace — {stats.tasks_incomplete} of "
            f"{stats.tasks_assigned} assigned tasks never committed"
        )
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(stats.kind_counts.items()))
        lines.append(f"  event kinds   : {kinds}")
    if stats.nodes:
        lines.append("  per-worker busy/idle:")
        for k in sorted(stats.nodes):
            n = stats.nodes[k]
            lines.append(
                f"    node {k:2d} : busy {n.busy_seconds:.6g} s, "
                f"idle {n.idle_seconds:.6g} s ({n.busy_fraction:.1%} busy, "
                f"{n.tasks} tasks)"
            )
    return "\n".join(lines)


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0:
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} TiB"


def text_summary(
    events: Sequence[ObsEvent],
    metrics: Optional[Dict[str, object]] = None,
    *,
    title: str = "run stats",
) -> str:
    """Stats digest plus a metrics-snapshot appendix."""
    out = [format_stats(compute_stats(events), title=title)]
    if metrics:
        counters = metrics.get("counters") or {}
        gauges = metrics.get("gauges") or {}
        if counters or gauges:
            out.append("  metrics:")
            for name, value in sorted({**counters, **gauges}.items()):  # type: ignore[dict-item]
                out.append(f"    {name} = {value:g}")
    return "\n".join(out)
