"""The EasyHPS runtime: master part, slave part, worker pools, facade.

Maps one-to-one onto the paper's Section III framework: a master part
doing processor-level scheduling over slave parts, each slave doing
thread-level scheduling over computing threads, with the worker-pool
components of Section V-A (computable sub-task stack, finished sub-task
stack, overtime queue, sub-task register table) and timeout-based
hierarchical fault tolerance.
"""

from repro.runtime.config import RunConfig
from repro.runtime.system import EasyHPS, RunResult
from repro.runtime.api import DagPatternSpec
from repro.runtime.easypdp import run_easypdp

__all__ = ["RunConfig", "EasyHPS", "RunResult", "DagPatternSpec", "run_easypdp"]
