"""User-facing DAG Data Driven Model API — the Python mirror of Table I.

The paper's C API asks the programmer for a ``dag_pattern`` struct: the
pattern type, ``dag_size``, the two ``partition_size`` values, and a
``data_mapping_function``; the runtime derives everything else
(``rect_size``, ``dag_pos``, per-vertex degrees). :class:`DagPatternSpec`
is that struct; :meth:`DagPatternSpec.build` performs the "other data
members are set automatically" initialization and returns the
:class:`~repro.dag.model.DAGDataDrivenModel`.

:func:`table1_rows` introspects the live data structures to regenerate
Table I — the benchmark ``bench_table1_api.py`` prints it and the test
suite pins it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.dag.library import PATTERN_LIBRARY, get_pattern
from repro.dag.model import DAGDataDrivenModel
from repro.dag.partition import BlockShape
from repro.dag.pattern import DAGPattern, DAGVertex
from repro.utils.errors import ConfigError


@dataclass
class DagPatternSpec:
    """The ``dag_pattern`` struct a user fills in (Table I, lower half).

    Either ``pattern_type`` (a library name plus ``dag_size``) or an
    explicit ``pattern`` object (the user-defined path) must be given.
    """

    #: Library pattern name ("wavefront", "triangular", ...) or None.
    pattern_type: Optional[str] = None
    #: Cell-level DAG size (rows, cols); triangular/chain use rows only.
    dag_size: Optional[Tuple[int, int]] = None
    #: Process-level sub-task size after task partition.
    process_partition_size: BlockShape = 1
    #: Thread-level sub-task size.
    thread_partition_size: BlockShape = 1
    #: Explicit user-defined pattern (overrides pattern_type/dag_size).
    pattern: Optional[DAGPattern] = None
    #: Maps an abstract vertex to its data block; None = automatic.
    data_mapping_function: Optional[Callable] = None

    def build(self) -> DAGDataDrivenModel:
        """Initialize the DAG Data Driven Model (Section IV-D)."""
        pattern = self.pattern
        if pattern is None:
            if self.pattern_type is None or self.dag_size is None:
                raise ConfigError(
                    "give either an explicit pattern or a pattern_type with dag_size"
                )
            if self.pattern_type not in PATTERN_LIBRARY:
                raise ConfigError(
                    f"unknown pattern type {self.pattern_type!r}; "
                    f"library has {sorted(PATTERN_LIBRARY)}"
                )
            rows, cols = self.dag_size
            if self.pattern_type in ("triangular", "chain"):
                pattern = get_pattern(self.pattern_type, rows)
            else:
                pattern = get_pattern(self.pattern_type, rows, cols)
        return DAGDataDrivenModel(
            pattern,
            self.process_partition_size,
            self.thread_partition_size,
            data_mapping=self.data_mapping_function,
        )


#: (name, type, description) rows of Table I, upper half: DAGElement.
DAG_ELEMENT_FIELDS: Tuple[Tuple[str, str, str], ...] = (
    ("pre_cnt", "int", "prefix degree"),
    ("pos_cnt", "int", "postfix degree"),
    ("data_pre_cnt", "int", "prefix degree of data dependency"),
    ("posfix_id", "pointer to int", "linked list of postfix vertices"),
    ("data_prefix_id", "pointer to int", "linked list of data dependency vertices"),
    ("process", "pointer to function", "task function for DAG vertex"),
)

#: (name, type, description) rows of Table I, lower half: dag_pattern.
DAG_PATTERN_FIELDS: Tuple[Tuple[str, str, str], ...] = (
    ("dag_pattern_element", "pointer to DAGElement", "linked list of DAG vertices"),
    ("dag_size", "SizeT(row,col)", "the size of DAG"),
    ("partition_size", "SizeT(row,col)", "sub-task size after task partition"),
    ("rect_size", "SizeT(row,col)", "size of abstract DAG after task partition"),
    ("dag_pos", "PosT(x,y)", "position of upper left DAG"),
    ("dag_pattern_type", "enum DAG_pattern_type", "enum DAG type"),
    ("data_mapping_function", "pointer to function", "mapping computed data to DAG Pattern Model"),
)


def table1_rows() -> List[Tuple[str, str, str, bool]]:
    """Regenerate Table I, marking each field implemented-or-not by
    introspecting the live Python structures."""
    vertex_fields = set(DAGVertex.__dataclass_fields__)
    rows: List[Tuple[str, str, str, bool]] = []
    for name, ctype, desc in DAG_ELEMENT_FIELDS:
        rows.append((name, ctype, desc, name in vertex_fields))
    spec_fields = set(DagPatternSpec.__dataclass_fields__)
    model_attrs = {"dag_size", "rect_size", "dag_pos"}
    for name, ctype, desc in DAG_PATTERN_FIELDS:
        implemented = (
            name in spec_fields
            or name in model_attrs
            or name == "partition_size"  # split into process/thread sizes
            or name == "dag_pattern_element"  # DAGPattern.element materializes these
            or name == "dag_pattern_type"  # DagPatternSpec.pattern_type / PatternType
        )
        rows.append((name, ctype, desc, implemented))
    return rows
