"""Run configuration for the EasyHPS facade.

Mirrors the paper's experiment knobs: node count (``X``), computing
threads per node (``ct``), the two partition sizes, the scheduling policy
per level, fault-tolerance timeouts, and — for the simulated backend — a
cluster spec. ``RunConfig.experiment(X, Y)`` reproduces the paper's
``Experiment_X_Y`` core accounting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.cluster.faults import (
    FaultPlan,
    IoFaultPlan,
    MessageFaultPlan,
    WorkerFaultPlan,
)
from repro.cluster.topology import ClusterSpec, experiment_layout
from repro.dag.partition import BlockShape, _as_pair
from repro.schedulers.policy import POLICIES
from repro.utils.errors import ConfigError
from repro.utils.validate import check_in, check_positive, check_type

BACKENDS = ("serial", "threads", "processes", "simulated")

#: Degradation ladder for journal/WAL write failures (see
#: :attr:`RunConfig.journal_degrade`).
JOURNAL_DEGRADE_MODES = ("abort", "checkpoint", "memory")


def _verify_default() -> bool:
    """Default of :attr:`RunConfig.verify`: the ``REPRO_VERIFY`` env var.

    Lets an entire test suite (or CI job) run with the happens-before
    trace validator on — ``REPRO_VERIFY=1 pytest`` — without touching any
    call site.
    """
    return os.environ.get("REPRO_VERIFY", "").strip().lower() in ("1", "true", "yes", "on")


def _env_bool(name: str, default: bool):
    """Default factory: boolean knob overridable via ``REPRO_*`` env var."""

    def factory() -> bool:
        raw = os.environ.get(name, "").strip().lower()
        if not raw:
            return default
        return raw in ("1", "true", "yes", "on")

    return factory


def _env_float(name: str, default: float):
    """Default factory: float knob overridable via ``REPRO_*`` env var."""

    def factory() -> float:
        raw = os.environ.get(name, "").strip()
        if not raw:
            return default
        try:
            return float(raw)
        except ValueError:
            raise ConfigError(f"env var {name} must be a number, got {raw!r}")

    return factory


def _env_opt_float(name: str):
    """Default factory: optional float knob (``none``/unset -> None)."""

    def factory() -> Optional[float]:
        raw = os.environ.get(name, "").strip()
        if not raw or raw.lower() == "none":
            return None
        try:
            return float(raw)
        except ValueError:
            raise ConfigError(f"env var {name} must be a number, got {raw!r}")

    return factory


def _env_str(name: str, default: str):
    """Default factory: string knob overridable via ``REPRO_*`` env var."""

    def factory() -> str:
        raw = os.environ.get(name, "").strip()
        return raw if raw else default

    return factory


def _env_int(name: str, default: int):
    """Default factory: int knob overridable via ``REPRO_*`` env var."""

    def factory() -> int:
        raw = os.environ.get(name, "").strip()
        if not raw:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ConfigError(f"env var {name} must be an integer, got {raw!r}")

    return factory


@dataclass(frozen=True)
class RunConfig:
    """Everything the runtime needs besides the problem itself."""

    #: Total nodes including the master (the paper's ``X``). Real backends
    #: spawn ``nodes - 1`` slave parts.
    nodes: int = 2
    #: Computing threads per slave node (the paper's ``ct``).
    threads_per_node: int = 2
    #: Execution backend: "serial", "threads", "processes" or "simulated".
    backend: str = "threads"
    #: Processor-level scheduling policy: "dynamic" (EasyHPS), "bcw", "cw".
    scheduler: str = "dynamic"
    #: Thread-level scheduling policy.
    thread_scheduler: str = "dynamic"
    #: Process-level partition size (cells per sub-task side); None picks
    #: the problem's default.
    process_partition: Optional[BlockShape] = None
    #: Thread-level partition size; None picks the problem's default.
    thread_partition: Optional[BlockShape] = None
    #: Seconds before a dispatched sub-task is declared failed (Fig 10).
    #: Overridable via ``REPRO_TASK_TIMEOUT``.
    task_timeout: float = field(default_factory=_env_float("REPRO_TASK_TIMEOUT", 30.0))
    #: Seconds before a sub-sub-task restarts its computing thread (Fig 12).
    subtask_timeout: float = 10.0
    #: Re-dispatches allowed per sub-task before the run aborts.
    max_retries: int = 3
    #: Poll interval of the real backends' service loops, seconds.
    poll_interval: float = 0.02
    #: Injected processor-level faults (testing / ablation).
    fault_plan: FaultPlan = field(default_factory=FaultPlan.none)
    #: Injected thread-level faults.
    thread_fault_plan: FaultPlan = field(default_factory=FaultPlan.none)
    #: Injected message-level faults (drop/duplicate/delay/corrupt) at the
    #: master<->slave channel boundary (:mod:`repro.chaos`).
    message_fault_plan: MessageFaultPlan = field(default_factory=MessageFaultPlan.none)
    #: Injected worker-level faults (slave death mid-run, slow node).
    worker_fault_plan: WorkerFaultPlan = field(default_factory=WorkerFaultPlan.none)
    #: Injected resource-exhaustion I/O faults (ENOSPC/EIO/partial
    #: writes/fsync failures on the journal, shm allocation failures) at
    #: seeded points (:mod:`repro.chaos.resources`).
    io_fault_plan: IoFaultPlan = field(default_factory=IoFaultPlan.none)
    #: What a journal write failure degrades to once
    #: :attr:`journal_retries` in-place retries are spent: ``"abort"``
    #: raises a clean attributed
    #: :class:`~repro.utils.errors.ResourceExhausted`; ``"checkpoint"``
    #: first compacts the journal (freeing every subsumed record's disk)
    #: and retries once more before aborting; ``"memory"`` drops
    #: durability — the journal file is removed, the run continues
    #: in-memory-only, and the degradation is recorded as a
    #: ``resource-degrade`` obs event. Overridable via
    #: ``REPRO_JOURNAL_DEGRADE``.
    journal_degrade: str = field(
        default_factory=_env_str("REPRO_JOURNAL_DEGRADE", "abort")
    )
    #: In-place retries of a failed journal/WAL record write before the
    #: :attr:`journal_degrade` policy engages (transient ENOSPC/EIO
    #: absorb here). Overridable via ``REPRO_JOURNAL_RETRIES``.
    journal_retries: int = field(default_factory=_env_int("REPRO_JOURNAL_RETRIES", 2))
    #: How long a "hang" fault sleeps before replying late, seconds.
    hang_duration: float = 1.0
    #: Base delay before re-dispatching a timed-out sub-task, seconds;
    #: doubles per attempt (exponential backoff) up to
    #: :attr:`retry_backoff_max`. 0 = immediate re-dispatch (the paper's
    #: behaviour).
    retry_backoff: float = 0.0
    #: Ceiling of the exponential retry backoff, seconds.
    retry_backoff_max: float = 2.0
    #: Speculatively re-dispatch straggler sub-tasks: a live dispatch older
    #: than :attr:`speculative_factor` x the :attr:`speculative_quantile`
    #: of completed task durations is cancelled and re-queued before its
    #: timeout. Speculative re-dispatches do not count against the retry
    #: budget. Real backends only (the simulator's stragglers are modeled
    #: deterministically and recovered by the plain timeout).
    speculate: bool = False
    #: Straggler multiple over the duration quantile that triggers
    #: speculation.
    speculative_factor: float = 2.0
    #: Quantile of completed durations used as the speculation baseline.
    speculative_quantile: float = 0.95
    #: Blacklist a worker after this many timeout-attributed failures;
    #: its in-flight work is re-queued and it receives no further tasks.
    #: Degrades gracefully: the last healthy worker is never blacklisted.
    #: None disables blacklisting.
    blacklist_threshold: Optional[int] = None
    #: Abort with :class:`~repro.utils.errors.FaultToleranceExhausted`
    #: when no dispatch is live and no progress happened for this many
    #: seconds (all workers presumed lost) — the guarantee that a fault
    #: storm ends in a clean abort, never a hang. None derives
    #: ``2 * task_timeout + 1``. Overridable via ``REPRO_STALL_TIMEOUT``.
    stall_timeout: Optional[float] = field(
        default_factory=_env_opt_float("REPRO_STALL_TIMEOUT")
    )
    #: Path of the write-ahead commit journal (:mod:`repro.durable`); the
    #: master writes through on every commit and ``repro resume`` can
    #: reconstruct the run after a master crash. None disables journaling.
    journal_path: Optional[str] = None
    #: Commits between compacted journal checkpoints (snapshot of the
    #: committed DP region + retry budgets). Overridable via
    #: ``REPRO_CHECKPOINT_INTERVAL``.
    checkpoint_interval: int = field(
        default_factory=_env_int("REPRO_CHECKPOINT_INTERVAL", 32)
    )
    #: fsync the journal after every record (survives OS crashes, not just
    #: process death). Overridable via ``REPRO_JOURNAL_FSYNC``.
    journal_fsync: bool = field(default_factory=_env_bool("REPRO_JOURNAL_FSYNC", True))
    #: Modeled per-record journal write latency charged to the master in
    #: sim-time (simulated backend only). Overridable via
    #: ``REPRO_JOURNAL_LATENCY``.
    journal_latency: float = field(
        default_factory=_env_float("REPRO_JOURNAL_LATENCY", 0.0005)
    )
    #: Chaos kill switch: raise :class:`~repro.utils.errors.MasterCrash`
    #: after this many journal commit records — the in-process equivalent
    #: of ``kill -9`` of the master at a commit boundary. None disables.
    journal_kill_after: Optional[int] = None
    #: With the kill switch: also append a deliberately torn frame before
    #: crashing (models a kill mid-write; recovery must CRC-reject it).
    journal_kill_torn: bool = False
    #: Seconds between slave heartbeat beacons; enables the heartbeat/
    #: lease liveness protocol (leases expire after
    #: ``heartbeat_interval * lease_factor`` of silence and drive
    #: re-dispatch before the hard timeout). None keeps the paper's
    #: inference-only liveness. Overridable via ``REPRO_HEARTBEAT_INTERVAL``.
    heartbeat_interval: Optional[float] = field(
        default_factory=_env_opt_float("REPRO_HEARTBEAT_INTERVAL")
    )
    #: Lease duration as a multiple of the heartbeat interval (tolerates
    #: ``lease_factor - 1`` consecutive lost heartbeats). Overridable via
    #: ``REPRO_LEASE_FACTOR``.
    lease_factor: float = field(default_factory=_env_float("REPRO_LEASE_FACTOR", 3.0))
    #: Simulated-cluster description; None derives one from nodes/threads.
    cluster: Optional[ClusterSpec] = None
    #: BCW column grouping (the baseline's ``block_col`` argument).
    bcw_block_cols: int = 1
    #: Record a per-sub-task schedule trace on any backend; the report's
    #: ``trace`` then feeds :mod:`repro.analysis.gantt`. Implies
    #: ``observe`` (the trace is derived from the telemetry stream).
    trace: bool = False
    #: Record runtime telemetry (:mod:`repro.obs`): the task-lifecycle
    #: event stream and the metrics snapshot land on the report's
    #: ``events`` / ``metrics`` and can be exported to Perfetto JSON via
    #: ``repro run --trace-out``. Off by default — the disabled path is
    #: a shared no-op recorder with no per-task cost.
    observe: bool = False
    #: Model slave-side input caching (simulated backend): re-dispatching
    #: near a node's previous blocks skips re-shipping the data it already
    #: holds. Off by default — the paper's master re-sends per task.
    data_reuse: bool = False
    #: Overlap the next sub-task's input transfer with the current
    #: compute (one-deep prefetch, simulated backend). Off by default —
    #: the paper's slave loop is strictly transfer -> compute -> reply.
    prefetch: bool = False
    #: Run the happens-before trace validator (:mod:`repro.check`) over
    #: every schedule: master and slave levels on the real backends, the
    #: event log on the simulated one. A violation raises
    #: :class:`~repro.utils.errors.CheckError` instead of returning wrong
    #: cells. Defaults from the ``REPRO_VERIFY`` environment variable so a
    #: whole test run can opt in at once.
    verify: bool = field(default_factory=_verify_default)
    #: End-to-end result integrity mode (:mod:`repro.integrity`):
    #: ``"off"`` computes no digests (zero-cost path), ``"digest"`` stamps
    #: and verifies canonical content digests on every TaskAssign/
    #: TaskResult hop, ``"audit"`` additionally recomputes a sampled
    #: fraction of commits master-side and taint-recomputes the dependent
    #: closure of any convicted block, ``"vote"`` requires ``vote_k``
    #: agreeing results from distinct workers per commit (escalating to 3
    #: on divergence). Overridable via ``REPRO_INTEGRITY``.
    integrity: str = field(default_factory=_env_str("REPRO_INTEGRITY", "digest"))
    #: Fraction of commits audited under ``integrity="audit"`` (a
    #: deterministic per-task sample, budget-exempt). Overridable via
    #: ``REPRO_AUDIT_FRACTION``.
    audit_fraction: float = field(
        default_factory=_env_float("REPRO_AUDIT_FRACTION", 0.125)
    )
    #: Agreeing results required per commit under ``integrity="vote"``.
    #: Overridable via ``REPRO_VOTE_K``.
    vote_k: int = field(default_factory=_env_int("REPRO_VOTE_K", 2))
    #: Quarantine a worker after this many divergence convictions (audit
    #: mismatches or lost votes). Distinct from the liveness blacklist:
    #: a lying worker still heartbeats, so only conviction removes it.
    #: Overridable via ``REPRO_QUARANTINE_THRESHOLD``.
    quarantine_threshold: int = field(
        default_factory=_env_int("REPRO_QUARANTINE_THRESHOLD", 2)
    )
    #: Batched wavefront dispatch: an idle worker gets an entire
    #: computable anti-diagonal wave (up to :attr:`max_batch` sub-tasks)
    #: in one ``BatchAssign`` envelope and answers with one
    #: ``BatchResult`` — amortizing the per-message α cost the cluster
    #: link model charges. Every subtask keeps its own epoch, lease,
    #: digest, and journal commit, so retry/durability/SDC semantics are
    #: unchanged. Off by default (one task per message, the paper's
    #: protocol). Overridable via ``REPRO_BATCH_WAVE``.
    batch_wave: bool = field(default_factory=_env_bool("REPRO_BATCH_WAVE", False))
    #: Largest wave one ``BatchAssign`` may carry. Overridable via
    #: ``REPRO_MAX_BATCH``.
    max_batch: int = field(default_factory=_env_int("REPRO_MAX_BATCH", 8))
    #: Zero-copy shared-memory data plane (processes backend only):
    #: large block payloads move through ``multiprocessing.shared_memory``
    #: segments as :class:`~repro.comm.messages.BlockRef` handles instead
    #: of being pickled through the pipe (:mod:`repro.comm.shm`). Other
    #: backends ignore it (threads already share memory; serial and
    #: simulated move no real bytes). Overridable via ``REPRO_SHM``.
    shm: bool = field(default_factory=_env_bool("REPRO_SHM", False))
    #: Stable identifier of this run within a multi-run process (the
    #: ``repro serve`` daemon sets it to the job id). Keys the shm
    #: segment namespace (:func:`repro.comm.shm.run_prefix`) so each
    #: job's teardown sweep reclaims exactly its own segments, and rides
    #: on :class:`~repro.utils.errors.FaultToleranceExhausted` plus the
    #: abort-path telemetry so multi-job traces attribute aborts to the
    #: right tenant. None for standalone runs.
    run_id: Optional[str] = None

    def __post_init__(self) -> None:
        check_in("backend", self.backend, BACKENDS)
        check_in("scheduler", self.scheduler, POLICIES)
        check_in("thread_scheduler", self.thread_scheduler, POLICIES)
        check_type("fault_plan", self.fault_plan, FaultPlan)
        check_type("thread_fault_plan", self.thread_fault_plan, FaultPlan)
        check_type("message_fault_plan", self.message_fault_plan, MessageFaultPlan)
        check_type("worker_fault_plan", self.worker_fault_plan, WorkerFaultPlan)
        check_type("io_fault_plan", self.io_fault_plan, IoFaultPlan)
        check_in("journal_degrade", self.journal_degrade, JOURNAL_DEGRADE_MODES)
        if self.journal_retries < 0:
            raise ConfigError(
                f"journal_retries must be >= 0, got {self.journal_retries}"
            )
        check_type("verify", self.verify, bool)
        check_type("trace", self.trace, bool)
        check_type("observe", self.observe, bool)
        if self.cluster is not None:
            check_type("cluster", self.cluster, ClusterSpec)
        if self.nodes < 2 and self.backend != "serial":
            raise ConfigError(f"need >= 2 nodes (master + slave), got {self.nodes}")
        check_positive("threads_per_node", self.threads_per_node)
        check_positive("task_timeout", self.task_timeout)
        check_positive("subtask_timeout", self.subtask_timeout)
        check_positive("poll_interval", self.poll_interval)
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ConfigError(f"retry_backoff must be >= 0, got {self.retry_backoff}")
        check_positive("retry_backoff_max", self.retry_backoff_max)
        if self.speculative_factor <= 1.0:
            raise ConfigError(
                f"speculative_factor must be > 1, got {self.speculative_factor}"
            )
        if not 0.0 < self.speculative_quantile < 1.0:
            raise ConfigError(
                f"speculative_quantile must be in (0, 1), got {self.speculative_quantile}"
            )
        if self.blacklist_threshold is not None and self.blacklist_threshold < 1:
            raise ConfigError(
                f"blacklist_threshold must be >= 1, got {self.blacklist_threshold}"
            )
        if self.stall_timeout is not None:
            check_positive("stall_timeout", self.stall_timeout)
        check_positive("checkpoint_interval", self.checkpoint_interval)
        check_positive("lease_factor", self.lease_factor)
        if self.heartbeat_interval is not None:
            check_positive("heartbeat_interval", self.heartbeat_interval)
        if self.journal_latency < 0:
            raise ConfigError(
                f"journal_latency must be >= 0, got {self.journal_latency}"
            )
        if self.journal_kill_after is not None:
            check_positive("journal_kill_after", self.journal_kill_after)
        check_type("journal_fsync", self.journal_fsync, bool)
        check_type("journal_kill_torn", self.journal_kill_torn, bool)
        if self.journal_path is not None:
            check_type("journal_path", self.journal_path, str)
        from repro.integrity import INTEGRITY_MODES

        check_in("integrity", self.integrity, INTEGRITY_MODES)
        if not 0.0 <= self.audit_fraction <= 1.0:
            raise ConfigError(
                f"audit_fraction must be in [0, 1], got {self.audit_fraction}"
            )
        if self.vote_k < 2:
            raise ConfigError(f"vote_k must be >= 2, got {self.vote_k}")
        if self.quarantine_threshold < 1:
            raise ConfigError(
                f"quarantine_threshold must be >= 1, got {self.quarantine_threshold}"
            )
        check_type("batch_wave", self.batch_wave, bool)
        check_type("shm", self.shm, bool)
        check_positive("max_batch", self.max_batch)
        if self.run_id is not None:
            check_type("run_id", self.run_id, str)
            if not self.run_id:
                raise ConfigError("run_id must be a non-empty string or None")

    # -- derived ------------------------------------------------------------

    @property
    def n_slaves(self) -> int:
        return self.nodes - 1

    @property
    def effective_stall_timeout(self) -> float:
        """The no-progress abort deadline (derived when not set)."""
        if self.stall_timeout is not None:
            return self.stall_timeout
        return 2.0 * self.task_timeout + 1.0

    @property
    def lease_duration(self) -> Optional[float]:
        """Granted lease length (``heartbeat_interval * lease_factor``);
        None when the heartbeat/lease protocol is off."""
        if self.heartbeat_interval is None:
            return None
        return self.heartbeat_interval * self.lease_factor

    @property
    def integrity_policy(self):
        """Resolved :class:`~repro.integrity.IntegrityPolicy` of this run."""
        from repro.integrity import IntegrityPolicy

        return IntegrityPolicy.from_config(self)

    @property
    def observing(self) -> bool:
        """True when any telemetry consumer is on (``observe`` or the
        derived-from-telemetry schedule ``trace``)."""
        return self.observe or self.trace

    def partitions_for(self, problem) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Resolve the (process, thread) partition sizes for a problem."""
        proc, thread = problem.default_partition_sizes()
        p = self.process_partition if self.process_partition is not None else proc
        t = self.thread_partition if self.thread_partition is not None else thread
        return _as_pair(p), _as_pair(t)

    def cluster_spec(self) -> ClusterSpec:
        """The simulated cluster: explicit spec, or one derived from
        ``nodes``/``threads_per_node``."""
        if self.cluster is not None:
            return self.cluster
        from repro.cluster.machine import NodeSpec

        return ClusterSpec(
            compute_nodes=tuple(NodeSpec(threads=self.threads_per_node) for _ in range(self.n_slaves))
        )

    @classmethod
    def experiment(cls, nodes: int, cores: int, **overrides) -> "RunConfig":
        """The paper's ``Experiment_X_Y``: ``cores`` total on ``nodes`` nodes.

        Builds the matching simulated cluster (uneven thread splits
        round-robin) and defaults the backend to "simulated".
        """
        spec = experiment_layout(nodes, cores)
        threads = spec.compute_nodes[0].threads
        base = cls(
            nodes=nodes,
            threads_per_node=threads,
            backend="simulated",
            cluster=spec,
        )
        return replace(base, **overrides) if overrides else base
