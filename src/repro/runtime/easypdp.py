"""EasyPDP compatibility layer — the authors' prior shared-memory runtime.

EasyPDP (Tang et al., TPDS 2012) is, by the EasyHPS paper's own framing,
exactly the thread-level half of EasyHPS running on one node: a DAG Data
Driven Model plus a dynamic thread worker pool with timeout-based thread
restart. :func:`run_easypdp` exposes that as a one-call API, implemented
by driving a single slave part over the whole (un-split) problem — no
master node, no message passing, one partition level.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

from repro.algorithms.problem import DPProblem
from repro.analysis.report import RunReport
from repro.cluster.faults import FaultPlan
from repro.dag.partition import BlockShape, partition_pattern
from repro.runtime.slave import SlavePart
from repro.comm.messages import TaskAssign
from repro.comm.transport import channel_pair


def run_easypdp(
    problem: DPProblem,
    n_threads: int,
    partition_size: Optional[BlockShape] = None,
    *,
    scheduler: str = "dynamic",
    subtask_timeout: float = 10.0,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[Any, RunReport]:
    """Run one DP problem on a single shared-memory node, EasyPDP-style.

    ``partition_size`` is the (single) task partition size — EasyPDP has
    one level. Returns ``(finalized_result, report)``.
    """
    if partition_size is None:
        partition_size = problem.default_partition_sizes()[1]
    shape = getattr(problem.pattern(), "shape", None)
    whole = shape if shape is not None else (problem.pattern().n,) * 2
    # One "process-level block" covering everything; the thread level does
    # all the real partitioning — that *is* EasyPDP.
    partition = partition_pattern(problem.pattern(), whole)
    (root_bid,) = partition.block_ids()

    slave_end, _driver_end = channel_pair()
    part = SlavePart(
        slave_id=0,
        channel=slave_end,
        problem=problem,
        partition=partition,
        thread_partition=partition_size,
        n_threads=n_threads,
        thread_scheduler=scheduler,
        subtask_timeout=subtask_timeout,
        thread_fault_plan=fault_plan or FaultPlan.none(),
    )

    state = problem.make_state()
    started = time.perf_counter()
    inputs = problem.extract_inputs(state, partition, root_bid)
    outputs = part._compute(TaskAssign(task_id=root_bid, epoch=0, inputs=inputs))
    problem.apply_result(state, partition, root_bid, outputs)
    elapsed = time.perf_counter() - started

    report = RunReport(
        backend="easypdp",
        scheduler=scheduler,
        algorithm=problem.name,
        nodes=1,
        threads_per_node=n_threads,
        makespan=elapsed,
        wall_time=elapsed,
        n_tasks=1,
        n_subtasks=part.stats.subtasks,
        thread_restarts=part.stats.thread_restarts,
        total_flops=problem.total_flops(partition),
    )
    return problem.finalize(state), report
