"""Master part: processor-level scheduling and fault tolerance (Figs 9, 10).

Thread layout follows the paper:

- one *worker thread per slave node* services that slave's channel —
  answering idle signals with computable sub-tasks (or the end signal)
  and collecting results onto the finished sub-task stack;
- the *master scheduling thread* (the caller of :meth:`MasterPart.run`)
  drains the finished stack, updates the master DAG pattern, and pushes
  newly computable sub-tasks onto the computable stack;
- the *fault-tolerance thread* watches the master overtime queue: a
  sub-task that misses its deadline while still registered is
  unregistered and redistributed (Fig 10); a sub-task that exhausts its
  retry budget aborts the run with :class:`FaultToleranceExhausted`.

Results that arrive after their registration was cancelled carry a stale
epoch and are dropped — the register-table check of Fig 9 step h.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.problem import DPProblem
from repro.check.lock_lint import make_lock
from repro.check.trace_check import TraceRecorder
from repro.comm.messages import EndSignal, IdleSignal, TaskAssign, TaskResult
from repro.comm.serialization import message_nbytes
from repro.comm.transport import Channel, ChannelClosed, ChannelTimeout
from repro.dag.parser import DAGParser
from repro.dag.partition import Partition
from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import EventRecorder
from repro.obs.schedule import ScheduleTracer
from repro.runtime.worker_pool import (
    ComputableStack,
    FinishedStack,
    OvertimeEntry,
    OvertimeQueue,
    RegisterTable,
)
from repro.schedulers.policy import SchedulingPolicy
from repro.utils.errors import FaultToleranceExhausted, SchedulerError


@dataclass
class MasterStats:
    """Counters gathered while the master ran."""

    faults_recovered: int = 0
    stale_results: int = 0
    tasks_per_worker: Dict[int, int] = field(default_factory=dict)
    messages: int = 0
    bytes_to_slaves: int = 0
    bytes_to_master: int = 0


class MasterPart:
    """Processor-level scheduler over a set of slave channels."""

    def __init__(
        self,
        problem: DPProblem,
        partition: Partition,
        channels: Sequence[Channel],
        policy: SchedulingPolicy,
        *,
        task_timeout: float = 30.0,
        max_retries: int = 3,
        poll_interval: float = 0.02,
        verify: bool = False,
        tracer: Optional[TraceRecorder] = None,
        clock: Optional[Clock] = None,
        obs: Optional[EventRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not channels:
            raise SchedulerError("master needs at least one slave channel")
        if policy.n_workers != len(channels):
            raise SchedulerError(
                f"policy sized for {policy.n_workers} workers but {len(channels)} slaves given"
            )
        self.problem = problem
        self.partition = partition
        self.channels = list(channels)
        self.policy = policy
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.poll_interval = poll_interval

        self.verify = verify
        #: Unified scheduling instrumentation: the happens-before trace
        #: (``verify``), the telemetry event stream (``obs``), and the
        #: injected clock — see :mod:`repro.obs.schedule`.
        self.sched = ScheduleTracer(
            clock=clock, verify=verify, trace=tracer, obs=obs, node=-1, scope="task"
        )
        self.clock = self.sched.clock
        self.metrics = metrics

        self.state: Dict[str, np.ndarray] = {}
        self.stats = MasterStats()
        self._state_lock = make_lock("master.state")
        self._results_lock = make_lock("master.results")
        self._result_buffer: Dict[tuple, Dict[str, object]] = {}
        self._stack = ComputableStack(depth_observer=self._make_depth_observer())
        self._finished = FinishedStack()
        self._overtime = OvertimeQueue()
        self._register = RegisterTable()
        self._end = threading.Event()
        self._failure: List[BaseException] = []

    @property
    def tracer(self) -> Optional[TraceRecorder]:
        """The happens-before trace recorder (None unless verifying or
        injected) — kept for callers of the pre-obs API."""
        return self.sched.trace

    def _make_depth_observer(self):
        """Queue-depth instrumentation for the computable stack (None —
        hence zero per-push cost — unless metrics are on)."""
        if self.metrics is None:
            return None
        gauge = self.metrics.gauge("master.queue_depth")
        hist = self.metrics.histogram("master.queue_depth_hist")

        def observe(depth: int) -> None:
            gauge.set(depth)
            hist.observe(depth)

        return observe

    # -- public entry ----------------------------------------------------------

    def run(self) -> Dict[str, np.ndarray]:
        """Execute the whole schedule; returns the completed global state."""
        self.state = self.problem.make_state()
        parser = DAGParser(self.partition.abstract)
        self._stack.push_many(parser.computable())

        workers = [
            threading.Thread(
                target=self._serve_slave, args=(k,), daemon=True, name=f"master-worker{k}"
            )
            for k in range(len(self.channels))
        ]
        ft = threading.Thread(target=self._fault_tolerance, daemon=True, name="master-ft")
        for t in workers:
            t.start()
        ft.start()

        try:
            # Master scheduling thread (Fig 9 steps c & h).
            while not parser.is_done():
                if self._failure:
                    break
                task_id = self._finished.pop(timeout=self.poll_interval)
                if task_id is None:
                    continue
                with self._results_lock:
                    outputs, epoch = self._result_buffer.pop(task_id)
                with self._state_lock:
                    self.problem.apply_result(self.state, self.partition, task_id, outputs)
                if self.sched.enabled:
                    # Recorded before push_many so a successor's "assign"
                    # always serializes after its dependencies' commits.
                    self.sched.record("commit", task_id, epoch)
                self._stack.push_many(parser.complete(task_id))
        finally:
            # Fig 9 step i: tear down pools and signal every slave to end.
            self._end.set()
            self._stack.close()
            self._finished.close()
            for t in workers:
                t.join(timeout=10.0)
            ft.join(timeout=10.0)
            for ch in self.channels:
                self.stats.messages += ch.sent_messages + ch.received_messages
                self.stats.bytes_to_slaves += ch.sent_bytes
                self.stats.bytes_to_master += ch.received_bytes
            if self.metrics is not None:
                self._publish_metrics()
        if self._failure:
            raise self._failure[0]
        self.sched.check(
            self.partition.abstract, title=f"master-trace({self.problem.name})"
        )
        return self.state

    def _publish_metrics(self) -> None:
        """Fold end-of-run counters into the metrics registry."""
        assert self.metrics is not None
        for ch in self.channels:
            ch.publish_metrics(self.metrics)
        self.metrics.counter("master.faults_recovered").inc(self.stats.faults_recovered)
        self.metrics.counter("master.stale_results").inc(self.stats.stale_results)
        for worker_id, n in sorted(self.stats.tasks_per_worker.items()):
            self.metrics.counter("master.tasks_completed", worker=worker_id).inc(n)

    # -- per-slave worker thread (Fig 9 steps d-f) ------------------------------------

    def _serve_slave(self, worker_id: int) -> None:
        channel = self.channels[worker_id]
        ended = False
        while not (self._end.is_set() and ended):
            try:
                msg = channel.recv(timeout=self.poll_interval)
            except ChannelTimeout:
                if self._end.is_set():
                    # The slave is quiet (possibly hung); deliver the end
                    # signal on our way out so a live slave can exit.
                    self._try_send_end(channel)
                    return
                continue
            except ChannelClosed:
                return
            if isinstance(msg, IdleSignal):
                task_id = self._stack.pop_eligible(worker_id, self.policy)
                if task_id is None:
                    self._try_send_end(channel)
                    ended = True
                    continue
                epoch = self._register.register(task_id, worker_id)
                if self.sched.enabled:
                    self.sched.record("assign", task_id, epoch, worker_id)
                with self._state_lock:
                    inputs = self.problem.extract_inputs(self.state, self.partition, task_id)
                self._overtime.push(
                    OvertimeEntry(
                        deadline=self.clock.now() + self.task_timeout,
                        task_id=task_id,
                        epoch=epoch,
                    )
                )
                assign = TaskAssign(task_id=task_id, epoch=epoch, inputs=inputs)
                try:
                    channel.send(assign)
                except ChannelClosed:
                    return
                if self.sched.observing:
                    self.sched.record(
                        "send", task_id, epoch, worker_id, nbytes=message_nbytes(assign)
                    )
            elif isinstance(msg, TaskResult):
                if self._register.finish(msg.task_id, msg.epoch):
                    if self.sched.observing:
                        # The compute span is synthesized on the master's
                        # clock from the slave-reported duration, so the
                        # same events exist whether the slave was a thread
                        # or a separate OS process.
                        now = self.sched.now()
                        self.sched.record(
                            "compute",
                            msg.task_id,
                            msg.epoch,
                            node=worker_id,
                            ts=now,
                            t0=now - max(0.0, msg.elapsed),
                            t1=now,
                        )
                        self.sched.record(
                            "result",
                            msg.task_id,
                            msg.epoch,
                            worker_id,
                            nbytes=message_nbytes(msg),
                            elapsed=msg.elapsed,
                        )
                    with self._results_lock:
                        self._result_buffer[msg.task_id] = (msg.outputs, msg.epoch)
                    self._finished.push(msg.task_id)
                    self.stats.tasks_per_worker[worker_id] = (
                        self.stats.tasks_per_worker.get(worker_id, 0) + 1
                    )
                else:
                    self.stats.stale_results += 1
                    if self.sched.enabled:
                        self.sched.record("stale-drop", msg.task_id, msg.epoch, worker_id)

    def _try_send_end(self, channel: Channel) -> None:
        try:
            channel.send(EndSignal())
        except ChannelClosed:
            pass

    # -- fault-tolerance thread (Fig 10) ------------------------------------------------

    def _fault_tolerance(self) -> None:
        while not self._end.is_set():
            for entry in self._overtime.due(self.clock.now()):
                if not self._register.cancel(entry.task_id, entry.epoch):
                    continue  # completed in time; lazy removal
                attempts = self._register.attempts(entry.task_id)
                if attempts > self.max_retries + 1:
                    self._failure.append(
                        FaultToleranceExhausted(
                            f"sub-task {entry.task_id} failed {attempts} dispatches"
                        )
                    )
                    self._end.set()
                    self._stack.close()
                    self._finished.close()
                    return
                self.stats.faults_recovered += 1
                if self.sched.enabled:
                    self.sched.record("redistribute", entry.task_id, entry.epoch)
                self._stack.push(entry.task_id)
            time.sleep(self.poll_interval)
