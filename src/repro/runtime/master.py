"""Master part: processor-level scheduling and fault tolerance (Figs 9, 10).

Thread layout follows the paper:

- one *worker thread per slave node* services that slave's channel —
  answering idle signals with computable sub-tasks (or the end signal)
  and collecting results onto the finished sub-task stack;
- the *master scheduling thread* (the caller of :meth:`MasterPart.run`)
  drains the finished stack, updates the master DAG pattern, and pushes
  newly computable sub-tasks onto the computable stack;
- the *fault-tolerance thread* watches the master overtime queue: a
  sub-task that misses its deadline while still registered is
  unregistered and redistributed (Fig 10); a sub-task that exhausts its
  retry budget aborts the run with :class:`FaultToleranceExhausted`.

Results that arrive after their registration was cancelled carry a stale
epoch and are dropped — the register-table check of Fig 9 step h.

The fault-tolerance thread additionally hardens the paper's mechanism
(all off by default, see :class:`~repro.runtime.config.RunConfig`):

- **exponential backoff** — re-dispatch of a timed-out sub-task waits
  ``retry_backoff * 2**(attempts-1)`` seconds (capped) instead of
  re-queueing instantly, so a persistently failing resource is not
  hammered;
- **speculative re-dispatch** — a live dispatch older than a multiple of
  the observed duration quantile is cancelled and re-queued early
  (straggler mitigation); such cancels do not count against the retry
  budget;
- **blacklisting** — a worker exceeding a timeout-failure threshold stops
  receiving work and its in-flight dispatches are re-queued, degrading
  gracefully down to a single surviving worker;
- **stall watchdog** — if nothing is live and nothing progressed for
  ``stall_timeout`` seconds (every worker lost, every message dropped),
  the run aborts with a clean :class:`FaultToleranceExhausted` rather
  than hanging.

Result integrity (:mod:`repro.integrity`, ``RunConfig.integrity``) layers
silent-data-corruption defenses over the same scheduling loop:

- **digest** — every TaskAssign/TaskResult carries a canonical content
  digest; a result whose payload no longer matches is rejected at
  receive and redistributed (in-transit corruption);
- **audit** — a deterministic sample of commits is recomputed by the
  master a few commits later; a conviction revokes the committed block
  *and its committed dependent closure* (taint recompute) through
  :meth:`DAGParser.invalidate` and the journal's invalidation records;
- **vote** — every sub-task is dispatched to ``vote_k`` distinct workers
  and committed only on a digest majority, escalating one voter at a
  time on divergence (the master recomputes as arbiter when no fresh
  worker remains);
- **quarantine** — a worker convicted of divergent results too often is
  retired. Unlike the blacklist this ignores liveness: a lying worker
  still heartbeats, so only semantic conviction removes it. Quarantining
  the last worker aborts cleanly.

Note that a taint recompute legitimately commits a task twice; the
strict happens-before trace validator (``verify=True``) flags the second
commit as a duplicate, so verification and audit-mode convictions are
not meant to be combined — chaos campaigns run with ``observe`` instead.
"""

from __future__ import annotations

import heapq
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.problem import DPProblem
from repro.check.lock_lint import make_lock
from repro.check.trace_check import TraceRecorder
from repro.comm.messages import (
    BatchAssign,
    BatchResult,
    EndSignal,
    Heartbeat,
    IdleSignal,
    TaskAssign,
    TaskId,
    TaskResult,
    WorkerLeave,
)
from repro.comm.serialization import content_digest, message_nbytes
from repro.comm.shm import BlockStore
from repro.comm.transport import Channel, ChannelClosed, ChannelTimeout
from repro.dag.parser import DAGParser
from repro.dag.partition import Partition
from repro.durable.journal import CommitJournal
from repro.integrity import IntegrityPolicy, fold_commit, run_digest_hex
from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import EventRecorder
from repro.obs.schedule import ScheduleTracer
from repro.runtime.worker_pool import (
    ComputableStack,
    FinishedStack,
    LeaseTable,
    OvertimeEntry,
    OvertimeQueue,
    RegisterTable,
)
from repro.schedulers.policy import SchedulingPolicy
from repro.utils.errors import (
    FaultToleranceExhausted,
    SchedulerError,
    WorkerLeakWarning,
)


#: Sentinel returned by :meth:`MasterPart._prepare_assign` when the worker
#: was retired (blacklist/leave/quarantine) between the pop and the
#: registration re-check — distinct from None, which means "no eligible
#: task right now".
_RETIRED = object()


@dataclass
class MasterStats:
    """Counters gathered while the master ran."""

    faults_recovered: int = 0
    stale_results: int = 0
    tasks_per_worker: Dict[int, int] = field(default_factory=dict)
    messages: int = 0
    bytes_to_slaves: int = 0
    bytes_to_master: int = 0
    #: Straggler dispatches cancelled and re-queued before their timeout.
    speculative_redispatches: int = 0
    #: Workers retired for exceeding the failure threshold, in order.
    blacklisted_workers: List[int] = field(default_factory=list)
    #: Service/fault-tolerance threads that outlived their join timeout.
    worker_leaks: int = 0
    #: Compacted journal checkpoints written during the run.
    checkpoints: int = 0
    #: Sub-tasks skipped on resume because the journal already held them.
    resumed_commits: int = 0
    #: Dispatches cancelled because their liveness lease expired.
    lease_expirations: int = 0
    #: Workers that joined mid-run (elastic membership).
    workers_joined: int = 0
    #: Workers that left cleanly mid-run (WorkerLeave).
    workers_left: int = 0
    #: TaskResults whose payload failed receive-side digest verification.
    digest_rejects: int = 0
    #: Sampled audit recomputes that matched the committed outputs.
    audits_passed: int = 0
    #: Sampled audit recomputes that convicted a committed block.
    audits_convicted: int = 0
    #: Commits revoked for recompute by taint invalidation (closures
    #: included — one conviction may revoke many commits).
    tainted_recomputes: int = 0
    #: Votes recorded in ``integrity='vote'`` mode (arbiter included).
    votes_cast: int = 0
    #: Vote rounds that ended without a strict majority and escalated.
    vote_divergences: int = 0
    #: Workers retired for divergent results (SDC quarantine), in order.
    quarantined_workers: List[int] = field(default_factory=list)
    #: Rolling run digest (hex) after the last commit; None when
    #: integrity is off.
    run_digest: Optional[str] = None
    #: Journal write failures absorbed by the retry/rescue ladder
    #: (``RunConfig.journal_degrade``) without aborting the run.
    journal_errors_absorbed: int = 0
    #: True when a journal write failure degraded the run to
    #: in-memory-only (``journal_degrade="memory"``): the result is still
    #: correct but the run is no longer crash-resumable.
    journal_degraded: bool = False


class MasterPart:
    """Processor-level scheduler over a set of slave channels."""

    def __init__(
        self,
        problem: DPProblem,
        partition: Partition,
        channels: Sequence[Channel],
        policy: SchedulingPolicy,
        *,
        task_timeout: float = 30.0,
        max_retries: int = 3,
        poll_interval: float = 0.02,
        retry_backoff: float = 0.0,
        retry_backoff_max: float = 2.0,
        speculate: bool = False,
        speculative_factor: float = 2.0,
        speculative_quantile: float = 0.95,
        blacklist_threshold: Optional[int] = None,
        stall_timeout: Optional[float] = None,
        verify: bool = False,
        tracer: Optional[TraceRecorder] = None,
        clock: Optional[Clock] = None,
        obs: Optional[EventRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        journal: Optional[CommitJournal] = None,
        completed: Optional[Dict[TaskId, int]] = None,
        initial_state: Optional[Dict[str, np.ndarray]] = None,
        attempts: Optional[Dict[TaskId, int]] = None,
        heartbeat_interval: Optional[float] = None,
        lease_factor: float = 3.0,
        integrity: str = "digest",
        audit_fraction: float = 0.125,
        vote_k: int = 2,
        quarantine_threshold: int = 2,
        run_digest: Optional[str] = None,
        commit_digests: Optional[Dict[TaskId, Optional[str]]] = None,
        batch_wave: bool = False,
        max_batch: int = 8,
        block_store: Optional[BlockStore] = None,
        job_id: Optional[str] = None,
    ) -> None:
        if not channels:
            raise SchedulerError("master needs at least one slave channel")
        if policy.n_workers != len(channels):
            raise SchedulerError(
                f"policy sized for {policy.n_workers} workers but {len(channels)} slaves given"
            )
        self.problem = problem
        self.partition = partition
        self.channels = list(channels)
        self.policy = policy
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.poll_interval = poll_interval
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.speculate = speculate
        self.speculative_factor = speculative_factor
        self.speculative_quantile = speculative_quantile
        self.blacklist_threshold = blacklist_threshold
        self.stall_timeout = (
            stall_timeout if stall_timeout is not None else 2.0 * task_timeout + 1.0
        )
        #: Batched wavefront dispatch (``RunConfig.batch_wave``): answer an
        #: idle announcement with up to ``max_batch`` computable sub-tasks
        #: in ONE BatchAssign envelope. Each sub-task is registered,
        #: leased, overtime-watched, and digest-stamped individually, so
        #: retry/lease/journal semantics are unchanged — only the message
        #: count (the α term) is amortized.
        self.batch_wave = batch_wave
        self.max_batch = max(1, int(max_batch))
        #: Shared-memory block store of the zero-copy data plane (processes
        #: backend with ``RunConfig.shm``; None elsewhere). The master
        #: releases a task's parked segments whenever its dispatch settles
        #: — commit, requeue, worker retirement — and sweeps the rest at
        #: teardown, so undelivered assigns never leak segments.
        self.block_store = block_store
        #: Run identity within a multi-run process (``RunConfig.run_id``;
        #: the serve daemon sets it to the job id). Stamped onto every
        #: :class:`FaultToleranceExhausted` this master raises and onto
        #: the ``abort`` telemetry event, so multi-job traces and
        #: ``repro stats`` attribute aborts to the right tenant.
        self.job_id = job_id

        self.verify = verify
        #: Unified scheduling instrumentation: the happens-before trace
        #: (``verify``), the telemetry event stream (``obs``), and the
        #: injected clock — see :mod:`repro.obs.schedule`.
        self.sched = ScheduleTracer(
            clock=clock, verify=verify, trace=tracer, obs=obs, node=-1, scope="task"
        )
        self.clock = self.sched.clock
        self.metrics = metrics

        self.state: Dict[str, np.ndarray] = {}
        self.stats = MasterStats()
        self._state_lock = make_lock("master.state")
        self._results_lock = make_lock("master.results")
        #: task -> (outputs, epoch, worker_id, digest) awaiting commit.
        self._result_buffer: Dict[TaskId, tuple] = {}
        #: task -> clock reading when it became dispatchable (pushed on
        #: the computable stack); consumed at assign time to emit the
        #: ``queue-wait`` profiling span. Only stamped while observing.
        self._ready_at: Dict[TaskId, float] = {}
        self._stack = ComputableStack(
            depth_observer=self._make_depth_observer(),
            push_observer=self._note_ready if self.sched.observing else None,
        )
        self._finished = FinishedStack()
        self._overtime = OvertimeQueue()
        self._register = RegisterTable()
        self._end = threading.Event()
        self._failure: List[BaseException] = []
        #: Workers retired from service; read by the per-slave threads
        #: (set-membership only), mutated only by the fault-tolerance
        #: thread — safe without a lock under the GIL.
        self._blacklisted: set = set()
        self._worker_failures: Dict[int, int] = {}
        #: Last wall-clock moment each worker was heard from (any message).
        #: The blacklist consults this as a liveness oracle: a worker that
        #: keeps announcing itself is alive, and its timeouts are message
        #: loss — blacklisting is reserved for workers that went silent.
        self._last_heard: Dict[int, float] = {}
        #: Per-task count of cancels that do NOT charge the retry budget
        #: (speculation, blacklist evictions) — the exhaustion check uses
        #: ``attempts - exempt``.
        self._budget_exempt: Dict[TaskId, int] = {}
        #: Tasks already speculated once (speculation is capped at one
        #: early re-dispatch per task).
        self._speculated: set = set()
        #: Completed compute durations (seconds) feeding the speculation
        #: quantile. Appends are GIL-atomic; the scanner copies.
        self._durations: List[float] = []
        #: Clock reading of the last dispatch or accepted result; the
        #: stall watchdog aborts when this goes quiet too long. Float
        #: assignment is GIL-atomic.
        self._last_progress: float = self.clock.now()

        #: Write-ahead commit journal (:mod:`repro.durable`); every commit
        #: is journaled *before* it merges into state, so a master crash
        #: at any point loses at most the in-flight (uncommitted) work.
        #: Usually a :class:`~repro.durable.degrade.JournalGuard` (the
        #: backends wrap it), but a bare :class:`CommitJournal` works too
        #: — the rescue binding below is then simply skipped.
        self.journal = journal
        bind_rescue = getattr(journal, "bind_rescue", None)
        if bind_rescue is not None:
            # ``journal_degrade="checkpoint"``: a failed record write may
            # be rescued by compacting the journal around a full state
            # checkpoint, which needs this master's state snapshot.
            bind_rescue(self._write_checkpoint)
        #: task -> epoch of commits recovered from a journal (resume);
        #: these are replayed into the DAG parser, never re-dispatched.
        self._prior_commits: Dict[TaskId, int] = dict(completed) if completed else {}
        self._initial_state = initial_state
        if attempts:
            # Retry budgets continue across the crash: epochs must outpace
            # any result a surviving slave still holds from before it.
            self._register.prime(attempts)
        #: All commits of this run, prior + live (checkpoints persist it).
        self._committed: Dict[TaskId, int] = dict(self._prior_commits)

        #: Heartbeat/lease liveness (None = the paper's inference-only
        #: liveness): leases span ``heartbeat_interval * lease_factor``
        #: and are renewed by *any* message from the holding worker.
        self._lease_duration: Optional[float] = (
            None if heartbeat_interval is None else heartbeat_interval * lease_factor
        )
        self._leases = LeaseTable()

        #: Result-integrity policy (:mod:`repro.integrity`): receive-side
        #: digest verification plus the audit/vote SDC defenses.
        self.integrity = IntegrityPolicy(
            mode=integrity,
            audit_fraction=audit_fraction,
            vote_k=vote_k,
            quarantine_threshold=quarantine_threshold,
        )
        self._digest_on = self.integrity.digest_on
        #: Rolling run digest: an order-independent fold over every live
        #: commit's ``(task_id, outputs digest)``, continued from the
        #: journal on resume. Only maintained when digests are on — the
        #: disabled path computes no hashes at all.
        self._run_digest_acc: int = int(run_digest, 16) if run_digest else 0
        #: task -> outputs digest of every folded commit, needed to fold a
        #: taint invalidation back *out* and persisted in checkpoints.
        self._commit_digests: Dict[TaskId, Optional[str]] = (
            dict(commit_digests) if commit_digests else {}
        )
        #: TaskResults that passed receive-side digest verification
        #: (guarded by ``_results_lock`` — service threads share it).
        self._digests_verified = 0
        #: Deferred audit queue: ``(commit_count, task, epoch, worker,
        #: outputs)``. Audits deliberately lag a few commits behind
        #: (:data:`_AUDIT_LAG`) so a conviction exercises closure
        #: invalidation, not just the convicted block.
        self._audit_pending: List[tuple] = []
        self._commit_count = 0
        #: Vote ledger (``integrity='vote'``): task -> worker ->
        #: ``(digest, outputs, epoch)``. Worker -1 is the master's own
        #: arbiter recompute. Scheduling-thread only.
        self._votes: Dict[TaskId, Dict[int, tuple]] = {}
        #: Votes a task needs before tallying (escalates on divergence).
        self._vote_need: Dict[TaskId, int] = {}
        #: Per-worker count of convicted divergences (audit convictions
        #: and losing vote minorities) feeding the quarantine threshold.
        self._divergence: Dict[int, int] = {}
        #: Workers retired for divergent results. Distinct from the
        #: blacklist: the blacklist needs silence (its liveness oracle
        #: protects anything that still heartbeats), while a lying worker
        #: is perfectly alive — only semantic conviction lands here.
        self._quarantined: set = set()

        #: Elastic membership: workers that announced a clean departure
        #: (WorkerLeave) — mutated by service threads, set-membership reads
        #: are GIL-safe like ``_blacklisted``.
        self._left: set = set()
        #: Service threads for workers attached mid-run; guarded by the
        #: membership lock together with ``channels`` growth.
        self._extra_threads: List[threading.Thread] = []
        self._membership_lock = make_lock("master.membership")

    @property
    def tracer(self) -> Optional[TraceRecorder]:
        """The happens-before trace recorder (None unless verifying or
        injected) — kept for callers of the pre-obs API."""
        return self.sched.trace

    def _make_depth_observer(self):
        """Queue-depth instrumentation for the computable stack (None —
        hence zero per-push cost — unless metrics are on)."""
        if self.metrics is None:
            return None
        gauge = self.metrics.gauge("master.queue_depth")
        hist = self.metrics.histogram("master.queue_depth_hist")

        def observe(depth: int) -> None:
            gauge.set(depth)
            hist.observe(depth)

        return observe

    def _note_ready(self, task_id: TaskId) -> None:
        """Stamp the instant a task became dispatchable (stack push).

        Consumed at assign time to emit the ``queue-wait`` span; only
        wired as the stack's push observer while observing, so the
        disabled path takes no stamps and keeps no table.
        """
        self._ready_at[task_id] = self.clock.now()

    def _release_blocks(self, task_id: TaskId) -> None:
        """Unlink the shm segments parked for a settled dispatch (no-op
        without a block store). Called before any re-queue push, so a
        fresh dispatch can never park new segments that this release
        would then tear out from under it."""
        if self.block_store is not None:
            self.block_store.release_owner(task_id)

    def _timed_digest(
        self, payload, task_id: TaskId, epoch: int, worker_id: int, hop: str
    ):
        """``content_digest`` plus a ``digest-compute`` span when observing."""
        if not self.sched.observing:
            return content_digest(payload)
        t0 = self.clock.now()
        digest = content_digest(payload)
        t1 = self.clock.now()
        self.sched.record(
            "digest-compute", task_id, epoch, worker_id, ts=t1, t0=t0, t1=t1, hop=hop
        )
        return digest

    # -- public entry ----------------------------------------------------------

    def run(self) -> Dict[str, np.ndarray]:
        """Execute the whole schedule; returns the completed global state."""
        self.state = (
            self.problem.make_state()
            if self._initial_state is None
            else self._initial_state
        )
        parser = DAGParser(self.partition.abstract)
        if self._prior_commits:
            self._replay_prior_commits(parser)
        self._stack.push_many(parser.computable())

        workers = [
            threading.Thread(
                target=self._serve_slave, args=(k,), daemon=True, name=f"master-worker{k}"
            )
            for k in range(len(self.channels))
        ]
        ft = threading.Thread(target=self._fault_tolerance, daemon=True, name="master-ft")
        for t in workers:
            t.start()
        ft.start()

        try:
            # Master scheduling thread (Fig 9 steps c & h). The loop only
            # ends once the parser is drained AND every deferred audit ran
            # — a late conviction re-opens the parser via taint recompute.
            while True:
                if self._failure:
                    break
                if self._audit_pending:
                    self._run_due_audits(parser, force=parser.is_done())
                    if self._failure:
                        break
                if parser.is_done() and not self._audit_pending:
                    break
                task_id = self._finished.pop(timeout=self.poll_interval)
                if task_id is None:
                    continue
                with self._results_lock:
                    entry = self._result_buffer.pop(task_id, None)
                if entry is None:
                    continue  # purged by a taint invalidation while queued
                outputs, epoch, worker_id, digest = entry
                if task_id in self._committed:
                    continue  # late duplicate of an already-committed task
                if self.integrity.vote_on:
                    decision = self._record_vote(
                        task_id, outputs, epoch, worker_id, digest
                    )
                    if decision is None:
                        continue  # quorum not reached yet
                    outputs, epoch, worker_id, digest = decision
                    if self._failure:
                        break  # the deciding tally quarantined the pool
                self._commit(parser, task_id, outputs, epoch, worker_id, digest)
            if self.journal is not None and not self._failure and parser.is_done():
                self.journal.end(
                    run_digest=run_digest_hex(self._run_digest_acc)
                    if self._digest_on
                    else None
                )
        finally:
            # Fig 9 step i: tear down pools and signal every slave to end.
            self._end.set()
            self._stack.close()
            self._finished.close()
            if self.journal is not None:
                self.journal.close()
            with self._membership_lock:
                channels = list(self.channels)
                workers = [*workers, *self._extra_threads]
            for t in workers:
                t.join(timeout=10.0)
            ft.join(timeout=10.0)
            self._surface_leaks([*workers, ft])
            if self.journal is not None:
                self.stats.journal_degraded = bool(
                    getattr(self.journal, "degraded", False)
                )
                self.stats.journal_errors_absorbed = int(
                    getattr(self.journal, "errors_absorbed", 0)
                )
            if self.block_store is not None:
                # Backstop for segments whose dispatch never settled (e.g.
                # an abort mid-wave); the processes backend additionally
                # prefix-sweeps /dev/shm after the slaves exit.
                self.block_store.sweep()
            for ch in channels:
                self.stats.messages += ch.sent_messages + ch.received_messages
                self.stats.bytes_to_slaves += ch.sent_bytes
                self.stats.bytes_to_master += ch.received_bytes
            if self._digest_on:
                self.stats.run_digest = run_digest_hex(self._run_digest_acc)
            if self.metrics is not None:
                self._publish_metrics()
        if self._failure:
            raise self._failure[0]
        self.sched.check(
            self.partition.abstract, title=f"master-trace({self.problem.name})"
        )
        return self.state

    def _replay_prior_commits(self, parser: DAGParser) -> None:
        """Prime the DAG parser (and the happens-before trace) with the
        commits recovered from the journal.

        The committed set is downward-closed — a task only commits after
        its predecessors — so completing it in topological order never
        hits a blocked vertex. The trace gets synthetic commit records
        (the telemetry stream does NOT: resume invariants distinguish
        journaled commits from live ones) so the validator sees resumed
        tasks' dependencies as satisfied.
        """
        for task_id in self.partition.abstract.topological_order():
            if task_id not in self._prior_commits:
                continue
            parser.complete(task_id)
            if self.sched.trace is not None:
                self.sched.trace.record(
                    "commit", task_id, self._prior_commits[task_id], -1, self.clock.now()
                )
        self.stats.resumed_commits = len(self._prior_commits)
        if self.sched.observing:
            self.sched.record(
                "resume", None, -1, n_committed=len(self._prior_commits)
            )

    def _write_checkpoint(self) -> None:
        """Compact the journal around a snapshot of the committed state."""
        assert self.journal is not None
        with self._state_lock:
            snapshot = {k: np.array(v, copy=True) for k, v in self.state.items()}
        t0 = self.clock.now() if self.sched.observing else 0.0
        nbytes = self.journal.checkpoint(
            snapshot,
            self._committed,
            self._register.attempts_snapshot(),
            run_digest=run_digest_hex(self._run_digest_acc) if self._digest_on else None,
            commit_digests=dict(self._commit_digests) if self._digest_on else None,
        )
        self.stats.checkpoints += 1
        if self.sched.observing:
            t1 = self.clock.now()
            self.sched.record(
                "checkpoint", None, -1, ts=t1, t0=t0, t1=t1,
                n_committed=len(self._committed), nbytes=nbytes,
            )

    # -- result integrity (digest / audit / vote / taint recompute) --------------------

    #: Commits an enqueued audit waits for before running, so convicted
    #: blocks usually have committed dependents and the taint closure is
    #: exercised. Audits still drain fully before the run ends.
    _AUDIT_LAG = 4

    def _commit(
        self,
        parser: DAGParser,
        task_id: TaskId,
        outputs,
        epoch: int,
        worker_id: int,
        digest: Optional[str],
    ) -> None:
        """Journal, merge, and fold one accepted result (scheduling thread)."""
        if self.journal is not None:
            # Write-ahead: the journal record lands (and fsyncs) before
            # the state merge, so a crash between the two replays this
            # commit instead of losing it.
            if self.sched.observing:
                j0 = self.clock.now()
                jbytes = self.journal.commit(task_id, epoch, outputs, digest=digest)
                j1 = self.clock.now()
                self.sched.record(
                    "journal-write", task_id, epoch,
                    ts=j1, t0=j0, t1=j1, nbytes=jbytes,
                )
            else:
                self.journal.commit(task_id, epoch, outputs, digest=digest)
        with self._state_lock:
            self.problem.apply_result(self.state, self.partition, task_id, outputs)
        self._committed[task_id] = epoch
        self._release_blocks(task_id)
        if self._digest_on:
            self._run_digest_acc = fold_commit(self._run_digest_acc, task_id, digest)
            self._commit_digests[task_id] = digest
        if self.sched.enabled:
            # Recorded before push_many so a successor's "assign" always
            # serializes after its dependencies' commits.
            self.sched.record("commit", task_id, epoch)
        self._commit_count += 1
        if self.integrity.audit_on and self.integrity.should_audit(task_id):
            self._audit_pending.append(
                (self._commit_count, task_id, epoch, worker_id, outputs)
            )
        self._stack.push_many(parser.complete(task_id))
        if self.journal is not None and self.journal.should_checkpoint():
            self._write_checkpoint()

    def _run_due_audits(self, parser: DAGParser, force: bool) -> None:
        """Run every pending audit old enough (all of them when forced)."""
        while self._audit_pending and not self._failure:
            stamped, task_id, epoch, worker_id, outputs = self._audit_pending[0]
            if not force and self._commit_count - stamped < self._AUDIT_LAG:
                return
            self._audit_pending.pop(0)
            if self._committed.get(task_id) != epoch:
                continue  # already revoked by an earlier conviction's closure
            self._audit_one(parser, task_id, epoch, worker_id, outputs)

    def _audit_one(
        self, parser: DAGParser, task_id: TaskId, epoch: int, worker_id: int, outputs
    ) -> None:
        """Recompute one committed block and convict on mismatch.

        The inputs re-extracted here are the committed predecessor blocks
        — a successor never overwrites them — so the recompute sees what
        the worker saw. A lying *predecessor* makes both sides agree and
        is caught by its own audit, not this one.
        """
        expected = self._recompute(task_id)
        expected_digest = self._timed_digest(expected, task_id, epoch, worker_id, "audit")
        got_digest = self._timed_digest(outputs, task_id, epoch, worker_id, "audit")
        if expected_digest == got_digest:
            self.stats.audits_passed += 1
            if self.sched.observing:
                self.sched.record("audit-pass", task_id, epoch, worker_id)
            return
        self.stats.audits_convicted += 1
        if self.sched.observing:
            self.sched.record("audit-convict", task_id, epoch, worker_id)
        self._taint_invalidate(parser, task_id)
        self._note_divergence(worker_id)

    def _recompute(self, task_id: TaskId):
        """The master's own serial evaluation of one sub-task, from the
        current committed state, as a single monolithic inner block (the
        outputs are partition-invariant, so the cheapest shape wins)."""
        with self._state_lock:
            inputs = self.problem.extract_inputs(self.state, self.partition, task_id)
        evaluator = self.problem.evaluator(self.partition, task_id, inputs)
        rows, cols = self.partition.block_ranges(task_id)
        inner = self.partition.sub_partition(task_id, (len(rows), len(cols)))
        return evaluator.run_serial(inner)

    def _taint_invalidate(self, parser: DAGParser, root: TaskId) -> None:
        """Revoke a convicted commit and its committed dependent closure.

        Durable first: the journal's invalidation record lands before any
        in-memory rewind, so a crash mid-taint resumes post-invalidation
        and recomputes the closure. The parser then re-opens the revoked
        region; live dispatches and queued results built on tainted
        inputs are cancelled/purged budget-free.
        """
        pattern = self.partition.abstract
        tainted = {root}
        frontier = [root]
        while frontier:
            vid = frontier.pop()
            for succ in pattern.successors(vid):
                if succ not in tainted and succ in self._committed:
                    tainted.add(succ)
                    frontier.append(succ)
        order = [vid for vid in pattern.topological_order() if vid in tainted]
        if self.journal is not None:
            self.journal.invalidate(order)
        for vid in order:
            epoch = self._committed.pop(vid)
            self.stats.tainted_recomputes += 1
            if self._digest_on:
                # XOR the revoked commit's contribution back out of the
                # rolling run digest.
                self._run_digest_acc = fold_commit(
                    self._run_digest_acc, vid, self._commit_digests.pop(vid, None)
                )
            if self.sched.observing:
                self.sched.record(
                    "taint-invalidate", vid, epoch, root=repr(root), n_tainted=len(order)
                )
        # Live dispatches whose inputs came from a tainted block computed
        # on revoked data: cancel budget-free, like a blacklist eviction.
        for task_id, reg in self._register.live_snapshot():
            if not any(p in tainted for p in pattern.predecessors(task_id)):
                continue
            if not self._register.cancel(task_id, reg.epoch):
                continue
            self._leases.drop(task_id, reg.epoch)
            self._release_blocks(task_id)
            self._budget_exempt[task_id] = self._budget_exempt.get(task_id, 0) + 1
            if self.sched.enabled:
                self.sched.record("redistribute", task_id, reg.epoch)
        # Queued-but-uncommitted results and half-gathered votes that
        # consumed tainted inputs are stale too.
        with self._results_lock:
            for task_id in list(self._result_buffer):
                if any(p in tainted for p in pattern.predecessors(task_id)):
                    del self._result_buffer[task_id]
        for task_id in list(self._votes):
            if any(p in tainted for p in pattern.predecessors(task_id)):
                self._votes.pop(task_id)
                self._vote_need.pop(task_id, None)
        recompute_frontier = parser.invalidate(order)
        # Stacked tasks whose predecessor was just revoked are no longer
        # computable; drop them — they re-surface as the closure recommits.
        self._stack.retain(
            lambda t: all(p in self._committed for p in pattern.predecessors(t))
        )
        self._stack.push_many(recompute_frontier)

    # -- duplicate-dispatch voting -----------------------------------------------------

    def _record_vote(
        self, task_id: TaskId, outputs, epoch: int, worker_id: int, digest: Optional[str]
    ) -> Optional[tuple]:
        """Record one worker's result as a vote; returns the winning
        ``(outputs, epoch, worker, digest)`` once a quorum decides, else
        None (the task was re-queued for another voter)."""
        if digest is None:
            digest = self._timed_digest(outputs, task_id, epoch, worker_id, "vote")
        votes = self._votes.setdefault(task_id, {})
        votes[worker_id] = (digest, outputs, epoch)
        self.stats.votes_cast += 1
        if self.sched.observing:
            self.sched.record("vote-cast", task_id, epoch, worker_id, n_votes=len(votes))
        return self._tally_votes(task_id)

    def _tally_votes(self, task_id: TaskId) -> Optional[tuple]:
        votes = self._votes[task_id]
        need = self._vote_need.get(task_id, self.integrity.vote_k)
        if len(votes) >= need:
            counts: Dict[str, int] = {}
            for d, _, _ in votes.values():
                counts[d] = counts.get(d, 0) + 1
            winner, top = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
            if top * 2 > len(votes):
                return self._decide_vote(task_id, winner)
            if -1 in votes:
                # Even the master's arbiter recompute found no majority
                # (every voter lied differently); the arbiter is ground
                # truth by construction — decide by it.
                return self._decide_vote(task_id, votes[-1][0])
            self.stats.vote_divergences += 1
            if self.sched.observing:
                self.sched.record("vote-divergence", task_id, -1, n_votes=len(votes))
            self._vote_need[task_id] = len(votes) + 1
        # Solicit one more vote from a worker that has not voted yet and
        # may actually take the task (a static policy pins each task to
        # one owner, so voting there degenerates to master arbitration).
        eligible = [
            k
            for k in range(len(self.channels))
            if k not in self._blacklisted
            and k not in self._left
            and k not in self._quarantined
            and k not in votes
            and self.policy.eligible(k, task_id)
        ]
        if eligible:
            self._budget_exempt[task_id] = self._budget_exempt.get(task_id, 0) + 1
            if self.sched.enabled:
                self.sched.record("redistribute", task_id, max(v[2] for v in votes.values()))
            self._stack.push(task_id)
            return None
        # No fresh worker can break the tie: the master evaluates the
        # block itself and casts the arbiter vote as worker -1.
        outputs = self._recompute(task_id)
        arbiter_epoch = max(v[2] for v in votes.values())
        return self._record_vote(task_id, outputs, arbiter_epoch, -1, None)

    def _decide_vote(self, task_id: TaskId, winner: str) -> tuple:
        votes = self._votes.pop(task_id)
        self._vote_need.pop(task_id, None)
        for wid, (d, _, _) in votes.items():
            if d != winner:
                self._note_divergence(wid)
        for wid, (d, outputs, epoch) in sorted(votes.items()):
            if d == winner:
                return (outputs, epoch, wid, d)
        raise SchedulerError(f"vote for {task_id!r} decided on a digest nobody cast")

    def _note_divergence(self, worker_id: int) -> None:
        """Attribute one convicted divergence; quarantine past the
        threshold. No degradation floor here — a lying last worker is
        strictly worse than a clean abort."""
        if worker_id < 0:
            return  # the master's own arbiter/audit recompute
        n = self._divergence.get(worker_id, 0) + 1
        self._divergence[worker_id] = n
        if worker_id in self._quarantined or n < self.integrity.quarantine_threshold:
            return
        self._quarantined.add(worker_id)
        self.stats.quarantined_workers.append(worker_id)
        if self.sched.observing:
            self.sched.record("quarantine", None, -1, worker_id, divergences=n)
        self._requeue_worker_tasks(worker_id)
        retired = self._blacklisted | self._left | self._quarantined
        if len(retired) >= len(self.channels):
            self._abort(
                FaultToleranceExhausted(
                    "every worker quarantined for divergent results "
                    f"(last: worker {worker_id} after {n} convictions)"
                )
            )

    def _surface_leaks(self, threads: Sequence[threading.Thread]) -> None:
        """Warn about (and count) threads that outlived their join timeout.

        The join results used to be silently discarded; a hung service
        thread now produces a :class:`WorkerLeakWarning`, a ``worker-leak``
        telemetry event, and a nonzero ``stats.worker_leaks``.
        """
        for t in threads:
            if not t.is_alive():
                continue
            self.stats.worker_leaks += 1
            warnings.warn(
                f"master thread {t.name!r} did not exit within its join "
                "timeout and was abandoned (daemon)",
                WorkerLeakWarning,
                stacklevel=3,
            )
            if self.sched.observing:
                self.sched.record("worker-leak", None, -1, thread=t.name)

    def _publish_metrics(self) -> None:
        """Fold end-of-run counters into the metrics registry."""
        assert self.metrics is not None
        for ch in self.channels:
            ch.publish_metrics(self.metrics)
        self.metrics.counter("master.faults_recovered").inc(self.stats.faults_recovered)
        self.metrics.counter("master.stale_results").inc(self.stats.stale_results)
        self.metrics.counter("master.speculative_redispatches").inc(
            self.stats.speculative_redispatches
        )
        self.metrics.counter("master.blacklisted_workers").inc(
            len(self.stats.blacklisted_workers)
        )
        self.metrics.counter("master.worker_leaks").inc(self.stats.worker_leaks)
        for worker_id, n in sorted(self.stats.tasks_per_worker.items()):
            self.metrics.counter("master.tasks_completed", worker=worker_id).inc(n)
        if self._digest_on:
            # Integrity counters exist only when integrity is on, so the
            # disabled path stays metric-free (zero-cost invariant).
            self.metrics.counter("integrity.digests_verified").inc(self._digests_verified)
            self.metrics.counter("integrity.digest_rejects").inc(self.stats.digest_rejects)
            self.metrics.counter("integrity.audits_passed").inc(self.stats.audits_passed)
            self.metrics.counter("integrity.audits_convicted").inc(
                self.stats.audits_convicted
            )
            self.metrics.counter("integrity.tainted_recomputes").inc(
                self.stats.tainted_recomputes
            )
            self.metrics.counter("integrity.votes_cast").inc(self.stats.votes_cast)
            self.metrics.counter("integrity.vote_divergences").inc(
                self.stats.vote_divergences
            )
            self.metrics.counter("integrity.quarantined_workers").inc(
                len(self.stats.quarantined_workers)
            )

    # -- per-slave worker thread (Fig 9 steps d-f) ------------------------------------

    def _prepare_assign(self, worker_id: int, block: bool):
        """Pop one eligible task and build its fully-dressed TaskAssign.

        "Fully dressed" means everything a single dispatch gets: a fresh
        registration epoch, the queue-wait/assign records, the overtime
        entry, the lease, the extracted inputs, and the content digest —
        batching amortizes only the envelope, never the semantics.

        Returns the assign; None when no task is currently eligible
        (``block=False`` polls, ``block=True`` waits for work or close);
        or :data:`_RETIRED` when the worker was retired during the pop.
        """
        task_id = self._stack.pop_eligible(
            worker_id, self.policy, timeout=None if block else 0
        )
        if task_id is None:
            return None
        epoch = self._register.register(task_id, worker_id, self.clock.now())
        if (
            worker_id in self._blacklisted
            or worker_id in self._left
            or worker_id in self._quarantined
        ):
            # Retired while we were popping: registering first and
            # re-checking closes the race with the eviction scan —
            # whichever side wins the cancel re-queues the task exactly
            # once, and this worker never runs it (the
            # no-commit-after-blacklist invariant).
            if self._register.cancel(task_id, epoch):
                self._stack.push(task_id)
            return _RETIRED
        if self.sched.observing:
            # queue-wait span first, so the task's "assign" (which
            # closes the wait) serializes after it in the stream.
            now = self.clock.now()
            ready_at = self._ready_at.pop(task_id, None)
            if ready_at is not None:
                self.sched.record(
                    "queue-wait", task_id, epoch, worker_id,
                    ts=now, t0=ready_at, t1=now,
                )
        if self.sched.enabled:
            self.sched.record("assign", task_id, epoch, worker_id)
        with self._state_lock:
            inputs = self.problem.extract_inputs(self.state, self.partition, task_id)
        self._overtime.push(
            OvertimeEntry(
                deadline=self.clock.now() + self.task_timeout,
                task_id=task_id,
                epoch=epoch,
            )
        )
        lease = 0.0
        if self._lease_duration is not None:
            lease = self._lease_duration
            self._leases.grant(task_id, epoch, worker_id, self.clock.now(), lease)
        return TaskAssign(
            task_id=task_id,
            epoch=epoch,
            inputs=inputs,
            lease=lease,
            digest=(
                self._timed_digest(inputs, task_id, epoch, worker_id, "assign")
                if self._digest_on
                else None
            ),
        )

    def _unwind_assign(self, assign: TaskAssign) -> None:
        """Undo one prepared-but-never-sent assign (mid-gather retirement):
        cancel its registration, drop its lease, and re-queue the task
        budget-free — the task did nothing wrong, its wave fell apart."""
        if not self._register.cancel(assign.task_id, assign.epoch):
            return
        self._leases.drop(assign.task_id, assign.epoch)
        self._budget_exempt[assign.task_id] = (
            self._budget_exempt.get(assign.task_id, 0) + 1
        )
        if self.sched.enabled:
            self.sched.record("redistribute", assign.task_id, assign.epoch)
        self._stack.push(assign.task_id)

    def _gather_wave(self, worker_id: int, first: TaskAssign):
        """Grow one dispatch into a whole computable wave (``batch_wave``).

        Non-blocking pops drain whatever is computable *right now*, up to
        ``max_batch`` — the anti-diagonal the DAG currently exposes to
        this worker. Returns a BatchAssign (single-task waves still ship
        as a batch so the wire shape is knob-determined, not size-
        determined), or None when the worker was retired mid-gather and
        the whole wave was unwound.
        """
        t0 = self.clock.now() if self.sched.observing else 0.0
        assigns = [first]
        while len(assigns) < self.max_batch:
            nxt = self._prepare_assign(worker_id, block=False)
            if nxt is None:
                break
            if nxt is _RETIRED:
                for a in assigns:
                    self._unwind_assign(a)
                return None
            assigns.append(nxt)
        if self.sched.observing:
            t1 = self.clock.now()
            self.sched.record(
                "batch-assemble", None, -1, worker_id,
                ts=t1, t0=t0, t1=t1, n_tasks=len(assigns),
            )
        return BatchAssign(assigns=tuple(assigns))

    def _serve_slave(self, worker_id: int) -> None:
        channel = self.channels[worker_id]
        ended = False
        while not (self._end.is_set() and ended):
            try:
                msg = channel.recv(timeout=self.poll_interval)
            except ChannelTimeout:
                if self._end.is_set():
                    # The slave is quiet (possibly hung); deliver the end
                    # signal on our way out so a live slave can exit.
                    self._try_send_end(channel)
                    return
                continue
            except ChannelClosed:
                return
            now = self.clock.now()
            self._last_heard[worker_id] = now
            if self._lease_duration is not None:
                # Any message from a worker proves liveness: renew every
                # lease it holds (heartbeats are just the guaranteed-
                # periodic case of this).
                self._leases.renew_worker(worker_id, now, self._lease_duration)
            if isinstance(msg, Heartbeat):
                if self.sched.observing:
                    self.sched.record("heartbeat", msg.task_id, msg.epoch, worker_id)
                continue
            if isinstance(msg, WorkerLeave):
                # Elastic departure: retire the worker, re-queue its
                # in-flight work budget-free, and let it exit cleanly.
                self._detach_worker(worker_id)
                self._try_send_end(channel)
                ended = True
                continue
            if isinstance(msg, IdleSignal):
                if (
                    worker_id in self._blacklisted
                    or worker_id in self._left
                    or worker_id in self._quarantined
                ):
                    # Retired worker: no further assignments; let it exit.
                    self._try_send_end(channel)
                    ended = True
                    continue
                if any(
                    reg.worker_id == worker_id
                    for _, reg in self._register.live_snapshot()
                ):
                    # Duplicate idle announcement (slaves re-announce when
                    # a reply is slow or lost) while this worker still owns
                    # a live dispatch. Admitting it would backlog the
                    # worker and turn one slow reply into a timeout storm;
                    # swallow it instead — either the dispatch resolves or
                    # the overtime check cancels it, and the next
                    # announcement is admitted.
                    continue
                first = self._prepare_assign(worker_id, block=True)
                if first is None or first is _RETIRED:
                    # Pool closed (end of schedule) or the worker retired
                    # mid-pop; either way this worker gets no more work.
                    self._try_send_end(channel)
                    ended = True
                    continue
                outgoing = (
                    self._gather_wave(worker_id, first) if self.batch_wave else first
                )
                if outgoing is None:
                    # Retired mid-gather; the whole wave was unwound.
                    self._try_send_end(channel)
                    ended = True
                    continue
                self._last_progress = self.clock.now()
                try:
                    channel.send(outgoing)
                except ChannelClosed:
                    return
                if self.sched.observing:
                    parts = (
                        outgoing.assigns
                        if isinstance(outgoing, BatchAssign)
                        else (outgoing,)
                    )
                    for a in parts:
                        self.sched.record(
                            "send", a.task_id, a.epoch, worker_id,
                            nbytes=message_nbytes(a),
                        )
            elif isinstance(msg, BatchResult):
                for part in msg.results:
                    if not self._handle_result(part, worker_id):
                        return
            elif isinstance(msg, TaskResult):
                if not self._handle_result(msg, worker_id):
                    return

    def _handle_result(self, msg: TaskResult, worker_id: int) -> bool:
        """Verify and buffer one TaskResult (possibly one element of a
        BatchResult envelope — identical semantics either way). Returns
        False when the run was aborted by a budget-exhausted reject."""
        if (
            self._digest_on
            and msg.digest is not None
            and self._timed_digest(
                msg.outputs, msg.task_id, msg.epoch, worker_id, "verify"
            ) != msg.digest
        ):
            # The payload no longer matches the digest the slave
            # stamped: in-transit corruption. Reject the result
            # and re-queue the task — never merge corrupt data
            # into state. The retry is charged like a timeout, so
            # a link that corrupts the same task every time ends
            # in a clean budget-exhausted abort, not a livelock.
            with self._results_lock:
                self.stats.digest_rejects += 1
            if self.sched.observing:
                self.sched.record(
                    "digest-reject", msg.task_id, msg.epoch, worker_id,
                    hop="result",
                )
            if self._register.cancel(msg.task_id, msg.epoch):
                self._leases.drop(msg.task_id, msg.epoch)
                self._release_blocks(msg.task_id)
                attempts = self._register.attempts(msg.task_id)
                charged = attempts - self._budget_exempt.get(msg.task_id, 0)
                if charged > self.max_retries + 1:
                    self._abort(
                        FaultToleranceExhausted(
                            f"sub-task {msg.task_id} rejected for digest "
                            f"mismatch on {charged} budgeted dispatches"
                        )
                    )
                    return False
                self.stats.faults_recovered += 1
                if self.sched.enabled:
                    self.sched.record("redistribute", msg.task_id, msg.epoch)
                self._stack.push(msg.task_id)
            return True
        if self._register.finish(msg.task_id, msg.epoch):
            self._leases.drop(msg.task_id, msg.epoch)
            if self.sched.observing:
                # The compute span is synthesized on the master's
                # clock from the slave-reported duration, so the
                # same events exist whether the slave was a thread
                # or a separate OS process.
                now = self.sched.now()
                self.sched.record(
                    "compute",
                    msg.task_id,
                    msg.epoch,
                    node=worker_id,
                    ts=now,
                    t0=now - max(0.0, msg.elapsed),
                    t1=now,
                )
                self.sched.record(
                    "result",
                    msg.task_id,
                    msg.epoch,
                    worker_id,
                    nbytes=message_nbytes(msg),
                    elapsed=msg.elapsed,
                )
            with self._results_lock:
                if self._digest_on and msg.digest is not None:
                    self._digests_verified += 1
                self._result_buffer[msg.task_id] = (
                    msg.outputs,
                    msg.epoch,
                    worker_id,
                    msg.digest if self._digest_on else None,
                )
            self._finished.push(msg.task_id)
            self._last_progress = self.clock.now()
            self._durations.append(max(0.0, msg.elapsed))
            self.stats.tasks_per_worker[worker_id] = (
                self.stats.tasks_per_worker.get(worker_id, 0) + 1
            )
        else:
            self.stats.stale_results += 1
            if self.sched.enabled:
                self.sched.record("stale-drop", msg.task_id, msg.epoch, worker_id)
        return True

    def _try_send_end(self, channel: Channel) -> None:
        try:
            channel.send(EndSignal())
        except ChannelClosed:
            pass

    # -- fault-tolerance thread (Fig 10) ------------------------------------------------

    def _abort(self, exc: BaseException) -> None:
        """Record a fatal failure and wake every blocked thread."""
        if isinstance(exc, FaultToleranceExhausted) and exc.job_id is None:
            exc.job_id = self.job_id
        if self.sched.observing:
            self.sched.record(
                "abort", None, -1,
                reason=str(exc)[:300],
                exc_type=type(exc).__name__,
                job_id=self.job_id,
            )
        self._failure.append(exc)
        self._end.set()
        self._stack.close()
        self._finished.close()

    def request_abort(self, reason: str) -> bool:
        """Cancel the run from outside the scheduling threads.

        The serve daemon's deadline watchdog and ``repro cancel`` use
        this: the run ends in a clean, attributed
        :class:`FaultToleranceExhausted` raised out of :meth:`run` — the
        same contract as an exhausted retry budget, never a hang and
        never a half-merged state (the scheduling thread observes
        ``_failure`` before its next commit). Returns False when the run
        had already ended (or aborted) — cancelling a finished run is a
        no-op, not an error.
        """
        if self._end.is_set() or self._failure:
            return False
        self._abort(FaultToleranceExhausted(reason, job_id=self.job_id))
        return True

    def _fault_tolerance(self) -> None:
        # (ready_at, tiebreak, task_id) re-dispatches held by backoff.
        # Only this thread touches the heap, so no lock is needed.
        pending: List[Tuple[float, int, TaskId]] = []
        seq = 0
        while not self._end.is_set():
            now = self.clock.now()
            while pending and pending[0][0] <= now:
                self._stack.push(heapq.heappop(pending)[2])
            if self._lease_duration is not None:
                for lease in self._leases.expired(now):
                    reg = self._register.cancel(lease.task_id, lease.epoch)
                    if not reg:
                        continue  # finished/cancelled already; lazy removal
                    self.stats.lease_expirations += 1
                    if self.sched.observing:
                        self.sched.record(
                            "lease-expired", lease.task_id, lease.epoch,
                            lease.worker_id,
                        )
                    self._note_worker_failure(reg.worker_id)
                    seq += 1
                    if not self._requeue_fault(
                        lease.task_id, lease.epoch, pending, seq, now
                    ):
                        return
            for entry in self._overtime.due(now):
                reg = self._register.cancel(entry.task_id, entry.epoch)
                if not reg:
                    continue  # completed in time; lazy removal
                self._leases.drop(entry.task_id, entry.epoch)
                self._note_worker_failure(reg.worker_id)
                seq += 1
                if not self._requeue_fault(entry.task_id, entry.epoch, pending, seq, now):
                    return
            if self.speculate:
                seq = self._scan_stragglers(now, seq)
            if (
                not pending
                and len(self._register) == 0
                and now - self._last_progress > self.stall_timeout
            ):
                # Nothing live, nothing queued for retry, and nothing has
                # moved for a whole stall window: every worker is presumed
                # lost. Abort cleanly instead of hanging.
                self._abort(
                    FaultToleranceExhausted(
                        f"no scheduling progress for {self.stall_timeout:.1f}s "
                        "with no live dispatches (all workers presumed lost)"
                    )
                )
                return
            time.sleep(self.poll_interval)

    def _requeue_fault(
        self,
        task_id: TaskId,
        epoch: int,
        pending: List[Tuple[float, int, TaskId]],
        seq: int,
        now: float,
    ) -> bool:
        """Handle one timed-out dispatch: re-queue (possibly after an
        exponential backoff) or abort when the budget is exhausted.
        Returns False when the run was aborted."""
        attempts = self._register.attempts(task_id)
        charged = attempts - self._budget_exempt.get(task_id, 0)
        if charged > self.max_retries + 1:
            self._abort(
                FaultToleranceExhausted(
                    f"sub-task {task_id} failed {charged} budgeted dispatches"
                )
            )
            return False
        self.stats.faults_recovered += 1
        self._release_blocks(task_id)
        if self.sched.enabled:
            self.sched.record("redistribute", task_id, epoch)
        delay = 0.0
        if self.retry_backoff > 0:
            delay = min(
                self.retry_backoff * (2.0 ** max(0, charged - 1)),
                self.retry_backoff_max,
            )
        if delay > 0:
            if self.sched.observing:
                self.sched.record("backoff", task_id, epoch, delay=delay)
            heapq.heappush(pending, (now + delay, seq, task_id))
        else:
            self._stack.push(task_id)
        return True

    def _note_worker_failure(self, worker_id: int) -> None:
        """Attribute a timeout to its worker; blacklist past the threshold.

        The last healthy worker is never blacklisted (graceful degradation
        down to one survivor). Eviction cancels the worker's in-flight
        dispatches and re-queues them, so no result it still sends can
        commit — late replies hit a stale epoch.
        """
        if self.blacklist_threshold is None:
            return
        n = self._worker_failures.get(worker_id, 0) + 1
        self._worker_failures[worker_id] = n
        if (
            n < self.blacklist_threshold
            or worker_id in self._blacklisted
            or worker_id in self._left
        ):
            return
        if len(self.channels) - len(self._blacklisted) - len(self._left) <= 1:
            return  # degradation floor: keep the last worker, come what may
        heard = self._last_heard.get(worker_id)
        if heard is not None and self.clock.now() - heard < self.task_timeout:
            # Recently heard from: the worker is alive and reachable, so
            # its timeouts are dropped/late messages, not worker death.
            # Keep it (and reset nothing — persistent silence still trips
            # the threshold on a later failure).
            return
        self._blacklisted.add(worker_id)
        self.stats.blacklisted_workers.append(worker_id)
        if self.sched.observing:
            self.sched.record(
                "blacklist", None, -1, worker_id, failures=n
            )
        self._requeue_worker_tasks(worker_id)

    def _requeue_worker_tasks(self, worker_id: int) -> None:
        """Cancel and re-queue every live dispatch a retiring worker holds
        (blacklist eviction or clean WorkerLeave). Never charges the retry
        budget — the task did nothing wrong, its worker went away."""
        for task_id, reg in self._register.live_snapshot():
            if reg.worker_id != worker_id:
                continue
            if not self._register.cancel(task_id, reg.epoch):
                continue
            self._leases.drop(task_id, reg.epoch)
            self._release_blocks(task_id)
            self._budget_exempt[task_id] = self._budget_exempt.get(task_id, 0) + 1
            self.stats.faults_recovered += 1
            if self.sched.enabled:
                self.sched.record("redistribute", task_id, reg.epoch)
            self._stack.push(task_id)

    # -- elastic membership -----------------------------------------------------

    def _detach_worker(self, worker_id: int) -> None:
        """Retire a worker that announced a clean departure."""
        if worker_id in self._left:
            return
        self._left.add(worker_id)
        self.stats.workers_left += 1
        if self.sched.observing:
            self.sched.record("worker-leave", None, -1, worker_id)
        self._requeue_worker_tasks(worker_id)

    def attach_worker(self, channel: Channel) -> int:
        """Join a new worker mid-run (elastic membership); returns its id.

        Only dynamic-family policies accept joiners — static wavefront
        policies fixed their column ownership at construction and a new
        worker would own nothing. The new worker is served by its own
        service thread, joins the admission flow like any other slave, and
        is joined/accounted at teardown with the founding workers.
        """
        if not getattr(self.policy, "elastic", False):
            raise SchedulerError(
                f"policy {self.policy.name!r} is static; mid-run worker "
                "join requires a dynamic-family policy"
            )
        with self._membership_lock:
            if self._end.is_set():
                raise SchedulerError("cannot attach a worker: the run is over")
            worker_id = len(self.channels)
            self.channels.append(channel)
            # Int assignment is GIL-atomic; eligibility checks racing this
            # see either the old or new count, both consistent.
            self.policy.n_workers = worker_id + 1
            thread = threading.Thread(
                target=self._serve_slave, args=(worker_id,), daemon=True,
                name=f"master-worker{worker_id}",
            )
            self._extra_threads.append(thread)
        self.stats.workers_joined += 1
        if self.sched.observing:
            self.sched.record("worker-join", None, -1, worker_id)
        thread.start()
        return worker_id

    def _scan_stragglers(self, now: float, seq: int) -> int:
        """Speculative re-dispatch: cancel live dispatches that have aged
        past a multiple of the observed duration quantile and re-queue
        them immediately (at most once per task; never charged against the
        retry budget)."""
        durations = self._durations
        if len(durations) < 8:
            return seq  # not enough signal for a stable quantile yet
        cutoff = max(
            self.speculative_factor
            * float(np.quantile(np.asarray(durations, dtype=float), self.speculative_quantile)),
            10.0 * self.poll_interval,
        )
        for task_id, reg in self._register.live_snapshot():
            if task_id in self._speculated:
                continue
            if now - reg.registered_at <= cutoff:
                continue
            if not self._register.cancel(task_id, reg.epoch):
                continue
            self._leases.drop(task_id, reg.epoch)
            self._release_blocks(task_id)
            self._speculated.add(task_id)
            self._budget_exempt[task_id] = self._budget_exempt.get(task_id, 0) + 1
            self.stats.speculative_redispatches += 1
            if self.sched.enabled:
                self.sched.record(
                    "speculate", task_id, reg.epoch, reg.worker_id, age=now - reg.registered_at
                )
            self._stack.push(task_id)
        return seq
