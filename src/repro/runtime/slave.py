"""Slave part: thread-level scheduling over one sub-task (Figs 11 and 12).

A slave part loops: announce idle, receive a sub-task with its data,
initialize the slave DAG Data Driven Model for it (the thread-level
partition), drain the inner DAG with a pool of computing threads, return
the result, repeat until the end signal. Thread-level fault tolerance
watches the slave overtime queue and *restarts the computing thread* on a
sub-sub-task timeout (Fig 12), re-pushing the lost sub-sub-task.

The same class serves the threads backend (slaves are threads of the
master process) and the processes backend (slaves are ``multiprocessing``
workers started on :func:`slave_process_main`) — only the channel differs.

Standing in for EasyPDP: run with ``n_threads`` workers on a single
sub-task covering the whole matrix and this *is* the shared-memory
runtime the authors published previously.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.algorithms.problem import DPProblem
from repro.check.lock_lint import make_lock
from repro.cluster.faults import FaultPlan, WorkerFaultPlan
from repro.comm.messages import (
    BatchAssign,
    BatchResult,
    EndSignal,
    Heartbeat,
    IdleSignal,
    TaskAssign,
    TaskResult,
    WorkerLeave,
)
from repro.comm.transport import Channel, ChannelClosed, ChannelTimeout
from repro.dag.parser import DAGParser
from repro.dag.partition import BlockShape, Partition
from repro.obs.clock import Clock, ensure_clock
from repro.obs.recorder import EventRecorder
from repro.obs.schedule import ScheduleTracer
from repro.runtime.worker_pool import (
    ComputableStack,
    FinishedStack,
    OvertimeEntry,
    OvertimeQueue,
    RegisterTable,
)
from repro.schedulers.policy import make_policy
from repro.utils.errors import FaultToleranceExhausted, WorkerLeakWarning


@dataclass
class SlaveStats:
    """Counters a slave reports back for the run report."""

    tasks: int = 0
    subtasks: int = 0
    thread_restarts: int = 0
    compute_seconds: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)


class SlavePart:
    """One slave node: protocol loop plus the slave worker pool."""

    def __init__(
        self,
        slave_id: int,
        channel: Channel,
        problem: DPProblem,
        partition: Partition,
        thread_partition: BlockShape,
        n_threads: int,
        *,
        thread_scheduler: str = "dynamic",
        subtask_timeout: float = 10.0,
        max_retries: int = 3,
        poll_interval: float = 0.02,
        fault_plan: Optional[FaultPlan] = None,
        thread_fault_plan: Optional[FaultPlan] = None,
        worker_fault_plan: Optional[WorkerFaultPlan] = None,
        hang_duration: float = 1.0,
        stop_event: Optional[threading.Event] = None,
        verify: bool = False,
        clock: Optional[Clock] = None,
        obs: Optional[EventRecorder] = None,
        heartbeat_interval: Optional[float] = None,
        leave_after: Optional[int] = None,
        integrity: str = "digest",
    ) -> None:
        self.slave_id = slave_id
        self.channel = channel
        self.problem = problem
        self.partition = partition
        self.thread_partition = thread_partition
        self.n_threads = max(1, int(n_threads))
        self.thread_scheduler = thread_scheduler
        self.subtask_timeout = subtask_timeout
        self.max_retries = max_retries
        self.poll_interval = poll_interval
        self.fault_plan = fault_plan or FaultPlan.none()
        self.thread_fault_plan = thread_fault_plan or FaultPlan.none()
        self.worker_fault_plan = worker_fault_plan or WorkerFaultPlan.none()
        self.hang_duration = hang_duration
        self.stop_event = stop_event or threading.Event()
        #: Validate each sub-task's thread-level schedule against the inner
        #: DAG with the happens-before checker (``RunConfig.verify``).
        self.verify = verify
        #: Clock for deadlines and subtask-scope telemetry (injected so
        #: the instrumentation is clock-domain agnostic).
        self.clock = ensure_clock(clock)
        #: Telemetry stream for thread-level events; only wired when the
        #: slave shares the recorder's process (threads backend).
        self.obs = obs
        #: Seconds between liveness beacons; None = no heartbeat thread
        #: (the paper's protocol). The beacon runs on its own thread and
        #: keeps beating *while computing* — exactly when the idle loop
        #: goes quiet.
        self.heartbeat_interval = heartbeat_interval
        #: Leave the pool cleanly (WorkerLeave) after computing this many
        #: sub-tasks — elastic-membership departure, used by tests and
        #: scale-down scenarios. None = serve until the end signal.
        self.leave_after = leave_after
        #: Integrity mode (``RunConfig.integrity``). Anything but "off"
        #: makes this slave verify the digest on every TaskAssign (a
        #: mismatch is discarded; the master's timeout redistributes) and
        #: stamp a digest on every TaskResult. "off" computes no digests
        #: at all — the zero-cost path.
        self.integrity = integrity
        self._digest_on = integrity != "off"
        #: The channel is shared between the protocol loop and the
        #: heartbeat thread; pipe/queue sends are not atomic, so every
        #: send goes through this lock.
        self._send_lock = make_lock("slave.channel-send", guards=("channel.send",))
        #: (task_id, epoch) currently computing, for heartbeat reporting.
        #: Tuple assignment is GIL-atomic.
        self._current: Optional[tuple] = None
        self.stats = SlaveStats()

    def _send(self, msg) -> None:
        with self._send_lock:
            self.channel.send(msg)

    # -- protocol loop --------------------------------------------------------

    def _emit(self, kind: str, task_id=None, epoch: int = -1, **data) -> None:
        """Worker-scope telemetry (only wired on in-process backends)."""
        if self.obs is not None and self.obs.enabled:
            self.obs.emit(
                kind, task_id, epoch=epoch, node=self.slave_id,
                worker=self.slave_id, scope="task", **data,
            )

    def run(self) -> SlaveStats:
        """Serve sub-tasks until the end signal (or stop event)."""
        from repro.comm.serialization import content_digest

        death_point = self.worker_fault_plan.death_point(self.slave_id)
        slow_factor = self.worker_fault_plan.slow_factor(self.slave_id)
        lie_point = self.worker_fault_plan.lie_point(self.slave_id)
        # Re-announce idleness when no reply arrives in time: an idle
        # signal (or its answer) lost in transit would otherwise silence
        # this slave forever. Duplicated announcements are safe — the
        # master just assigns more work, served sequentially.
        resend = max(0.1, 10.0 * self.poll_interval)
        hb_stop = threading.Event()
        hb_thread: Optional[threading.Thread] = None
        if self.heartbeat_interval is not None:
            hb_thread = threading.Thread(
                target=self._heartbeat_loop, args=(hb_stop,), daemon=True,
                name=f"slave{self.slave_id}-heartbeat",
            )
            hb_thread.start()
        try:
            while not self.stop_event.is_set():
                try:
                    self._send(IdleSignal(self.slave_id))
                    msg = self._recv(max_wait=resend)
                except ChannelClosed:
                    break
                if msg is None:
                    if self.stop_event.is_set():
                        break
                    continue  # nothing heard within the window: announce again
                if isinstance(msg, EndSignal):
                    break
                if isinstance(msg, BatchAssign):
                    assigns = msg.assigns
                else:
                    assert isinstance(msg, TaskAssign), f"unexpected message {msg!r}"
                    assigns = (msg,)
                # One envelope, per-subtask semantics: every fault hook
                # (digest reject, death, crash, hang, slow, lie) fires per
                # element exactly as it would for a lone TaskAssign — only
                # the reply envelope is shared.
                results = []
                died = False
                for assign in assigns:
                    if (
                        self._digest_on
                        and assign.digest is not None
                        and content_digest(assign.inputs) != assign.digest
                    ):
                        # The assignment was mutated in transit (chaos corrupt
                        # fault). Discard it — the master's overtime/lease scan
                        # redistributes the task, exactly as for a lost message.
                        self._emit(
                            "digest-reject", assign.task_id, assign.epoch, hop="assign"
                        )
                        continue
                    if death_point is not None and self.stats.tasks >= death_point:
                        # Worker-level fault: the slave dies mid-run (possibly
                        # mid-wave), holding assigned sub-tasks it will never
                        # answer — the whole envelope is withheld, finished
                        # elements included. The master's timeout redistributes
                        # them; if every worker dies the stall watchdog aborts
                        # cleanly.
                        self._emit(
                            "worker-death", assign.task_id, assign.epoch,
                            after_tasks=death_point,
                        )
                        died = True
                        break
                    fault = self.fault_plan.lookup(assign.task_id, assign.epoch)
                    if fault is not None and fault.kind == "crash":
                        # The process "dies" without replying; the master's
                        # overtime check will redistribute. We come back up on
                        # the next sub-task, like a restarted worker.
                        continue
                    if fault is not None and fault.kind == "hang":
                        # Stall past the master's deadline, then answer late —
                        # the epoch check must discard this result.
                        time.sleep(self.hang_duration)
                    self._current = (assign.task_id, assign.epoch)
                    started = time.perf_counter()
                    outputs = self._compute(assign)
                    elapsed = time.perf_counter() - started
                    self._current = None
                    if slow_factor > 1.0:
                        # Slow-node degradation: stretch the apparent compute
                        # time by (factor - 1) x elapsed, bounded so a single
                        # task can at most look one second slower. Enough to
                        # trip the master's speculation/timeout paths, never a
                        # hard hang.
                        penalty = min((slow_factor - 1.0) * elapsed, 1.0)
                        self._emit(
                            "worker-slow", assign.task_id, assign.epoch,
                            factor=slow_factor, penalty=penalty,
                        )
                        time.sleep(penalty)
                        elapsed += penalty
                    if lie_point is not None and self.stats.tasks >= lie_point:
                        # Silent data corruption: return a plausible-but-wrong
                        # block. The digest below is computed over the *wrong*
                        # data, so it is self-consistent — receive-side
                        # verification passes and only a semantic defense
                        # (audit recompute, voting) can convict this worker.
                        outputs = _lie_about(outputs)
                        self._emit(
                            "worker-liar", assign.task_id, assign.epoch,
                            after_tasks=lie_point,
                        )
                    self.stats.tasks += 1
                    self.stats.compute_seconds += elapsed
                    results.append(
                        TaskResult(
                            task_id=assign.task_id,
                            epoch=assign.epoch,
                            slave_id=self.slave_id,
                            outputs=outputs,
                            elapsed=elapsed,
                            digest=content_digest(outputs) if self._digest_on else None,
                        )
                    )
                if died:
                    break
                if results:
                    reply = (
                        BatchResult(slave_id=self.slave_id, results=tuple(results))
                        if isinstance(msg, BatchAssign)
                        else results[0]
                    )
                    try:
                        self._send(reply)
                    except ChannelClosed:
                        break
                if self.leave_after is not None and self.stats.tasks >= self.leave_after:
                    # Elastic departure: announce it so the master retires
                    # this worker immediately instead of timing it out.
                    self._emit("worker-leave", after_tasks=self.stats.tasks)
                    try:
                        self._send(WorkerLeave(self.slave_id))
                    except ChannelClosed:
                        pass
                    break
        finally:
            hb_stop.set()
            if hb_thread is not None:
                hb_thread.join(timeout=2.0)
        return self.stats

    def _heartbeat_loop(self, hb_stop: threading.Event) -> None:
        """Periodic liveness beacon (its own thread; see Heartbeat)."""
        assert self.heartbeat_interval is not None
        while not hb_stop.wait(self.heartbeat_interval):
            if self.stop_event.is_set():
                return
            current = self._current
            task_id, epoch = current if current is not None else (None, -1)
            try:
                self._send(Heartbeat(self.slave_id, task_id=task_id, epoch=epoch))
            except ChannelClosed:
                return

    def _recv(self, max_wait: Optional[float] = None):
        """Poll the channel so the stop event can interrupt a quiet wait.

        Returns None when stopped, or — with ``max_wait`` — when nothing
        arrived within that window (the caller re-announces idleness)."""
        waited = 0.0
        while not self.stop_event.is_set():
            try:
                return self.channel.recv(timeout=self.poll_interval)
            except ChannelTimeout:
                waited += self.poll_interval
                if max_wait is not None and waited >= max_wait:
                    return None
        return None

    # -- slave worker pool (Fig 11 steps c-j) ---------------------------------------

    def _compute(self, assign: TaskAssign) -> Dict[str, object]:
        evaluator = self.problem.evaluator(self.partition, assign.task_id, assign.inputs)
        inner = self.partition.sub_partition(assign.task_id, self.thread_partition)
        self.stats.subtasks += inner.n_blocks
        if self.n_threads == 1 and not self.thread_fault_plan:
            return evaluator.run_serial(inner)
        return self._run_pool(evaluator, inner)

    def _run_pool(self, evaluator, inner: Partition) -> Dict[str, object]:
        parser = DAGParser(inner.abstract)
        stack = ComputableStack()
        finished = FinishedStack()
        overtime = OvertimeQueue()
        register = RegisterTable()
        policy = make_policy(
            self.thread_scheduler, self.n_threads, inner.grid.n_block_cols
        )
        stack.push_many(parser.computable())
        failure: list[BaseException] = []
        sched = ScheduleTracer(
            clock=self.clock,
            verify=self.verify,
            obs=self.obs,
            node=self.slave_id,
            scope="subtask",
        )

        def compute_worker(worker_id: int) -> None:
            while True:
                sub = stack.pop_eligible(worker_id, policy)
                if sub is None:
                    return
                epoch = register.register(sub, worker_id)
                if sched.enabled:
                    sched.record("assign", sub, epoch, worker_id)
                overtime.push(
                    OvertimeEntry(
                        deadline=self.clock.now() + self.subtask_timeout,
                        task_id=sub,
                        epoch=epoch,
                    )
                )
                injected = self.thread_fault_plan.lookup(sub, epoch)
                if injected is not None:
                    # The computing thread dies mid-task (Fig 12's fault):
                    # exit without reporting; the FT check restarts us.
                    return
                started = sched.now() if sched.observing else 0.0
                rows, cols = inner.block_ranges(sub)
                evaluator.run_subblock(rows, cols)
                if register.finish(sub, epoch):
                    if sched.enabled:
                        if sched.observing:
                            sched.record(
                                "compute", sub, epoch, worker_id,
                                t0=started, t1=sched.now(),
                            )
                        # Before finished.push so successors' assigns
                        # serialize after this commit in the trace.
                        sched.record("commit", sub, epoch, worker_id)
                    finished.push(sub)

        threads = [
            threading.Thread(
                target=compute_worker, args=(k,), daemon=True,
                name=f"slave{self.slave_id}-ct{k}",
            )
            for k in range(self.n_threads)
        ]
        for t in threads:
            t.start()

        # Slave scheduling thread (this thread): drain finished sub-sub-tasks,
        # update the slave DAG pattern, and watch the overtime queue.
        while not parser.is_done():
            sub = finished.pop(timeout=self.poll_interval)
            if sub is not None:
                stack.push_many(parser.complete(sub))
            for entry in overtime.due(self.clock.now()):
                if not register.cancel(entry.task_id, entry.epoch):
                    continue  # finished in time; lazy removal
                attempts = register.attempts(entry.task_id)
                if attempts > self.max_retries + 1:
                    failure.append(
                        FaultToleranceExhausted(
                            f"sub-sub-task {entry.task_id} failed {attempts} times"
                        )
                    )
                    break
                self.stats.thread_restarts += 1
                if sched.enabled:
                    sched.record("redistribute", entry.task_id, entry.epoch)
                stack.push(entry.task_id)
                replacement = threading.Thread(
                    target=compute_worker,
                    args=(len(threads) % self.n_threads,),
                    daemon=True,
                    name=f"slave{self.slave_id}-ct-restart{self.stats.thread_restarts}",
                )
                threads.append(replacement)
                replacement.start()
            if failure or self.stop_event.is_set():
                break
        stack.close()
        for t in threads:
            t.join(timeout=5.0)
        leaked = [t for t in threads if t.is_alive()]
        if leaked:
            # The join result used to be discarded here, silently leaking
            # any computing thread stuck past its timeout. Surface it:
            # a warning, a counter on the slave's stats, and telemetry.
            self.stats.extras["worker_leaks"] = (
                self.stats.extras.get("worker_leaks", 0.0) + len(leaked)
            )
            for t in leaked:
                warnings.warn(
                    f"slave {self.slave_id} computing thread {t.name!r} did "
                    "not exit within its join timeout and was abandoned "
                    "(daemon)",
                    WorkerLeakWarning,
                    stacklevel=2,
                )
                self._emit("worker-leak", thread=t.name)
        if failure:
            raise failure[0]
        if parser.is_done() and not self.stop_event.is_set():
            sched.check(inner.abstract, title=f"slave{self.slave_id}-trace")
        return evaluator.outputs()


def _lie_about(outputs: Dict[str, object]) -> Dict[str, object]:
    """A liar worker's version of ``outputs``: one cell off by one.

    The perturbation is small and type-preserving, so the result stays
    plausible (right shape, right dtype, right magnitude) — the kind of
    wrong answer only an audit recompute or a vote can tell apart.
    """
    lied: Dict[str, object] = {}
    corrupted = False
    for key, value in outputs.items():
        if not corrupted and isinstance(value, np.ndarray) and value.size:
            wrong = np.array(value, copy=True)
            flat = wrong.reshape(-1)
            flat[0] = flat[0] + 1
            lied[key] = wrong
            corrupted = True
        else:
            lied[key] = value
    return lied


def slave_process_main(
    slave_id: int,
    conn,
    problem: DPProblem,
    process_partition: BlockShape,
    thread_partition: BlockShape,
    n_threads: int,
    options: dict,
) -> None:
    """Entry point of a slave running as a separate OS process.

    Rebuilds the partition locally (patterns are cheap value objects) so
    only the problem and scalars cross the process boundary.
    """
    from repro.comm.transport import PipeChannel

    options = dict(options)
    shm_prefix = options.pop("shm_prefix", None)
    io_fault_plan = options.pop("io_fault_plan", None)
    channel = PipeChannel(conn)
    store = None
    if shm_prefix is not None:
        # Zero-copy data plane: result payloads park in this process's
        # own run-prefixed store; assign refs parked by the master are
        # rehydrated (and unlinked) on receive. Each slave gets its own
        # fault stream so injected shm exhaustion stays deterministic
        # regardless of scheduling.
        from repro.cluster.faults import IoPolicy
        from repro.comm.shm import BlockStore, ShmChannel

        io_policy = (
            IoPolicy(io_fault_plan, f"shm-slave{slave_id}")
            if io_fault_plan is not None
            else None
        )
        store = BlockStore(shm_prefix, io_policy=io_policy)
        channel = ShmChannel(channel, store)
    partition = problem.build_partition(process_partition)
    part = SlavePart(
        slave_id=slave_id,
        channel=channel,
        problem=problem,
        partition=partition,
        thread_partition=thread_partition,
        n_threads=n_threads,
        **options,
    )
    try:
        part.run()
    finally:
        channel.close()
        if store is not None:
            # Results the master never attached (e.g. it aborted first)
            # would otherwise outlive this process; the master's prefix
            # sweep is the backstop for anything unlinked here.
            store.sweep()
