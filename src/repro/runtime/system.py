"""The EasyHPS facade — the one entry point users call.

>>> from repro import EasyHPS, RunConfig
>>> from repro.algorithms import Nussinov
>>> system = EasyHPS(RunConfig(nodes=3, threads_per_node=2, backend="threads"))
>>> run = system.run(Nussinov.random(120, seed=1))
>>> run.value.score, run.report.makespan  # doctest: +SKIP

The facade resolves partition sizes, picks the backend, runs the
master/slave machinery (or the simulator), and finalizes the problem
state into the user-facing answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.algorithms.problem import DPProblem
from repro.analysis.report import RunReport
from repro.runtime.config import RunConfig
from repro.utils.errors import ConfigError


@dataclass
class RunResult:
    """Outcome of one :meth:`EasyHPS.run` call.

    ``value`` is the algorithm's finalized answer (None for the simulated
    backend, which models time but does not compute cells); ``state``
    holds the completed DP matrices when available.
    """

    value: Any
    state: Optional[Dict[str, np.ndarray]]
    report: RunReport


class EasyHPS:
    """Multilevel hybrid parallel runtime for dynamic programming."""

    def __init__(self, config: Optional[RunConfig] = None) -> None:
        self.config = config or RunConfig()

    def run(
        self,
        problem: DPProblem,
        config: Optional[RunConfig] = None,
        resume: Optional[Any] = None,
    ) -> RunResult:
        """Execute one DP problem; ``config`` overrides the instance default.

        ``resume`` (a :class:`~repro.durable.recovery.RecoveredRun`)
        continues a journaled run after a master crash instead of
        starting from scratch. A journal that already covers the whole
        DAG short-circuits: the recovered state is finalized directly.
        """
        cfg = config or self.config
        if not isinstance(problem, DPProblem):
            raise ConfigError(
                f"problem must be a DPProblem, got {type(problem).__name__}"
            )
        if resume is not None and resume.complete:
            state = resume.state
            report = RunReport(
                backend=cfg.backend,
                scheduler=cfg.scheduler,
                algorithm=problem.name,
                nodes=cfg.nodes,
                threads_per_node=cfg.threads_per_node,
                makespan=0.0,
                wall_time=0.0,
                n_tasks=resume.n_tasks,
            )
            value = problem.finalize(state) if state is not None else None
            return RunResult(value=value, state=state, report=report)
        if cfg.backend == "serial":
            from repro.backends.serial import run_serial

            state, report = run_serial(problem, cfg, resume=resume)
        elif cfg.backend == "threads":
            from repro.backends.threads import run_threads

            state, report = run_threads(problem, cfg, resume=resume)
        elif cfg.backend == "processes":
            from repro.backends.processes import run_processes

            state, report = run_processes(problem, cfg, resume=resume)
        elif cfg.backend == "simulated":
            from repro.backends.simulated import run_simulated

            state, report = run_simulated(problem, cfg, resume=resume)
        else:  # pragma: no cover - RunConfig already validates
            raise ConfigError(f"unknown backend {cfg.backend!r}")
        value = problem.finalize(state) if state is not None else None
        return RunResult(value=value, state=state, report=report)

    def __repr__(self) -> str:
        return f"EasyHPS({self.config!r})"
